//! Offline stand-in for the `criterion` crate.
//!
//! Covers the API surface the workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group`/`finish`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop (warm up, pick an iteration count that fills
//! the measurement window, report mean per-iteration time) — adequate for
//! the relative comparisons recorded in EXPERIMENTS.md, with none of
//! criterion's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark body repeatedly and accumulates elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_calibrated<F: FnMut(&mut Bencher)>(label: &str, mut body: F) {
    // Warm-up pass; also measures a single iteration to size the real run.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    body(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let window = Duration::from_millis(300);
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    body(&mut b);
    let mean = b.elapsed / iters as u32;
    println!("bench: {label:<40} {mean:>12.2?}/iter ({iters} iters)");
}

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        body: F,
    ) -> &mut Self {
        run_calibrated(&id.into(), body);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }
}

/// Named group: labels are prefixed, matching criterion's `group/bench` ids.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        body: F,
    ) -> &mut Self {
        run_calibrated(&format!("{}/{}", self.name, id.into()), body);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }
}
