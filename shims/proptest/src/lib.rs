//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro, range and collection strategies, `prop_map`,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Inputs are drawn from a SplitMix64 stream seeded by the test's module
//! path, name, and case index, so every run of a given test binary explores
//! the identical input sequence — failures reproduce without a regression
//! file. No shrinking: the failing case prints its index, and re-running
//! deterministically regenerates the same values.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (proptest's `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value (proptest's `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec` of exactly `len` draws from `element` (the workspace only uses
    /// fixed sizes; proptest's `SizeRange` generality is not needed).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 input stream; seeded from the test identity and case
    /// index so runs are reproducible without persisted state.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_id: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = TestRng { state: h };
            let _ = rng.next_u64(); // decorrelate nearby seeds
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion macros: plain panics (no shrinking pass to feed a `Result` to).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` test-block macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_id, case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let run = || -> () { $body };
                    if let Err(payload) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "proptest case {case}/{} of {test_id} failed \
                             (deterministic; rerun reproduces it)",
                            config.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.0f32..4.5).generate(&mut rng);
            assert!((-2.0..4.5).contains(&f));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> =
            (0..5).map(|_| TestRng::for_case("t", 7).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            TestRng::for_case("t", 7).next_u64(),
            TestRng::for_case("t", 8).next_u64()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_inputs(
            n in 1usize..10,
            xs in crate::collection::vec(0.0f32..1.0, 4),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(xs.len(), 4);
            prop_assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
            let _ = flag;
        }
    }
}
