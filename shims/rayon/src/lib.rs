//! Offline stand-in for the `rayon` crate, backed by a real thread pool.
//!
//! The build environment has no network access and no vendored registry, so
//! the real rayon cannot be fetched. This shim provides the adapter surface
//! the workspace uses — `par_chunks_mut`, `par_chunks`, `into_par_iter` with
//! `enumerate`/`map`/`for_each`/`for_each_init`/`collect` — executed on a
//! chunk-splitting pool built on [`std::thread::scope`], the same
//! rank-as-thread idiom `aeris-swipe` uses for its distributed ranks.
//!
//! # Pool design
//!
//! There are no long-lived worker threads. Every parallel region splits its
//! work items into at most [`current_num_threads`] *contiguous* blocks and
//! spawns one scoped thread per block (the first block runs on the calling
//! thread). Scoped threads join before the region returns, so closures may
//! borrow stack data freely and panics propagate to the caller — exactly the
//! ownership story of the surrounding rank-as-thread code.
//!
//! # Determinism
//!
//! Results are bitwise identical for every worker count, by construction:
//!
//! - mutable work (`par_chunks_mut`) hands each closure a *disjoint* output
//!   chunk, and which thread runs a chunk never changes what is computed for
//!   it;
//! - mapped work (`into_par_iter().map(..).collect()`) writes each item's
//!   result into its own preallocated slot, preserving input order;
//! - no reduction is performed by the pool itself — reductions in
//!   `aeris-tensor` keep a fixed accumulation order inside each chunk.
//!
//! # Worker count
//!
//! `AERIS_THREADS` overrides the worker count process-wide (read at every
//! parallel region, so tests may flip it); otherwise
//! [`std::thread::available_parallelism`] decides. [`set_thread_override`]
//! takes precedence over both — tests and benches use it to compare thread
//! counts within one process without touching the environment.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Process-wide worker-count override; 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the pool width for the whole process (tests, benches). `None`
/// restores the default `AERIS_THREADS` / available-parallelism logic.
pub fn set_thread_override(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of workers a parallel region will use: the
/// [`set_thread_override`] value if set, else `AERIS_THREADS` if set and
/// positive, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("AERIS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` over `0..n` split into at most [`current_num_threads`] contiguous
/// ranges, one scoped thread per range (the first range runs on the calling
/// thread). The ranges partition `0..n`, so disjoint-index work needs no
/// synchronization; splitting is deterministic given `n` alone.
pub fn for_each_span<F: Fn(std::ops::Range<usize>) + Sync>(n: usize, f: F) {
    if n == 0 {
        return;
    }
    let t = current_num_threads().min(n);
    if t <= 1 {
        f(0..n);
        return;
    }
    let per = n.div_ceil(t);
    std::thread::scope(|s| {
        let f = &f;
        let mut lo = per;
        while lo < n {
            let hi = (lo + per).min(n);
            s.spawn(move || f(lo..hi));
            lo = hi;
        }
        f(0..per.min(n));
    });
}

// ---------------------------------------------------------------------------
// par_chunks_mut
// ---------------------------------------------------------------------------

/// Rayon's `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk: chunk_size }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index (chunks stay in slice order).
    pub fn enumerate(self) -> ParChunksMutEnum<'a, T> {
        ParChunksMutEnum { slice: self.slice, chunk: self.chunk }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnum<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<T: Send> ParChunksMutEnum<'_, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        self.for_each_init(|| (), |(), item| f(item));
    }

    /// Like `for_each`, but each worker thread builds one scratch state with
    /// `init` and reuses it across every chunk it processes — the idiom for
    /// preallocated kernel scratch (rayon's `for_each_init`).
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let chunk = self.chunk;
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let n_chunks = len.div_ceil(chunk);
        let t = current_num_threads().min(n_chunks);
        if t <= 1 {
            let mut state = init();
            for (i, c) in self.slice.chunks_mut(chunk).enumerate() {
                f(&mut state, (i, c));
            }
            return;
        }
        let per = n_chunks.div_ceil(t);
        std::thread::scope(|s| {
            let (init, f) = (&init, &f);
            let mut rest = self.slice;
            let mut first = 0usize;
            let mut main_block: Option<&mut [T]> = None;
            while first < n_chunks {
                let take = per.min(n_chunks - first);
                let elems = (take * chunk).min(rest.len());
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(elems);
                rest = tail;
                if first == 0 {
                    main_block = Some(head);
                } else {
                    s.spawn(move || {
                        let mut state = init();
                        for (j, c) in head.chunks_mut(chunk).enumerate() {
                            f(&mut state, (first + j, c));
                        }
                    });
                }
                first += take;
            }
            if let Some(block) = main_block {
                let mut state = init();
                for (j, c) in block.chunks_mut(chunk).enumerate() {
                    f(&mut state, (j, c));
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// par_chunks (shared)
// ---------------------------------------------------------------------------

/// Rayon's `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk: chunk_size }
    }
}

/// Parallel iterator over shared chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksEnum<'a, T> {
        ParChunksEnum { slice: self.slice, chunk: self.chunk }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&[T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated variant of [`ParChunks`].
pub struct ParChunksEnum<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<T: Sync> ParChunksEnum<'_, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &[T])) + Sync>(self, f: F) {
        let (slice, chunk) = (self.slice, self.chunk);
        let n_chunks = slice.len().div_ceil(chunk);
        for_each_span(n_chunks, |range| {
            for i in range {
                let lo = i * chunk;
                let hi = (lo + chunk).min(slice.len());
                f((i, &slice[lo..hi]));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// into_par_iter
// ---------------------------------------------------------------------------

/// Rayon's `into_par_iter` / `par_iter` entry point.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I where I::Item: Send {}

/// An eagerly materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Lazy parallel map; executed by `collect` / `for_each`.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, &|item| f(item));
    }
}

/// Output of [`ParIter::map`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute the map in parallel, preserving input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_vec(self.items, &self.f))
    }

    /// Execute the map in parallel, discarding results.
    pub fn for_each_discard(self) {
        let f = self.f;
        par_map_vec(self.items, &|item| {
            f(item);
        });
    }
}

/// Map every item in parallel, writing each result into its own slot so the
/// output order (and therefore every downstream reduction order) is
/// independent of the worker count.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let t = current_num_threads().min(n);
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per = n.div_ceil(t);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let mut rest_items = items;
        let mut rest_out: &mut [Option<R>] = &mut out;
        while !rest_items.is_empty() {
            let take = per.min(rest_items.len());
            let tail = rest_items.split_off(take);
            let block = std::mem::replace(&mut rest_items, tail);
            let (slots, tail_out) = std::mem::take(&mut rest_out).split_at_mut(take);
            rest_out = tail_out;
            s.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(block) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_and_ranges_behave_like_std() {
        let mut v = vec![0u32; 8];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(v, [0, 0, 1, 1, 2, 2, 3, 3]);
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9, 16]);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let run = |threads: usize| -> (Vec<f32>, Vec<usize>) {
            set_thread_override(Some(threads));
            let mut v: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
            v.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
                for x in c.iter_mut() {
                    *x = x.sin() + i as f32;
                }
            });
            let mapped: Vec<usize> = (0..257usize).into_par_iter().map(|x| x.wrapping_mul(x)).collect();
            set_thread_override(None);
            (v, mapped)
        };
        let (v1, m1) = run(1);
        for t in [2, 3, 8] {
            let (vt, mt) = run(t);
            assert!(v1.iter().zip(&vt).all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(m1, mt);
        }
    }

    #[test]
    fn for_each_init_reuses_state_per_worker() {
        set_thread_override(Some(3));
        let inits = AtomicUsize::new(0);
        let mut v = vec![0usize; 64];
        v.par_chunks_mut(4).enumerate().for_each_init(
            || inits.fetch_add(1, Ordering::SeqCst),
            |_state, (i, c)| c.fill(i),
        );
        set_thread_override(None);
        // One init per worker, never one per chunk.
        assert!(inits.load(Ordering::SeqCst) <= 3);
        for (i, c) in v.chunks(4).enumerate() {
            assert!(c.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn shared_chunks_and_spans_cover_everything() {
        set_thread_override(Some(4));
        let v: Vec<usize> = (0..103).collect();
        let sum = AtomicUsize::new(0);
        v.par_chunks(10).for_each(|c| {
            sum.fetch_add(c.iter().sum::<usize>(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 103 * 102 / 2);
        let hits = AtomicUsize::new(0);
        for_each_span(17, |r| {
            hits.fetch_add(r.len(), Ordering::SeqCst);
        });
        set_thread_override(None);
        assert_eq!(hits.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(5));
        assert_eq!(current_num_threads(), 5);
        set_thread_override(None);
        assert!(current_num_threads() >= 1);
    }
}
