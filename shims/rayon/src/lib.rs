//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real rayon cannot be fetched. This shim provides the exact adapter
//! surface the workspace uses — `par_chunks_mut`, `into_par_iter`, `par_iter`
//! with `enumerate`/`map`/`for_each`/`collect` — executed sequentially.
//! The target box is single-core, so sequential execution matches real
//! rayon's effective behaviour there; on multicore machines this trades
//! speed for zero dependencies, never correctness (all call sites are
//! data-parallel and order-insensitive, and reductions in `aeris-tensor`
//! are deterministic by construction).

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Sequential counterpart of rayon's `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Sequential counterpart of rayon's `par_chunks` on slices.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Sequential counterpart of rayon's `into_par_iter` / `par_iter`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_and_ranges_behave_like_std() {
        let mut v = vec![0u32; 8];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(v, [0, 0, 1, 1, 2, 2, 3, 3]);
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9, 16]);
    }
}
