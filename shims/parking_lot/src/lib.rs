//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex`, `MutexGuard`, `Condvar`, and `WaitTimeoutResult` with
//! parking_lot's API shape (no lock poisoning, `Condvar::wait(&mut guard)`),
//! implemented over `std::sync`. A poisoned std lock is recovered via
//! `into_inner` — the workspace treats a panicked rank thread as a fault to
//! survive, not a reason to cascade panics through every peer holding the
//! mailbox lock.

use std::sync::TryLockError;
use std::time::Duration;

/// Mutex with parking_lot semantics: `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { guard: Some(e.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Guard wrapper: holds the std guard in an `Option` so `Condvar::wait` can
/// take it by `&mut`, hand the inner guard to std (which consumes it), and
/// put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside of a condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside of a condvar wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condvar with parking_lot's `&mut guard` calling convention.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakeup_across_threads() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                *m.lock() = true;
                cv.notify_all();
            });
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
