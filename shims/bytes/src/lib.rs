//! Offline stand-in for the `bytes` crate: just the `Buf`/`BufMut`
//! little-endian accessors the chunked store uses, over `&[u8]` and
//! `Vec<u8>`. Reads advance the slice in place (as `impl Buf for &[u8]`
//! does in the real crate); writes append.

/// Sequential little-endian reads that advance the underlying slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Appending little-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_f32() {
        let mut out = Vec::new();
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(-1.5);
        out.put_u64_le(u64::MAX - 7);
        let mut cursor = &out[..];
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
