//! Parameter checkpointing: a minimal self-describing binary format for
//! [`ParamStore`] contents (name → shape → f32 data), so trained models can
//! be saved and restored without a serialization framework.

use crate::params::ParamStore;
use aeris_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0xAE51_C4B1;

/// Serialize every parameter of `store` to `writer`.
pub fn write_params(store: &ParamStore, writer: &mut dyn Write) -> std::io::Result<()> {
    writer.write_all(&MAGIC.to_le_bytes())?;
    writer.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        writer.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        writer.write_all(name_bytes)?;
        writer.write_all(&(value.ndim() as u32).to_le_bytes())?;
        for &d in value.shape() {
            writer.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in value.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a checkpoint into `(name, tensor)` pairs.
pub fn read_params(reader: &mut dyn Read) -> std::io::Result<Vec<(String, Tensor)>> {
    let mut buf4 = [0u8; 4];
    reader.read_exact(&mut buf4)?;
    if u32::from_le_bytes(buf4) != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not an AERIS checkpoint",
        ));
    }
    reader.read_exact(&mut buf4)?;
    let n = u32::from_le_bytes(buf4) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        reader.read_exact(&mut buf4)?;
        let name_len = u32::from_le_bytes(buf4) as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        reader.read_exact(&mut buf4)?;
        let ndim = u32::from_le_bytes(buf4) as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            reader.read_exact(&mut buf4)?;
            shape.push(u32::from_le_bytes(buf4) as usize);
        }
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            reader.read_exact(&mut buf4)?;
            data.push(f32::from_le_bytes(buf4));
        }
        out.push((name, Tensor::from_vec(&shape, data)));
    }
    Ok(out)
}

/// Save a store to a file.
pub fn save_params(store: &ParamStore, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_params(store, &mut f)
}

/// Load a checkpoint into an existing store (layouts must match: every
/// parameter present with the same name and shape).
pub fn load_params(store: &mut ParamStore, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let pairs = read_params(&mut f)?;
    let by_name: std::collections::HashMap<String, Tensor> = pairs.into_iter().collect();
    let ids: Vec<(crate::params::ParamId, String, Vec<usize>)> = store
        .iter()
        .map(|(id, n, v)| (id, n.to_string(), v.shape().to_vec()))
        .collect();
    for (id, name, shape) in ids {
        let t = by_name.get(&name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checkpoint missing parameter {name}"),
            )
        })?;
        if t.shape() != shape.as_slice() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}: {:?} vs {:?}", t.shape(), shape),
            ));
        }
        *store.get_mut(id) = t.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        s.register("layer.w", Tensor::randn(&[3, 4], &mut rng));
        s.register("layer.b", Tensor::randn(&[4], &mut rng));
        s.register("gamma", Tensor::randn(&[7], &mut rng));
        s
    }

    #[test]
    fn roundtrip_in_memory() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let pairs = read_params(&mut &buf[..]).unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "layer.w");
        assert_eq!(&pairs[0].1, src.get(crate::params::ParamId(0)));
    }

    #[test]
    fn file_roundtrip_restores_exactly() {
        let src = store();
        let path = std::env::temp_dir().join("aeris_ckpt_test.bin");
        save_params(&src, &path).unwrap();
        let mut dst = store();
        dst.get_mut(crate::params::ParamId(0)).map_inplace(|_| 0.0);
        load_params(&mut dst, &path).unwrap();
        for (id, _, v) in src.iter() {
            assert_eq!(dst.get(id), v);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let src = store();
        let path = std::env::temp_dir().join("aeris_ckpt_test2.bin");
        save_params(&src, &path).unwrap();
        let mut bad = ParamStore::new();
        bad.register("layer.w", Tensor::zeros(&[2, 2]));
        bad.register("layer.b", Tensor::zeros(&[4]));
        bad.register("gamma", Tensor::zeros(&[7]));
        assert!(load_params(&mut bad, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 16];
        assert!(read_params(&mut &buf[..]).is_err());
    }
}
