//! Parameter checkpointing: a minimal self-describing binary format for
//! [`ParamStore`] contents (name → shape → f32 data), so trained models can
//! be saved and restored without a serialization framework.

use crate::params::ParamStore;
use aeris_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0xAE51_C4B1;

/// Serialize arbitrary named tensors to `writer` in the checkpoint format.
/// This is the general entry point: trainer checkpoints reuse it with
/// prefixed names (`param/…`, `opt.m/…`, `meta/…`) to pack parameters,
/// optimizer moments, and run metadata into one self-describing file.
pub fn write_entries(
    entries: &[(String, Tensor)],
    writer: &mut dyn Write,
) -> std::io::Result<()> {
    writer.write_all(&MAGIC.to_le_bytes())?;
    writer.write_all(&(entries.len() as u32).to_le_bytes())?;
    for (name, value) in entries {
        let name_bytes = name.as_bytes();
        writer.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        writer.write_all(name_bytes)?;
        writer.write_all(&(value.ndim() as u32).to_le_bytes())?;
        for &d in value.shape() {
            writer.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in value.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Save named tensors to a file (see [`write_entries`]).
pub fn save_entries(entries: &[(String, Tensor)], path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_entries(entries, &mut f)
}

/// Load named tensors from a file (inverse of [`save_entries`]).
pub fn load_entries(path: &Path) -> std::io::Result<Vec<(String, Tensor)>> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_params(&mut f)
}

/// Serialize every parameter of `store` to `writer`.
pub fn write_params(store: &ParamStore, writer: &mut dyn Write) -> std::io::Result<()> {
    let entries: Vec<(String, Tensor)> =
        store.iter().map(|(_, n, v)| (n.to_string(), v.clone())).collect();
    write_entries(&entries, writer)
}

/// Read a checkpoint into `(name, tensor)` pairs.
pub fn read_params(reader: &mut dyn Read) -> std::io::Result<Vec<(String, Tensor)>> {
    let mut buf4 = [0u8; 4];
    reader.read_exact(&mut buf4)?;
    if u32::from_le_bytes(buf4) != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not an AERIS checkpoint",
        ));
    }
    reader.read_exact(&mut buf4)?;
    let n = u32::from_le_bytes(buf4) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        reader.read_exact(&mut buf4)?;
        let name_len = u32::from_le_bytes(buf4) as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        reader.read_exact(&mut buf4)?;
        let ndim = u32::from_le_bytes(buf4) as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            reader.read_exact(&mut buf4)?;
            shape.push(u32::from_le_bytes(buf4) as usize);
        }
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            reader.read_exact(&mut buf4)?;
            data.push(f32::from_le_bytes(buf4));
        }
        out.push((name, Tensor::from_vec(&shape, data)));
    }
    Ok(out)
}

/// Save a store to a file.
pub fn save_params(store: &ParamStore, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_params(store, &mut f)
}

/// Load a checkpoint into an existing store (layouts must match: every
/// parameter present with the same name and shape).
pub fn load_params(store: &mut ParamStore, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let pairs = read_params(&mut f)?;
    let by_name: std::collections::HashMap<String, Tensor> = pairs.into_iter().collect();
    let ids: Vec<(crate::params::ParamId, String, Vec<usize>)> = store
        .iter()
        .map(|(id, n, v)| (id, n.to_string(), v.shape().to_vec()))
        .collect();
    for (id, name, shape) in ids {
        let t = by_name.get(&name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checkpoint missing parameter {name}"),
            )
        })?;
        if t.shape() != shape.as_slice() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}: {:?} vs {:?}", t.shape(), shape),
            ));
        }
        *store.get_mut(id) = t.clone();
    }
    Ok(())
}

/// The most recent coordinated checkpoint in `dir`: the lexicographically
/// greatest `step_*.ckpt` file (step numbers are zero-padded, so name order
/// is step order). `Ok(None)` when the directory is missing or holds no
/// checkpoints — a recovery supervisor then restarts from scratch.
pub fn latest_checkpoint(dir: &Path) -> std::io::Result<Option<std::path::PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut best: Option<(String, std::path::PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("step_") && name.ends_with(".ckpt")) {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| name > *b) {
            best = Some((name, entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Encode a `u64` as a 2-element tensor of f32 *bit patterns* (lo, hi 32
/// bits). Stored bitwise, so round-trips are exact — used for step counters
/// and RNG state in trainer checkpoints, which must survive serialization
/// through the f32-only tensor format without loss.
pub fn u64_entry(name: &str, value: u64) -> (String, Tensor) {
    let lo = f32::from_bits(value as u32);
    let hi = f32::from_bits((value >> 32) as u32);
    (name.to_string(), Tensor::from_slice(&[lo, hi]))
}

/// Decode a tensor written by [`u64_entry`].
pub fn entry_u64(t: &Tensor) -> std::io::Result<u64> {
    if t.len() != 2 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "u64 metadata entry must have 2 elements",
        ));
    }
    let lo = t.data()[0].to_bits() as u64;
    let hi = t.data()[1].to_bits() as u64;
    Ok(lo | (hi << 32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        s.register("layer.w", Tensor::randn(&[3, 4], &mut rng));
        s.register("layer.b", Tensor::randn(&[4], &mut rng));
        s.register("gamma", Tensor::randn(&[7], &mut rng));
        s
    }

    #[test]
    fn roundtrip_in_memory() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let pairs = read_params(&mut &buf[..]).unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "layer.w");
        assert_eq!(&pairs[0].1, src.get(crate::params::ParamId(0)));
    }

    #[test]
    fn file_roundtrip_restores_exactly() {
        let src = store();
        let path = std::env::temp_dir().join("aeris_ckpt_test.bin");
        save_params(&src, &path).unwrap();
        let mut dst = store();
        dst.get_mut(crate::params::ParamId(0)).map_inplace(|_| 0.0);
        load_params(&mut dst, &path).unwrap();
        for (id, _, v) in src.iter() {
            assert_eq!(dst.get(id), v);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let src = store();
        let path = std::env::temp_dir().join("aeris_ckpt_test2.bin");
        save_params(&src, &path).unwrap();
        let mut bad = ParamStore::new();
        bad.register("layer.w", Tensor::zeros(&[2, 2]));
        bad.register("layer.b", Tensor::zeros(&[4]));
        bad.register("gamma", Tensor::zeros(&[7]));
        assert!(load_params(&mut bad, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 16];
        assert!(read_params(&mut &buf[..]).is_err());
    }

    #[test]
    fn latest_checkpoint_picks_highest_step() {
        let dir = std::env::temp_dir().join("aeris_ckpt_latest_test");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(latest_checkpoint(&dir).unwrap(), None, "missing dir is not an error");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        for name in ["step_000002.ckpt", "step_000010.ckpt", "step_000004.ckpt", "notes.txt"] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let best = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(best.file_name().unwrap(), "step_000010.ckpt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_roundtrip_with_metadata() {
        let path = std::env::temp_dir().join("aeris_ckpt_entries.bin");
        let entries = vec![
            ("param/w".to_string(), Tensor::from_slice(&[1.5, -2.0])),
            u64_entry("meta/step", u64::MAX - 12345),
        ];
        save_entries(&entries, &path).unwrap();
        let back = load_entries(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].1.data(), entries[0].1.data());
        assert_eq!(entry_u64(&back[1].1).unwrap(), u64::MAX - 12345);
        assert!(entry_u64(&Tensor::zeros(&[3])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
