//! Multi-head self-attention within a Swin window, with axial 2D RoPE.

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};
use crate::rope::RopeTable;
use aeris_autodiff::{Tape, Var, WindowAttnPlan};
use aeris_tensor::Rng;

/// Window-local multi-head attention: queries, keys, and values are projected
/// from the window's tokens, queries/keys are rotated by the 2D RoPE table,
/// and scaled dot-product attention runs independently per head.
#[derive(Clone, Copy, Debug)]
pub struct WindowAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub dim: usize,
    pub n_heads: usize,
    pub head_dim: usize,
}

impl WindowAttention {
    /// Construct with `dim = n_heads * head_dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, n_heads: usize, rng: &mut Rng) -> Self {
        assert_eq!(dim % n_heads, 0, "dim must divide by n_heads");
        let head_dim = dim / n_heads;
        assert_eq!(head_dim % 4, 0, "head_dim must be divisible by 4 for axial RoPE");
        WindowAttention {
            wq: Linear::new_no_bias(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new_no_bias(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new_no_bias(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new_no_bias(store, &format!("{name}.wo"), dim, dim, rng),
            dim,
            n_heads,
            head_dim,
        }
    }

    /// Forward for one window: `x: [s, dim] → [s, dim]`, `s = rope.seq_len()`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        store: &ParamStore,
        x: Var,
        rope: &RopeTable,
    ) -> Var {
        let s = tape.value(x).shape()[0];
        assert_eq!(s, rope.seq_len(), "window size mismatch with RoPE table");
        let q = self.wq.forward(tape, binding, store, x);
        let k = self.wk.forward(tape, binding, store, x);
        let v = self.wv.forward(tape, binding, store, x);

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outs = Vec::with_capacity(self.n_heads);
        for h in 0..self.n_heads {
            let (c0, c1) = (h * self.head_dim, (h + 1) * self.head_dim);
            let qh = tape.slice_cols(q, c0, c1);
            let kh = tape.slice_cols(k, c0, c1);
            let vh = tape.slice_cols(v, c0, c1);
            let qh = tape.rope_rows(qh, &rope.cos, &rope.sin);
            let kh = tape.rope_rows(kh, &rope.cos, &rope.sin);
            let scores = tape.matmul_nt(qh, kh);
            let scores = tape.scale(scores, scale);
            let probs = tape.softmax_rows(scores);
            head_outs.push(tape.matmul(probs, vh));
        }
        let merged = tape.concat_cols(&head_outs);
        self.wo.forward(tape, binding, store, merged)
    }

    /// Fused forward over *all* windows at once: `windowed` is the
    /// window-partitioned `[n_windows · s, dim]` token matrix (window-major
    /// rows), `s = rope.seq_len()`. One tape node instead of ~10 per window;
    /// the kernel parallelizes over windows with per-thread scratch. Matches
    /// [`WindowAttention::forward`] applied window by window.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_all_windows(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        store: &ParamStore,
        windowed: Var,
        rope: &RopeTable,
        n_windows: usize,
    ) -> Var {
        let plan = WindowAttnPlan::new(
            n_windows,
            rope.seq_len(),
            self.n_heads,
            self.head_dim,
            rope.cos.clone(),
            rope.sin.clone(),
        );
        let wq = binding.var(tape, store, self.wq.w);
        let wk = binding.var(tape, store, self.wk.w);
        let wv = binding.var(tape, store, self.wv.w);
        let wo = binding.var(tape, store, self.wo.w);
        tape.window_attention(windowed, wq, wk, wv, wo, &plan)
    }

    /// Scalar parameter count (4·dim² for the projections).
    pub fn num_params(&self) -> usize {
        self.wq.num_params() + self.wk.num_params() + self.wv.num_params() + self.wo.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Tensor;

    fn setup(dim: usize, heads: usize) -> (ParamStore, WindowAttention, Rng) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(20);
        let attn = WindowAttention::new(&mut store, "attn", dim, heads, &mut rng);
        (store, attn, rng)
    }

    #[test]
    fn output_shape_and_param_count() {
        let (store, attn, mut rng) = setup(16, 2);
        assert_eq!(attn.num_params(), 4 * 16 * 16);
        let rope = RopeTable::new(2, 3, 8, 0, 0);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::randn(&[6, 16], &mut rng));
        let y = attn.forward(&mut tape, &mut binding, &store, x, &rope);
        assert_eq!(tape.value(y).shape(), &[6, 16]);
        assert!(tape.value(y).all_finite());
    }

    /// Attention rows are convex combinations: with V = const rows, output
    /// before W_o equals that constant. We test end-to-end by checking the
    /// attention is permutation-equivariant-free thanks to RoPE: permuting
    /// tokens changes outputs (position matters).
    #[test]
    fn rope_makes_attention_position_sensitive() {
        let (store, attn, mut rng) = setup(8, 2);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let run = |input: &Tensor| {
            let mut tape = Tape::new();
            let mut binding = Binding::new(&store);
            let xv = tape.constant(input.clone());
            let y = attn.forward(&mut tape, &mut binding, &store, xv, &rope);
            tape.value(y).clone()
        };
        let y = run(&x);
        // Swap token 0 and 3 and compare swapped output: with absolute PE-free
        // attention they would match exactly; RoPE breaks the symmetry.
        let mut xs = x.clone();
        let (r0, r3) = (x.row(0).to_vec(), x.row(3).to_vec());
        xs.row_mut(0).copy_from_slice(&r3);
        xs.row_mut(3).copy_from_slice(&r0);
        let ys = run(&xs);
        let mut ys_unswapped = ys.clone();
        let (s0, s3) = (ys.row(0).to_vec(), ys.row(3).to_vec());
        ys_unswapped.row_mut(0).copy_from_slice(&s3);
        ys_unswapped.row_mut(3).copy_from_slice(&s0);
        assert!(y.max_abs_diff(&ys_unswapped) > 1e-4, "attention ignored positions");
    }

    #[test]
    fn gradients_reach_all_projections() {
        let (store, attn, mut rng) = setup(8, 2);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::randn(&[4, 8], &mut rng));
        let y = attn.forward(&mut tape, &mut binding, &store, x, &rope);
        let sq = tape.mul(y, y);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        let g = binding.collect_grads(&mut grads);
        for lin in [attn.wq, attn.wk, attn.wv, attn.wo] {
            assert!(g[lin.w.0].as_ref().unwrap().abs_max() > 0.0, "missing grad");
        }
    }

    /// The tape-built attention must agree with a straightforward reference
    /// implementation computed with raw tensor ops.
    #[test]
    fn matches_brute_force_reference() {
        let (store, attn, mut rng) = setup(8, 2);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let x = Tensor::randn(&[4, 8], &mut rng);

        // Tape path.
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let xv = tape.constant(x.clone());
        let y = attn.forward(&mut tape, &mut binding, &store, xv, &rope);
        let tape_out = tape.value(y).clone();

        // Reference path.
        let w = |lin: &crate::linear::Linear| store.get(lin.w).clone();
        let q = aeris_tensor::matmul(&x, &w(&attn.wq));
        let k = aeris_tensor::matmul(&x, &w(&attn.wk));
        let v = aeris_tensor::matmul(&x, &w(&attn.wv));
        let mut heads = Vec::new();
        for h in 0..2 {
            let (c0, c1) = (h * 4, (h + 1) * 4);
            let qh = crate::rope::apply_rope(&q.slice_cols(c0, c1), &rope);
            let kh = crate::rope::apply_rope(&k.slice_cols(c0, c1), &rope);
            let vh = v.slice_cols(c0, c1);
            let scores = aeris_tensor::matmul_nt(&qh, &kh).scale(1.0 / 2.0);
            let probs = scores.softmax_rows();
            heads.push(aeris_tensor::matmul(&probs, &vh));
        }
        let merged = Tensor::concat_cols(&heads.iter().collect::<Vec<_>>());
        let reference = aeris_tensor::matmul(&merged, &w(&attn.wo));
        assert!(
            tape_out.max_abs_diff(&reference) < 1e-4,
            "tape attention deviates from reference by {}",
            tape_out.max_abs_diff(&reference)
        );
    }

    /// The fused all-windows path must agree with the per-window op chain in
    /// both forward values and gradients (input and all four projections).
    #[test]
    fn fused_all_windows_matches_per_window_path() {
        let (store, attn, mut rng) = setup(8, 2);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let n_windows = 3;
        let wlen = rope.seq_len();
        let x = Tensor::randn(&[n_windows * wlen, 8], &mut rng);

        let run = |fused: bool| -> (Tensor, Vec<Option<Tensor>>, Tensor) {
            let mut tape = Tape::new();
            let mut binding = Binding::new(&store);
            let xv = tape.leaf(x.clone());
            let y = if fused {
                attn.forward_all_windows(&mut tape, &mut binding, &store, xv, &rope, n_windows)
            } else {
                let mut outs = Vec::new();
                for w in 0..n_windows {
                    let win = tape.slice_rows(xv, w * wlen, (w + 1) * wlen);
                    outs.push(attn.forward(&mut tape, &mut binding, &store, win, &rope));
                }
                tape.concat_rows(&outs)
            };
            let sq = tape.mul(y, y);
            let loss = tape.sum(sq);
            let y_val = tape.value(y).clone();
            let mut grads = tape.backward(loss);
            let gx = grads.take(xv).unwrap();
            (y_val, binding.collect_grads(&mut grads), gx)
        };

        let (y_f, g_f, gx_f) = run(true);
        let (y_u, g_u, gx_u) = run(false);
        assert!(y_f.max_abs_diff(&y_u) < 1e-5, "forward diff {}", y_f.max_abs_diff(&y_u));
        assert!(gx_f.max_abs_diff(&gx_u) < 1e-5, "input grad diff {}", gx_f.max_abs_diff(&gx_u));
        for lin in [attn.wq, attn.wk, attn.wv, attn.wo] {
            let (a, b) = (g_f[lin.w.0].as_ref().unwrap(), g_u[lin.w.0].as_ref().unwrap());
            assert!(a.max_abs_diff(b) < 1e-5, "weight grad diff {}", a.max_abs_diff(b));
        }
    }

    /// Numerical gradcheck of the full attention block wrt the input.
    #[test]
    fn gradcheck_attention_input() {
        let (store, attn, mut rng) = setup(8, 2);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let f = |input: &Tensor| {
            let mut tape = Tape::new();
            let mut binding = Binding::new(&store);
            let xv = tape.leaf(input.clone());
            let y = attn.forward(&mut tape, &mut binding, &store, xv, &rope);
            let sq = tape.mul(y, y);
            let l = tape.sum(sq);
            (tape, binding, xv, l)
        };
        let (mut tape, _b, xv, l) = f(&x);
        let mut grads = tape.backward(l);
        let analytic = grads.take(xv).unwrap();
        let mut numf = |input: &Tensor| {
            let (tape, _b, _x, l) = f(input);
            tape.value(l).data()[0] as f64
        };
        let numeric = aeris_autodiff::numeric_grad(&mut numf, &x, 1e-3);
        aeris_autodiff::assert_grad_close(&analytic, &numeric, 3e-2);
    }
}
