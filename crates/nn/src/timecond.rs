//! Diffusion-time conditioning (§V-B).
//!
//! The TrigFlow diffusion time `t ∈ [0, π/2]` is embedded with sinusoidal
//! features, projected through a **shared** linear layer (one per model), and
//! broadcast to all blocks; each block owns a layer-specific linear head that
//! produces its AdaLN `(shift, scale, gate)` values. The block heads are
//! zero-initialized (the DiT trick) so every block starts as an identity
//! residual branch.

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};
use aeris_autodiff::{Tape, Var};
use aeris_tensor::{Rng, Tensor};

/// Sinusoidal features of a scalar diffusion time. `dim` must be even; half
/// the features are sines, half cosines, with log-spaced frequencies.
pub fn timestep_features(t: f32, dim: usize) -> Tensor {
    assert!(dim.is_multiple_of(2), "feature dim must be even");
    let half = dim / 2;
    let mut out = Tensor::zeros(&[dim]);
    for k in 0..half {
        // Frequencies from 1 to 10^3, log-spaced — t is O(1) so low
        // frequencies carry the coarse scale and high ones the detail.
        let freq = 1_000.0f32.powf(k as f32 / (half.max(2) - 1) as f32);
        out.data_mut()[k] = (t * freq).sin();
        out.data_mut()[half + k] = (t * freq).cos();
    }
    out
}

/// The shared part of the conditioner: features → SiLU(Linear) → cond vector.
#[derive(Clone, Copy, Debug)]
pub struct TimeConditioner {
    pub proj: Linear,
    pub feat_dim: usize,
    pub cond_dim: usize,
}

impl TimeConditioner {
    /// Construct with feature and conditioning dims.
    pub fn new(store: &mut ParamStore, name: &str, feat_dim: usize, cond_dim: usize, rng: &mut Rng) -> Self {
        let proj = Linear::new(store, &format!("{name}.proj"), feat_dim, cond_dim, rng);
        TimeConditioner { proj, feat_dim, cond_dim }
    }

    /// Embed a diffusion time onto the tape → `[1, cond_dim]`.
    pub fn embed(&self, tape: &mut Tape, binding: &mut Binding, store: &ParamStore, t: f32) -> Var {
        let feats = timestep_features(t, self.feat_dim).reshape(&[1, self.feat_dim]);
        let f = tape.constant(feats);
        let h = self.proj.forward(tape, binding, store, f);
        tape.silu(h)
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.proj.num_params()
    }
}

/// A per-block AdaLN head producing six `[dim]` modulation vectors
/// `(shift_attn, scale_attn, gate_attn, shift_mlp, scale_mlp, gate_mlp)` from
/// the shared conditioning vector.
#[derive(Clone, Copy, Debug)]
pub struct AdaLnHead {
    pub head: Linear,
    pub dim: usize,
}

impl AdaLnHead {
    /// Zero-initialized head (blocks start as identity).
    pub fn new(store: &mut ParamStore, name: &str, cond_dim: usize, dim: usize) -> Self {
        let head = Linear::new_zeros(store, &format!("{name}.adaln"), cond_dim, 6 * dim);
        AdaLnHead { head, dim }
    }

    /// Produce the six modulation vectors for this block.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        store: &ParamStore,
        cond: Var,
    ) -> [Var; 6] {
        let m = self.head.forward(tape, binding, store, cond); // [1, 6*dim]
        let flat = tape.reshape(m, &[6 * self.dim]);
        // Slices of a 1-D tensor: go through a [6, dim] view and gather rows.
        let mat = tape.reshape(flat, &[6, self.dim]);
        let mut out = Vec::with_capacity(6);
        for i in 0..6 {
            let row = tape.gather_rows(mat, &[i]);
            out.push(tape.reshape(row, &[self.dim]));
        }
        [out[0], out[1], out[2], out[3], out[4], out[5]]
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.head.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_distinguish_times() {
        let a = timestep_features(0.1, 32);
        let b = timestep_features(1.4, 32);
        assert!(a.max_abs_diff(&b) > 0.1);
        assert_eq!(a.shape(), &[32]);
        assert!(a.abs_max() <= 1.0 + 1e-6);
    }

    #[test]
    fn features_are_smooth_in_t() {
        let a = timestep_features(0.5, 64);
        let b = timestep_features(0.5001, 64);
        assert!(a.max_abs_diff(&b) < 0.15);
    }

    #[test]
    fn conditioner_shapes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(30);
        let tc = TimeConditioner::new(&mut store, "t", 16, 24, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let c = tc.embed(&mut tape, &mut binding, &store, 0.7);
        assert_eq!(tape.value(c).shape(), &[1, 24]);
    }

    #[test]
    fn adaln_head_starts_at_identity_modulation() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(31);
        let tc = TimeConditioner::new(&mut store, "t", 16, 24, &mut rng);
        let head = AdaLnHead::new(&mut store, "blk0", 24, 8);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let c = tc.embed(&mut tape, &mut binding, &store, 0.3);
        let mods = head.forward(&mut tape, &mut binding, &store, c);
        for m in mods {
            assert_eq!(tape.value(m).shape(), &[8]);
            assert_eq!(tape.value(m).abs_max(), 0.0, "zero-init head must emit zeros");
        }
    }

    #[test]
    fn adaln_head_gradients_flow() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(32);
        let tc = TimeConditioner::new(&mut store, "t", 8, 12, &mut rng);
        let head = AdaLnHead::new(&mut store, "blk0", 12, 4);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let c = tc.embed(&mut tape, &mut binding, &store, 0.9);
        let mods = head.forward(&mut tape, &mut binding, &store, c);
        let rows: Vec<Var> = mods
            .iter()
            .map(|&m| tape_reshape_row(&mut tape, m))
            .collect();
        let cat = tape.concat_cols(&rows);
        let sq = tape.mul(cat, cat);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        let g = binding.collect_grads(&mut grads);
        // Zero-init head weight gets zero grad contribution only if upstream is
        // zero; loss = sum(m^2) has dL/dm = 2m = 0, so instead check the bias
        // path participates (grad exists even if numerically zero).
        assert!(g[head.head.w.0].is_some());
        assert!(g[head.head.b.unwrap().0].is_some());
    }

    fn tape_reshape_row(tape: &mut Tape, v: Var) -> Var {
        let n = tape.value(v).len();
        tape.reshape(v, &[1, n])
    }
}
