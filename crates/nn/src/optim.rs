//! Optimization: AdamW (paper hyperparameters), the paper's learning-rate
//! schedule, and the EMA of parameters used at inference.

use crate::params::ParamStore;
use aeris_tensor::Tensor;

/// AdamW hyperparameters. Defaults follow the paper (§VI-B):
/// β = [0.85, 0.9], ε = 1e-8, weight decay λ = 0.01.
#[derive(Clone, Copy, Debug)]
pub struct AdamWConfig {
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig { beta1: 0.85, beta2: 0.9, eps: 1e-8, weight_decay: 0.01 }
    }
}

/// AdamW with decoupled weight decay and bias correction. Optimizer state is
/// kept in FP32 alongside FP32 master weights, matching the paper's
/// mixed-precision policy.
pub struct AdamW {
    cfg: AdamWConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step: u64,
}

impl AdamW {
    /// State sized for `store`.
    pub fn new(store: &ParamStore, cfg: AdamWConfig) -> Self {
        let m = store.iter().map(|(_, _, t)| Tensor::zeros(t.shape())).collect();
        let v = store.iter().map(|(_, _, t)| Tensor::zeros(t.shape())).collect();
        AdamW { cfg, m, v, step: 0 }
    }

    /// Number of optimizer steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Apply one update. `grads[i]` is the gradient for parameter id `i`
    /// (missing gradients are skipped — e.g. pipeline stages only own a slice
    /// of the parameters).
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>], lr: f32) {
        assert_eq!(grads.len(), store.len(), "gradient vector size mismatch");
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for (i, grad) in grads.iter().enumerate() {
            let Some(g) = grad else { continue };
            let id = crate::params::ParamId(i);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            assert_eq!(g.shape(), m.shape(), "grad shape mismatch for param {i}");
            let p = store.get_mut(id);
            let (b1, b2, eps, wd) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps, self.cfg.weight_decay);
            adamw_sweep(
                p.data_mut(), g.data(), m.data_mut(), v.data_mut(),
                b1, b2, eps, wd, lr, bc1, bc2,
            );
        }
    }

    /// Direct access to first/second-moment state for a parameter (ZeRO-1
    /// sharding in `aeris-swipe` moves these across ranks).
    pub fn state_mut(&mut self, i: usize) -> (&mut Tensor, &mut Tensor) {
        (&mut self.m[i], &mut self.v[i])
    }

    /// Read-only access to first/second-moment state (checkpointing).
    pub fn state(&self, i: usize) -> (&Tensor, &Tensor) {
        (&self.m[i], &self.v[i])
    }

    /// Restore the step counter after loading checkpointed moments; the
    /// counter drives bias correction, so resumed runs must continue it
    /// exactly where the saved run stopped.
    pub fn set_steps(&mut self, steps: u64) {
        self.step = steps;
    }
}

/// The fused AdamW update over one parameter's flat buffers, unrolled in
/// `sweeps::W`-wide unit-stride chunks so the autovectorizer can lift it to
/// SIMD. Element `j` depends only on inputs `j` (no cross-element reduction),
/// so the sweep is bitwise identical to the scalar loop it replaced —
/// checkpoint-resume bitwise guarantees are unaffected.
#[allow(clippy::too_many_arguments)]
fn adamw_sweep(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    b1: f32,
    b2: f32,
    eps: f32,
    wd: f32,
    lr: f32,
    bc1: f32,
    bc2: f32,
) {
    use aeris_tensor::sweeps::W;
    #[inline(always)]
    fn update(
        pj: &mut f32, gj: f32, mj: &mut f32, vj: &mut f32,
        b1: f32, b2: f32, eps: f32, wd: f32, lr: f32, bc1: f32, bc2: f32,
    ) {
        *mj = b1 * *mj + (1.0 - b1) * gj;
        *vj = b2 * *vj + (1.0 - b2) * gj * gj;
        let mhat = *mj / bc1;
        let vhat = *vj / bc2;
        *pj -= lr * (mhat / (vhat.sqrt() + eps) + wd * *pj);
    }
    let mut pc = p.chunks_exact_mut(W);
    let mut gc = g.chunks_exact(W);
    let mut mc = m.chunks_exact_mut(W);
    let mut vc = v.chunks_exact_mut(W);
    for (((pw, gw), mw), vw) in (&mut pc).zip(&mut gc).zip(&mut mc).zip(&mut vc) {
        for j in 0..W {
            update(&mut pw[j], gw[j], &mut mw[j], &mut vw[j], b1, b2, eps, wd, lr, bc1, bc2);
        }
    }
    for (((pj, &gj), mj), vj) in pc
        .into_remainder()
        .iter_mut()
        .zip(gc.remainder())
        .zip(mc.into_remainder().iter_mut())
        .zip(vc.into_remainder().iter_mut())
    {
        update(pj, gj, mj, vj, b1, b2, eps, wd, lr, bc1, bc2);
    }
}

/// The paper's learning-rate schedule (§VI-B): linear warmup over
/// `warmup` images to `peak`, constant, then linear decay to zero over the
/// final `decay` images of `total`.
#[derive(Clone, Copy, Debug)]
pub struct LrSchedule {
    pub peak: f32,
    pub warmup: u64,
    pub decay: u64,
    pub total: u64,
}

impl LrSchedule {
    /// The paper's published schedule scaled to a given total image count:
    /// peak 5e-4, warmup 50k/3m of total, decay 100k/3m of total.
    pub fn paper_scaled(total: u64) -> Self {
        LrSchedule {
            peak: 5e-4,
            warmup: (total / 60).max(1),
            decay: (total / 30).max(1),
            total,
        }
    }

    /// Learning rate after `images` images have been seen.
    pub fn lr_at(&self, images: u64) -> f32 {
        if images < self.warmup {
            return self.peak * images as f32 / self.warmup as f32;
        }
        let decay_start = self.total.saturating_sub(self.decay);
        if images >= self.total {
            return 0.0;
        }
        if images >= decay_start {
            let frac = (self.total - images) as f32 / self.decay as f32;
            return self.peak * frac;
        }
        self.peak
    }
}

/// Exponential moving average of parameters with an image-count half-life
/// (paper: 100k-image half-life; EMA weights are the inference weights).
pub struct Ema {
    shadow: Vec<Tensor>,
    halflife: f64,
}

impl Ema {
    /// Initialize the shadow from the current parameters.
    pub fn new(store: &ParamStore, halflife_images: f64) -> Self {
        Ema { shadow: store.snapshot(), halflife: halflife_images }
    }

    /// Fold in the current parameters after observing `n_images` more images.
    pub fn update(&mut self, store: &ParamStore, n_images: f64) {
        let decay = (0.5f64).powf(n_images / self.halflife) as f32;
        for ((_, _, p), s) in store.iter().zip(&mut self.shadow) {
            // s = decay * s + (1 - decay) * p
            s.scale_inplace(decay);
            s.axpy(1.0 - decay, p);
        }
    }

    /// Copy the EMA weights into a store (typically a clone used for
    /// inference).
    pub fn apply_to(&self, store: &mut ParamStore) {
        store.restore(&self.shadow);
    }

    /// Borrow the shadow weights.
    pub fn shadow(&self) -> &[Tensor] {
        &self.shadow
    }

    /// Overwrite the shadow weights (checkpoint-restart). Shapes must match
    /// the existing shadow exactly.
    pub fn restore_shadow(&mut self, shadow: Vec<Tensor>) {
        assert_eq!(shadow.len(), self.shadow.len(), "EMA shadow count mismatch");
        for (new, old) in shadow.iter().zip(&self.shadow) {
            assert_eq!(new.shape(), old.shape(), "EMA shadow shape mismatch");
        }
        self.shadow = shadow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    #[test]
    fn adamw_descends_a_quadratic() {
        // minimize f(w) = (w - 3)^2 elementwise
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[0.0, 10.0]));
        let mut opt = AdamW::new(&store, AdamWConfig { weight_decay: 0.0, ..Default::default() });
        for _ in 0..800 {
            let g = store.get(w).map(|x| 2.0 * (x - 3.0));
            opt.step(&mut store, &[Some(g)], 0.05);
        }
        for &x in store.get(w).data() {
            assert!((x - 3.0).abs() < 0.05, "did not converge: {x}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params_without_grad_signal() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[4.0]));
        let mut opt = AdamW::new(&store, AdamWConfig::default());
        for _ in 0..100 {
            opt.step(&mut store, &[Some(Tensor::zeros(&[1]))], 0.1);
        }
        assert!(store.get(w).data()[0] < 4.0);
    }

    #[test]
    fn missing_grads_are_skipped() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[1.0]));
        let mut opt = AdamW::new(&store, AdamWConfig::default());
        opt.step(&mut store, &[None], 0.1);
        assert_eq!(store.get(w).data(), &[1.0]);
    }

    #[test]
    fn schedule_shape() {
        let s = LrSchedule { peak: 1.0, warmup: 100, decay: 200, total: 1000 };
        assert_eq!(s.lr_at(0), 0.0);
        assert!((s.lr_at(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.lr_at(100), 1.0);
        assert_eq!(s.lr_at(500), 1.0);
        assert!((s.lr_at(900) - 0.5).abs() < 1e-6);
        assert_eq!(s.lr_at(1000), 0.0);
        assert_eq!(s.lr_at(2000), 0.0);
    }

    #[test]
    fn paper_scaled_ratios() {
        let s = LrSchedule::paper_scaled(3_000_000);
        assert_eq!(s.warmup, 50_000);
        assert_eq!(s.decay, 100_000);
        assert_eq!(s.peak, 5e-4);
    }

    #[test]
    fn ema_halflife_semantics() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[0.0]));
        let mut ema = Ema::new(&store, 100.0);
        // Move the parameter to 1.0 and update for exactly one half-life.
        store.get_mut(w).data_mut()[0] = 1.0;
        ema.update(&store, 100.0);
        assert!((ema.shadow()[0].data()[0] - 0.5).abs() < 1e-6);
        // Another half-life pulls halfway to 1.0 again: 0.75.
        ema.update(&store, 100.0);
        assert!((ema.shadow()[0].data()[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn ema_apply_round_trip() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(40);
        let _w = store.register("w", Tensor::randn(&[4], &mut rng));
        let ema = Ema::new(&store, 10.0);
        let mut infer = store.clone();
        infer.get_mut(crate::params::ParamId(0)).map_inplace(|_| 0.0);
        ema.apply_to(&mut infer);
        assert_eq!(infer.get(crate::params::ParamId(0)), store.get(crate::params::ParamId(0)));
    }
}
