//! Parameter storage and tape binding.
//!
//! [`ParamStore`] owns the FP32 master copy of every learnable tensor in a
//! model. Layers hold [`ParamId`]s into the store, so the same layer objects
//! can be (a) trained single-rank, (b) replicated across SWiPe model-parallel
//! ranks, or (c) swapped for EMA shadow weights at inference, just by handing
//! them a different store.

use aeris_autodiff::{Grads, Tape, Var};
use aeris_tensor::{Rng, Tensor};

pub use aeris_autodiff::Grads as TapeGrads;

/// Index of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Owns parameter tensors (FP32 master weights) and their names.
#[derive(Clone, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter tensor under `name`; returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Register a truncated-normal-initialized parameter (std 0.02, the
    /// standard transformer init) of the given shape.
    pub fn register_normal(&mut self, name: impl Into<String>, shape: &[usize], std: f32, rng: &mut Rng) -> ParamId {
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            // Truncate at 2 std to avoid outlier weights.
            let mut x = rng.normal();
            while x.abs() > 2.0 {
                x = rng.normal();
            }
            *v = x * std;
        }
        self.register(name, t)
    }

    /// Register a zero-initialized parameter.
    pub fn register_zeros(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamId {
        self.register(name, Tensor::zeros(shape))
    }

    /// Register a ones-initialized parameter (norm gains).
    pub fn register_ones(&mut self, name: impl Into<String>, shape: &[usize]) -> ParamId {
        self.register(name, Tensor::ones(shape))
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|t| t.len()).sum()
    }

    /// Borrow a parameter value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutably borrow a parameter value (optimizer updates).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterate `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (v, n))| (ParamId(i), n.as_str(), v))
    }

    /// Deep-copy all values (EMA shadow, checkpointing).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.values.clone()
    }

    /// Restore values from a snapshot taken on an identical store layout.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.values.len());
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            assert_eq!(v.shape(), s.shape());
            *v = s.clone();
        }
    }
}

/// Per-tape cache binding parameters onto tape leaves, so a parameter used by
/// several layers (or several windows) appears exactly once in the graph and
/// its gradient accumulates across all uses.
pub struct Binding {
    vars: Vec<Option<Var>>,
}

impl Binding {
    /// A binding sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        Binding { vars: vec![None; store.len()] }
    }

    /// The tape leaf for parameter `id`, creating it on first use.
    pub fn var(&mut self, tape: &mut Tape, store: &ParamStore, id: ParamId) -> Var {
        if let Some(v) = self.vars[id.0] {
            return v;
        }
        let v = tape.leaf(store.get(id).clone());
        self.vars[id.0] = Some(v);
        v
    }

    /// Collect gradients for every bound parameter after `tape.backward`.
    /// Unused parameters get `None`.
    pub fn collect_grads(&self, grads: &mut Grads) -> Vec<Option<Tensor>> {
        self.vars
            .iter()
            .map(|slot| slot.and_then(|v| grads.take(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let a = store.register_normal("w", &[3, 4], 0.02, &mut rng);
        let b = store.register_zeros("b", &[4]);
        let g = store.register_ones("gamma", &[4]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_scalars(), 12 + 4 + 4);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.get(b).abs_max(), 0.0);
        assert_eq!(store.get(g).min(), 1.0);
    }

    #[test]
    fn normal_init_is_truncated() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let w = store.register_normal("w", &[1000], 0.02, &mut rng);
        assert!(store.get(w).abs_max() <= 0.04 + 1e-9);
    }

    #[test]
    fn binding_dedups_leaves_and_accumulates_grads() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[2.0]));
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let v1 = binding.var(&mut tape, &store, w);
        let v2 = binding.var(&mut tape, &store, w);
        assert_eq!(v1, v2);
        // loss = w*w + 3w => grad 2w+3 = 7
        let sq = tape.mul(v1, v2);
        let three = tape.scale(v1, 3.0);
        let s = tape.add(sq, three);
        let loss = tape.sum(s);
        let mut grads = tape.backward(loss);
        let collected = binding.collect_grads(&mut grads);
        assert_eq!(collected.len(), 1);
        assert!((collected[0].as_ref().unwrap().data()[0] - 7.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_slice(&[1.0, 2.0]));
        let snap = store.snapshot();
        store.get_mut(w).data_mut()[0] = 99.0;
        store.restore(&snap);
        assert_eq!(store.get(w).data(), &[1.0, 2.0]);
    }
}
