//! SwiGLU feed-forward network (§V-B, after Llama 3 / GLU variants).

use crate::linear::Linear;
use crate::params::{Binding, ParamStore};
use aeris_autodiff::{Tape, Var};
use aeris_tensor::Rng;

/// `y = W_down( SiLU(W_gate x) ⊙ (W_up x) )`.
///
/// The gate and up projections are fused into a single `[dim, 2*ffn]` matmul
/// and split, matching how production kernels lay this out.
#[derive(Clone, Copy, Debug)]
pub struct SwiGlu {
    pub w_in: Linear,  // [dim, 2*ffn] fused gate|up
    pub w_down: Linear, // [ffn, dim]
    pub dim: usize,
    pub ffn: usize,
}

impl SwiGlu {
    /// Construct with the given model and hidden dims.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, ffn: usize, rng: &mut Rng) -> Self {
        let w_in = Linear::new_no_bias(store, &format!("{name}.w_in"), dim, 2 * ffn, rng);
        let w_down = Linear::new_no_bias(store, &format!("{name}.w_down"), ffn, dim, rng);
        SwiGlu { w_in, w_down, dim, ffn }
    }

    /// Forward: `[rows, dim] → [rows, dim]`.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, store: &ParamStore, x: Var) -> Var {
        let gu = self.w_in.forward(tape, binding, store, x);
        let gate = tape.slice_cols(gu, 0, self.ffn);
        let up = tape.slice_cols(gu, self.ffn, 2 * self.ffn);
        let act = tape.silu(gate);
        let hidden = tape.mul(act, up);
        self.w_down.forward(tape, binding, store, hidden)
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.w_in.num_params() + self.w_down.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Tensor;

    #[test]
    fn shapes_and_param_count() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(6);
        let ffn = SwiGlu::new(&mut store, "ffn", 8, 16, &mut rng);
        assert_eq!(ffn.num_params(), 8 * 32 + 16 * 8);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::randn(&[5, 8], &mut rng));
        let y = ffn.forward(&mut tape, &mut binding, &store, x);
        assert_eq!(tape.value(y).shape(), &[5, 8]);
        assert!(tape.value(y).all_finite());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let ffn = SwiGlu::new(&mut store, "ffn", 4, 8, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::zeros(&[3, 4]));
        let y = ffn.forward(&mut tape, &mut binding, &store, x);
        assert_eq!(tape.value(y).abs_max(), 0.0);
    }

    #[test]
    fn gradients_flow_to_all_weights() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(8);
        let ffn = SwiGlu::new(&mut store, "ffn", 4, 6, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::randn(&[3, 4], &mut rng));
        let y = ffn.forward(&mut tape, &mut binding, &store, x);
        let sq = tape.mul(y, y);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        let g = binding.collect_grads(&mut grads);
        assert!(g[ffn.w_in.w.0].as_ref().unwrap().abs_max() > 0.0);
        assert!(g[ffn.w_down.w.0].as_ref().unwrap().abs_max() > 0.0);
    }
}
