//! Swin window geometry: partition, merge, and cyclic shift index math.
//!
//! Activations are kept as `[H*W, C]` token matrices (row-major over the
//! lat-lon grid). Everything here is pure index computation producing gather
//! permutations, which both the single-rank model (`aeris-core`) and the
//! distributed runtime (`aeris-swipe`, for its round-robin window placement
//! and shift exchanges) consume.
//!
//! Note on shift masking: the original Swin masks attention across the
//! wrap-around seam after a cyclic shift. Global weather fields are periodic
//! in longitude, so the wrap is physically meaningful along W; the latitude
//! seam is an accepted approximation (the paper trains on pole-trimmed ERA5),
//! and we follow it.

/// Geometry of an image partitioned into non-overlapping attention windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowGrid {
    /// Image height in tokens (latitude).
    pub h: usize,
    /// Image width in tokens (longitude).
    pub w: usize,
    /// Window height.
    pub wh: usize,
    /// Window width.
    pub ww: usize,
}

impl WindowGrid {
    /// Construct; the window must tile the image exactly.
    pub fn new(h: usize, w: usize, wh: usize, ww: usize) -> Self {
        assert!(h.is_multiple_of(wh), "window height {wh} must divide image height {h}");
        assert!(w.is_multiple_of(ww), "window width {ww} must divide image width {w}");
        WindowGrid { h, w, wh, ww }
    }

    /// Number of window rows.
    pub fn rows(&self) -> usize {
        self.h / self.wh
    }

    /// Number of window columns.
    pub fn cols(&self) -> usize {
        self.w / self.ww
    }

    /// Total number of windows.
    pub fn count(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Tokens per window.
    pub fn window_len(&self) -> usize {
        self.wh * self.ww
    }

    /// Total tokens in the image.
    pub fn tokens(&self) -> usize {
        self.h * self.w
    }

    /// Flattened token indices of window `(wr, wc)`, row-major within the
    /// window.
    pub fn window_token_indices(&self, wr: usize, wc: usize) -> Vec<usize> {
        assert!(wr < self.rows() && wc < self.cols());
        let mut out = Vec::with_capacity(self.window_len());
        for r in 0..self.wh {
            let gr = wr * self.wh + r;
            let base = gr * self.w + wc * self.ww;
            out.extend(base..base + self.ww);
        }
        out
    }

    /// Gather permutation producing window-major layout: all tokens of window
    /// (0,0), then (0,1), … row-major over windows.
    pub fn partition_perm(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.tokens());
        for wr in 0..self.rows() {
            for wc in 0..self.cols() {
                out.extend(self.window_token_indices(wr, wc));
            }
        }
        out
    }

    /// Inverse of [`WindowGrid::partition_perm`].
    pub fn unpartition_perm(&self) -> Vec<usize> {
        invert_perm(&self.partition_perm())
    }

    /// Gather permutation for a cyclic roll: output token at `(r, c)` comes
    /// from input token at `((r + sh) mod H, (c + sw) mod W)` — i.e. the image
    /// content moves up-left by `(sh, sw)`, matching `torch.roll(x, (-sh,-sw))`
    /// used by Swin before partitioning shifted windows.
    pub fn roll_perm(&self, sh: usize, sw: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.tokens());
        for r in 0..self.h {
            for c in 0..self.w {
                let sr = (r + sh) % self.h;
                let sc = (c + sw) % self.w;
                out.push(sr * self.w + sc);
            }
        }
        out
    }

    /// Inverse roll (moves content back down-right by `(sh, sw)`).
    pub fn unroll_perm(&self, sh: usize, sw: usize) -> Vec<usize> {
        self.roll_perm(self.h - sh % self.h, self.w - sw % self.w)
    }

    /// The standard Swin shift: half a window in each direction.
    pub fn half_shift(&self) -> (usize, usize) {
        (self.wh / 2, self.ww / 2)
    }

    /// Round-robin owner of window `(wr, wc)` on an `a × b` WP rank grid
    /// (paper Fig. 2a middle: windows distributed round-robin in X and Y so
    /// that shifted windows land on the same ranks).
    pub fn round_robin_owner(&self, wr: usize, wc: usize, a: usize, b: usize) -> (usize, usize) {
        (wr % a, wc % b)
    }

    /// All windows owned by WP rank `(ra, rb)` under round-robin placement.
    pub fn windows_of_owner(&self, ra: usize, rb: usize, a: usize, b: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for wr in (ra..self.rows()).step_by(a) {
            for wc in (rb..self.cols()).step_by(b) {
                out.push((wr, wc));
            }
        }
        out
    }
}

/// Invert a permutation.
pub fn invert_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        debug_assert!(inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let g = WindowGrid::new(8, 12, 4, 4);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.count(), 6);
        assert_eq!(g.window_len(), 16);
        assert_eq!(g.tokens(), 96);
    }

    #[test]
    #[should_panic]
    fn non_divisible_window_rejected() {
        WindowGrid::new(10, 12, 4, 4);
    }

    #[test]
    fn window_tokens_are_correct() {
        let g = WindowGrid::new(4, 4, 2, 2);
        // window (1,0) covers rows 2-3, cols 0-1
        assert_eq!(g.window_token_indices(1, 0), vec![8, 9, 12, 13]);
        assert_eq!(g.window_token_indices(0, 1), vec![2, 3, 6, 7]);
    }

    #[test]
    fn partition_perm_is_a_permutation_and_invertible() {
        let g = WindowGrid::new(6, 8, 3, 4);
        let p = g.partition_perm();
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..48).collect::<Vec<_>>());
        let inv = g.unpartition_perm();
        for i in 0..p.len() {
            assert_eq!(inv[p[i]], i);
        }
    }

    #[test]
    fn roll_matches_reference_semantics() {
        let g = WindowGrid::new(3, 4, 3, 4);
        let p = g.roll_perm(1, 2);
        // output (0,0) should read input (1,2) = index 6
        assert_eq!(p[0], 6);
        // output (2,3) should read input ((2+1)%3,(3+2)%4) = (0,1) = 1
        assert_eq!(p[2 * 4 + 3], 1);
    }

    #[test]
    fn roll_unroll_roundtrip() {
        let g = WindowGrid::new(6, 8, 2, 4);
        let (sh, sw) = g.half_shift();
        let roll = g.roll_perm(sh, sw);
        let unroll = g.unroll_perm(sh, sw);
        for i in 0..g.tokens() {
            assert_eq!(roll[unroll[i]], i);
            assert_eq!(unroll[roll[i]], i);
        }
    }

    #[test]
    fn round_robin_covers_all_windows_exactly_once() {
        let g = WindowGrid::new(16, 16, 2, 2); // 8x8 windows
        let (a, b) = (2, 4);
        let mut seen = vec![false; g.count()];
        for ra in 0..a {
            for rb in 0..b {
                for (wr, wc) in g.windows_of_owner(ra, rb, a, b) {
                    assert_eq!(g.round_robin_owner(wr, wc, a, b), (ra, rb));
                    let ix = wr * g.cols() + wc;
                    assert!(!seen[ix], "window seen twice");
                    seen[ix] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// The property SWiPe exploits (paper §V-A): under round-robin placement,
    /// shifting windows by half a window moves each window's content between
    /// the SAME pair of ranks for every window a rank owns, giving the batched
    /// send/recv pattern. We verify the weaker invariant that each owner's
    /// window count is balanced.
    #[test]
    fn round_robin_is_balanced() {
        let g = WindowGrid::new(24, 24, 3, 3); // 8x8 windows
        let (a, b) = (4, 4);
        let mut counts = vec![0usize; a * b];
        for wr in 0..g.rows() {
            for wc in 0..g.cols() {
                let (ra, rb) = g.round_robin_owner(wr, wc, a, b);
                counts[ra * b + rb] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == g.count() / (a * b)));
    }

    #[test]
    fn invert_perm_identity() {
        let p: Vec<usize> = vec![3, 1, 0, 2];
        assert_eq!(invert_perm(&invert_perm(&p)), p);
    }
}
