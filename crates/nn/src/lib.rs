//! Neural-network layers for AERIS.
//!
//! The building blocks follow §V-B of the paper: pre-RMSNorm, SwiGLU
//! feed-forward, multi-head window attention with axial-frequency 2D rotary
//! position embeddings, adaptive layer norm (AdaLN/FiLM) conditioning on the
//! diffusion time, a 2D sinusoidal positional encoding added to the input
//! pixels, and the Swin window partition / cyclic-shift machinery.
//!
//! Parameters live in a [`ParamStore`] (FP32 master copies, exactly as the
//! paper keeps parameters in FP32 while compute runs in BF16); each forward
//! pass binds them onto an [`aeris_autodiff::Tape`] through a [`Binding`].

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod attention;
pub mod checkpoint;
pub mod ffn;
pub mod linear;
pub mod norm;
pub mod optim;
pub mod params;
pub mod posenc;
pub mod rope;
pub mod timecond;
pub mod window;

pub use attention::WindowAttention;
pub use checkpoint::{load_entries, load_params, save_entries, save_params};
pub use ffn::SwiGlu;
pub use linear::Linear;
pub use norm::RmsNorm;
pub use optim::{AdamW, AdamWConfig, Ema, LrSchedule};
pub use params::{Binding, ParamId, ParamStore};
pub use posenc::pos_encoding_2d;
pub use rope::RopeTable;
pub use timecond::{timestep_features, TimeConditioner};
pub use window::WindowGrid;
