//! 2D sinusoidal positional encoding added to the input pixels (§V-B).
//!
//! The paper adds one 2D sinusoidal field to *each channel* of the input as a
//! proxy of locality. We build a multi-octave sin/cos field over (lat, lon)
//! normalized to zero mean and bounded amplitude.

use aeris_tensor::Tensor;

/// Positional field of shape `[h*w]` (row-major), values in roughly
/// `[-amp, amp]`. Added identically to every channel.
pub fn pos_encoding_2d(h: usize, w: usize, amp: f32) -> Tensor {
    let octaves = 4usize;
    let mut out = Tensor::zeros(&[h * w]);
    let norm = amp / (2.0 * octaves as f32);
    for r in 0..h {
        for c in 0..w {
            let mut v = 0.0f32;
            for k in 0..octaves {
                let f = (1 << k) as f32;
                let ar = 2.0 * std::f32::consts::PI * f * r as f32 / h as f32;
                let ac = 2.0 * std::f32::consts::PI * f * c as f32 / w as f32;
                v += ar.sin() + ac.cos();
            }
            out.data_mut()[r * w + c] = v * norm;
        }
    }
    out
}

/// Add the positional field to every channel of a `[h*w, channels]` matrix.
pub fn add_pos_encoding(x: &Tensor, pe: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2);
    assert_eq!(pe.shape(), &[x.shape()[0]]);
    let mut out = x.clone();
    let cols = x.shape()[1];
    for r in 0..x.shape()[0] {
        let p = pe.data()[r];
        for v in &mut out.data_mut()[r * cols..(r + 1) * cols] {
            *v += p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_is_bounded() {
        let pe = pos_encoding_2d(16, 32, 0.1);
        assert!(pe.abs_max() <= 0.1 + 1e-6);
    }

    #[test]
    fn distinct_positions_get_distinct_codes() {
        let pe = pos_encoding_2d(8, 8, 1.0);
        // Not all equal
        assert!(pe.max() - pe.min() > 1e-3);
    }

    #[test]
    fn add_broadcasts_over_channels() {
        let pe = pos_encoding_2d(2, 2, 1.0);
        let x = Tensor::zeros(&[4, 3]);
        let y = add_pos_encoding(&x, &pe);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(y.at(&[r, c]), pe.data()[r]);
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(pos_encoding_2d(6, 6, 0.5), pos_encoding_2d(6, 6, 0.5));
    }
}
