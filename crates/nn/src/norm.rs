//! Root-mean-square layer normalization (pre-norm, per §V-B).

use crate::params::{Binding, ParamId, ParamStore};
use aeris_autodiff::{Tape, Var};

/// RMSNorm with a learned gain, applied over the feature (last) dimension of a
/// `[tokens, dim]` activation.
#[derive(Clone, Copy, Debug)]
pub struct RmsNorm {
    pub gamma: ParamId,
    pub dim: usize,
    pub eps: f32,
}

impl RmsNorm {
    /// Gain initialized to ones.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register_ones(format!("{name}.gamma"), &[dim]);
        RmsNorm { gamma, dim, eps: 1e-6 }
    }

    /// Forward: `[rows, dim] → [rows, dim]`.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, store: &ParamStore, x: Var) -> Var {
        let g = binding.var(tape, store, self.gamma);
        tape.rmsnorm_rows(x, g, self.eps)
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::{Rng, Tensor};

    #[test]
    fn unit_gain_normalizes_rms_to_one() {
        let mut store = ParamStore::new();
        let norm = RmsNorm::new(&mut store, "n", 16);
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[8, 16], &mut rng).scale(5.0);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let xv = tape.constant(x);
        let y = norm.forward(&mut tape, &mut binding, &store, xv);
        for r in 0..8 {
            let row = &tape.value(y).data()[r * 16..(r + 1) * 16];
            let rms: f32 = (row.iter().map(|v| v * v).sum::<f32>() / 16.0).sqrt();
            assert!((rms - 1.0).abs() < 1e-3, "row {r} rms {rms}");
        }
    }

    #[test]
    fn scale_invariance() {
        // RMSNorm(c*x) == RMSNorm(x) for c > 0 (up to eps effects).
        let mut store = ParamStore::new();
        let norm = RmsNorm::new(&mut store, "n", 8);
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 8], &mut rng);
        let run = |input: Tensor, store: &ParamStore| {
            let mut tape = Tape::new();
            let mut binding = Binding::new(store);
            let xv = tape.constant(input);
            let y = norm.forward(&mut tape, &mut binding, store, xv);
            tape.value(y).clone()
        };
        let y1 = run(x.clone(), &store);
        let y2 = run(x.scale(10.0), &store);
        assert!(y1.max_abs_diff(&y2) < 1e-3);
    }
}
