//! Axial-frequency 2D rotary positional embeddings (§V-B, after Heo et al.).
//!
//! Queries and keys are rotated pairwise before the dot product. For 2D data
//! the pair slots of each head are split between the two axes: the first half
//! of the pairs rotate by angles proportional to the token's *row*, the second
//! half by its *column*. Because attention scores depend only on angle
//! *differences*, the rotation encodes relative 2D offsets — the property the
//! paper uses in place of SwinV2's relative positional biases.

use aeris_tensor::Tensor;

/// Precomputed cos/sin tables for every token of an `h × w` window.
#[derive(Clone, Debug)]
pub struct RopeTable {
    /// `[h*w, head_dim/2]` cosine of the rotation angle per token per pair.
    pub cos: Tensor,
    /// `[h*w, head_dim/2]` sine table.
    pub sin: Tensor,
    pub h: usize,
    pub w: usize,
    pub head_dim: usize,
}

impl RopeTable {
    /// Build the table for an `h × w` token grid with the given per-head
    /// feature dimension. `row0`/`col0` offset the coordinates (used to show
    /// translation invariance; windows may share one table built at 0,0).
    pub fn new(h: usize, w: usize, head_dim: usize, row0: usize, col0: usize) -> Self {
        assert_eq!(head_dim % 4, 0, "axial 2D RoPE needs head_dim divisible by 4");
        let pairs = head_dim / 2;
        let axis_pairs = pairs / 2; // pairs per spatial axis
        let base: f32 = 10_000.0;
        let s = h * w;
        let mut cos = Tensor::zeros(&[s, pairs]);
        let mut sin = Tensor::zeros(&[s, pairs]);
        for r in 0..h {
            for c in 0..w {
                let tok = r * w + c;
                for j in 0..axis_pairs {
                    let freq = base.powf(-(j as f32) / axis_pairs as f32);
                    // First half of pairs: row axis.
                    let a_row = (r + row0) as f32 * freq;
                    *cos.at_mut(&[tok, j]) = a_row.cos();
                    *sin.at_mut(&[tok, j]) = a_row.sin();
                    // Second half: column axis.
                    let a_col = (c + col0) as f32 * freq;
                    *cos.at_mut(&[tok, axis_pairs + j]) = a_col.cos();
                    *sin.at_mut(&[tok, axis_pairs + j]) = a_col.sin();
                }
            }
        }
        RopeTable { cos, sin, h, w, head_dim }
    }

    /// Number of tokens covered.
    pub fn seq_len(&self) -> usize {
        self.h * self.w
    }
}

/// Rotate a raw (non-tape) `[s, head_dim]` matrix by the table — used by
/// inference-only fast paths and tests.
pub fn apply_rope(x: &Tensor, table: &RopeTable) -> Tensor {
    let (s, d) = (x.shape()[0], x.shape()[1]);
    assert_eq!(s, table.seq_len());
    assert_eq!(d, table.head_dim);
    let mut out = Tensor::zeros(x.shape());
    for t in 0..s {
        let xr = x.row(t);
        let o = out.row_mut(t);
        for p in 0..d / 2 {
            let (c, si) = (table.cos.at(&[t, p]), table.sin.at(&[t, p]));
            o[2 * p] = xr[2 * p] * c - xr[2 * p + 1] * si;
            o[2 * p + 1] = xr[2 * p] * si + xr[2 * p + 1] * c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    #[test]
    fn table_shape() {
        let t = RopeTable::new(4, 5, 8, 0, 0);
        assert_eq!(t.cos.shape(), &[20, 4]);
        assert_eq!(t.sin.shape(), &[20, 4]);
        assert_eq!(t.seq_len(), 20);
    }

    #[test]
    fn origin_token_is_identity() {
        let t = RopeTable::new(3, 3, 8, 0, 0);
        for p in 0..4 {
            assert!((t.cos.at(&[0, p]) - 1.0).abs() < 1e-6);
            assert!(t.sin.at(&[0, p]).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let t = RopeTable::new(2, 4, 8, 0, 0);
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[8, 8], &mut rng);
        let y = apply_rope(&x, &t);
        for r in 0..8 {
            let nx: f32 = x.row(r).iter().map(|v| v * v).sum();
            let ny: f32 = y.row(r).iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-4);
        }
    }

    /// The defining relative property: <RoPE(q,pos_a), RoPE(k,pos_b)> depends
    /// only on pos_a - pos_b; shifting both positions by the same offset
    /// leaves attention scores unchanged.
    #[test]
    fn scores_are_translation_invariant() {
        let mut rng = Rng::seed_from(10);
        let q = Tensor::randn(&[6, 8], &mut rng);
        let k = Tensor::randn(&[6, 8], &mut rng);
        let t0 = RopeTable::new(2, 3, 8, 0, 0);
        let t1 = RopeTable::new(2, 3, 8, 7, 11);
        let score = |t: &RopeTable| {
            let qr = apply_rope(&q, t);
            let kr = apply_rope(&k, t);
            aeris_tensor::matmul_nt(&qr, &kr)
        };
        let s0 = score(&t0);
        let s1 = score(&t1);
        assert!(s0.max_abs_diff(&s1) < 1e-3, "diff {}", s0.max_abs_diff(&s1));
    }

    /// Distinct 2D offsets produce distinct phase patterns: a token one row
    /// away is encoded differently from a token one column away.
    #[test]
    fn axes_are_distinguished() {
        let t = RopeTable::new(2, 2, 8, 0, 0);
        // token (0,1) = index 1 (column shift), token (1,0) = index 2 (row shift)
        let col_shift: Vec<f32> = (0..4).map(|p| t.cos.at(&[1, p])).collect();
        let row_shift: Vec<f32> = (0..4).map(|p| t.cos.at(&[2, p])).collect();
        assert_ne!(col_shift, row_shift);
    }
}
