//! Fully connected layer.

use crate::params::{Binding, ParamId, ParamStore};
use aeris_autodiff::{Tape, Var};
use aeris_tensor::Rng;

/// `y = x W (+ b)` with `W: [in, out]`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Create with transformer init (normal std `1/sqrt(in)`), plus zero bias.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let std = 1.0 / (in_dim as f32).sqrt();
        let w = store.register_normal(format!("{name}.w"), &[in_dim, out_dim], std, rng);
        let b = Some(store.register_zeros(format!("{name}.b"), &[out_dim]));
        Linear { w, b, in_dim, out_dim }
    }

    /// Create without bias.
    pub fn new_no_bias(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let std = 1.0 / (in_dim as f32).sqrt();
        let w = store.register_normal(format!("{name}.w"), &[in_dim, out_dim], std, rng);
        Linear { w, b: None, in_dim, out_dim }
    }

    /// Create with zero-initialized weight and bias (the standard DiT trick
    /// for AdaLN modulation heads: start every block as identity).
    pub fn new_zeros(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = store.register_zeros(format!("{name}.w"), &[in_dim, out_dim]);
        let b = Some(store.register_zeros(format!("{name}.b"), &[out_dim]));
        Linear { w, b, in_dim, out_dim }
    }

    /// Forward on a tape: `x: [rows, in] → [rows, out]`.
    pub fn forward(&self, tape: &mut Tape, binding: &mut Binding, store: &ParamStore, x: Var) -> Var {
        assert_eq!(
            tape.value(x).shape()[1],
            self.in_dim,
            "Linear input dim mismatch"
        );
        let w = binding.var(tape, store, self.w);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = binding.var(tape, store, b);
                tape.add_rows(y, bv)
            }
            None => y,
        }
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.in_dim * self.out_dim + if self.b.is_some() { self.out_dim } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Tensor;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        assert_eq!(lin.num_params(), 15);
        // Force known values: W = 0, b = [1,2,3] => y = b broadcast.
        store.get_mut(lin.w).map_inplace(|_| 0.0);
        *store.get_mut(lin.b.unwrap()) = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::ones(&[2, 4]));
        let y = lin.forward(&mut tape, &mut binding, &store, x);
        assert_eq!(tape.value(y).shape(), &[2, 3]);
        assert_eq!(tape.value(y).row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gradient_flows_to_weight_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let x = tape.constant(Tensor::ones(&[4, 3]));
        let y = lin.forward(&mut tape, &mut binding, &store, x);
        let loss = tape.sum(y);
        let mut grads = tape.backward(loss);
        let g = binding.collect_grads(&mut grads);
        // dW = X^T dY = all-ones [3,2] * 4 rows
        let gw = g[lin.w.0].as_ref().unwrap();
        assert!(gw.data().iter().all(|&v| (v - 4.0).abs() < 1e-5));
        let gb = g[lin.b.unwrap().0].as_ref().unwrap();
        assert!(gb.data().iter().all(|&v| (v - 4.0).abs() < 1e-5));
    }

    #[test]
    fn zeros_init_is_identity_free() {
        let mut store = ParamStore::new();
        let lin = Linear::new_zeros(&mut store, "mod", 4, 8);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&store);
        let mut rng = Rng::seed_from(3);
        let x = tape.constant(Tensor::randn(&[2, 4], &mut rng));
        let y = lin.forward(&mut tape, &mut binding, &store, x);
        assert_eq!(tape.value(y).abs_max(), 0.0);
    }
}
