//! Baseline forecast systems for the AERIS evaluation (§VII-B).
//!
//! - [`simple`]: persistence and climatology (the WeatherBench floor),
//! - [`deterministic`]: a GraphCast-class deterministic model — the same
//!   Swin backbone trained with weighted MSE; exhibits the blurring and
//!   zero-spread ensembles that motivate diffusion,
//! - [`gencast`]: the GenCast analog — the same backbone under the EDM
//!   σ-space parameterization with a stochastic Heun sampler,
//! - [`numerical`]: the IFS ENS analog — the toy dynamical core integrated
//!   from perturbed initial conditions with per-member stochastic physics.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod deterministic;
pub mod gencast;
pub mod numerical;
pub mod simple;

pub use deterministic::DeterministicForecaster;
pub use gencast::GenCastAnalog;
pub use numerical::numerical_ensemble;
pub use simple::{climatology_forecast, persistence_forecast};
