//! Persistence and climatology baselines.

use aeris_earthsim::{render_climatology, Climate, VariableSet};
use aeris_tensor::Tensor;

/// Persistence: every lead time forecasts the initial state.
pub fn persistence_forecast(x0: &Tensor, steps: usize) -> Vec<Tensor> {
    (0..steps).map(|_| x0.clone()).collect()
}

/// Climatology: each lead forecasts the climatological state at its valid
/// time. `start_day` is the day-of-year of the initial condition and
/// `step_hours` the forecast cadence.
pub fn climatology_forecast(
    clim: &Climate,
    vars: &VariableSet,
    start_day: f64,
    step_hours: f64,
    steps: usize,
) -> Vec<Tensor> {
    (1..=steps)
        .map(|k| render_climatology(clim, vars, start_day + k as f64 * step_hours / 24.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_earthsim::Grid;
    use aeris_tensor::Rng;

    #[test]
    fn persistence_repeats_initial_state() {
        let mut rng = Rng::seed_from(1);
        let x0 = Tensor::randn(&[8, 3], &mut rng);
        let f = persistence_forecast(&x0, 4);
        assert_eq!(f.len(), 4);
        assert_eq!(f[3], x0);
    }

    #[test]
    fn climatology_moves_with_the_season() {
        let grid = Grid::new(16, 32);
        let clim = Climate::new(grid, 3);
        let vars = VariableSet::default_toy();
        let f = climatology_forecast(&clim, &vars, 0.0, 6.0, 2);
        assert_eq!(f.len(), 2);
        // 90 days later the climatology differs.
        let g = climatology_forecast(&clim, &vars, 90.0, 6.0, 1);
        assert!(f[0].max_abs_diff(&g[0]) > 0.1);
    }
}
