//! GenCast analog: the same backbone trained under the EDM σ-space
//! parameterization (Karras preconditioning, log-normal σ prior) and sampled
//! with the stochastic Heun solver — the diffusion recipe GenCast uses,
//! contrasted against AERIS's TrigFlow in the ablation benches.

use aeris_autodiff::Tape;
use aeris_core::{AerisModel, TrainSample};
use aeris_diffusion::{EdmConfig, EdmSampler};
use aeris_earthsim::NormStats;
use aeris_nn::{AdamW, AdamWConfig, Binding};
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;

/// EDM-parameterized diffusion forecaster on the AERIS backbone.
pub struct GenCastAnalog {
    pub model: AerisModel,
    pub stats: NormStats,
    /// Residual statistics (targets are residual-standardized).
    pub res_stats: NormStats,
    pub edm: EdmConfig,
    /// Sampler steps (GenCast uses ~20 solver steps).
    pub n_sample_steps: usize,
    /// Heun churn.
    pub churn: f32,
}

impl GenCastAnalog {
    /// Wrap a freshly initialized model.
    pub fn new(model: AerisModel, stats: NormStats, res_stats: NormStats) -> Self {
        GenCastAnalog {
            model,
            stats,
            res_stats,
            edm: EdmConfig::default(),
            n_sample_steps: 12,
            churn: 0.1,
        }
    }

    /// Map σ to the network's time input (EDM's `c_noise`).
    fn t_of_sigma(&self, sigma: f32) -> f32 {
        0.25 * sigma.ln()
    }

    /// The preconditioned denoiser `D(x_σ, σ)` (raw network in, x₀-estimate
    /// out), conditioned on the previous state and forcings.
    pub fn denoise(&self, x_sigma: &Tensor, prev_std: &Tensor, forcings: &Tensor, sigma: f32) -> Tensor {
        let (c_skip, c_out, c_in, _) = self.edm.precond(sigma);
        let scaled = x_sigma.scale(c_in);
        let f = self.model.velocity(&scaled, prev_std, forcings, self.t_of_sigma(sigma));
        x_sigma.scale(c_skip).add(&f.scale(c_out))
    }

    /// One EDM training step over a batch; returns the mean weighted loss.
    pub fn train_step(
        &mut self,
        opt: &mut AdamW,
        batch: &[&TrainSample],
        weights: &Tensor,
        lr: f32,
        rng: &mut Rng,
    ) -> f64 {
        let mut acc: Vec<Option<Tensor>> = vec![None; self.model.store.len()];
        let mut total = 0.0f64;
        for s in batch {
            let sigma = self.edm.sample_sigma(rng);
            let z = Tensor::randn(s.residual.shape(), rng);
            let x_sigma = self.edm.add_noise(&s.residual, &z, sigma);
            let (c_skip, c_out, c_in, _) = self.edm.precond(sigma);
            // Train F to hit (x0 − c_skip·x_σ)/c_out with weight λ(σ)·c_out².
            let target = s.residual.zip_map(&x_sigma, |x0, xs| (x0 - c_skip * xs) / c_out);
            let lw = self.edm.loss_weight(sigma) * c_out * c_out;
            let w = weights.scale(lw);
            let input = self.model.assemble_input(&x_sigma.scale(c_in), &s.x_prev, &s.forcings);
            let mut tape = Tape::new();
            let mut binding = Binding::new(&self.model.store);
            let iv = tape.constant(input);
            let out = self.model.forward(&mut tape, &mut binding, iv, self.t_of_sigma(sigma));
            let loss = tape.weighted_mse(out, &target, &w);
            total += tape.value(loss).data()[0] as f64;
            let mut grads = tape.backward(loss);
            for (slot, g) in acc.iter_mut().zip(binding.collect_grads(&mut grads)) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
        }
        let inv = 1.0 / batch.len() as f32;
        for g in acc.iter_mut().flatten() {
            g.scale_inplace(inv);
        }
        opt.step(&mut self.model.store, &acc, lr);
        total / batch.len() as f64
    }

    /// Train for shuffled epochs.
    pub fn fit(
        &mut self,
        samples: &[TrainSample],
        weights: &Tensor,
        batch: usize,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Vec<f64> {
        let mut opt = AdamW::new(&self.model.store, AdamWConfig::default());
        let mut rng = Rng::seed_from(seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::new();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch.max(1)) {
                let b: Vec<&TrainSample> = chunk.iter().map(|&i| &samples[i]).collect();
                losses.push(self.train_step(&mut opt, &b, weights, lr, &mut rng));
            }
        }
        losses
    }

    /// One stochastic forecast step (sample a residual with the Heun EDM
    /// sampler, add to the state).
    pub fn forecast_step(&self, x_prev: &Tensor, forcings: &Tensor, rng: &mut Rng) -> Tensor {
        let prev_std = self.stats.standardize(x_prev);
        let shape = prev_std.shape().to_vec();
        let sampler = EdmSampler::new(self.edm, self.n_sample_steps, self.churn);
        let mut denoise =
            |x: &Tensor, sigma: f32| self.denoise(x, &prev_std, forcings, sigma);
        let residual_std = sampler.sample(&shape, &mut denoise, rng);
        let mut next = x_prev.clone();
        for r in 0..shape[0] {
            let row = next.row_mut(r);
            for j in 0..shape[1] {
                row[j] += residual_std.at(&[r, j]) * self.res_stats.std[j] + self.res_stats.mean[j];
            }
        }
        next
    }

    /// Autoregressive rollout.
    pub fn rollout(
        &self,
        x0: &Tensor,
        forcings: &dyn Fn(usize) -> Tensor,
        steps: usize,
        rng: &mut Rng,
    ) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut x = x0.clone();
        for k in 0..steps {
            x = self.forecast_step(&x, &forcings(k), rng);
            states.push(x.clone());
        }
        states
    }

    /// Ensemble of rollouts (rayon-parallel over members).
    pub fn ensemble(
        &self,
        x0: &Tensor,
        forcings: &(dyn Fn(usize) -> Tensor + Sync),
        steps: usize,
        n_members: usize,
        base_seed: u64,
    ) -> Vec<Vec<Tensor>> {
        (0..n_members)
            .into_par_iter()
            .map(|m| {
                let mut rng = Rng::seed_from(base_seed).stream(m as u64 + 1);
                self.rollout(x0, &forcings, steps, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::AerisConfig;
    use aeris_diffusion::loss_weights;
    use aeris_earthsim::Grid;

    fn setup() -> (GenCastAnalog, Vec<TrainSample>, Tensor) {
        let cfg = AerisConfig::test_tiny();
        let grid = Grid::new(cfg.grid_h, cfg.grid_w);
        let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
        let mut rng = Rng::seed_from(4);
        let samples: Vec<TrainSample> = (0..6)
            .map(|_| TrainSample {
                x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
                residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.4),
                forcings: Tensor::zeros(&[cfg.tokens(), 3]),
            })
            .collect();
        let stats = NormStats { mean: vec![0.0; cfg.channels], std: vec![1.0; cfg.channels] };
        (GenCastAnalog::new(AerisModel::new(cfg), stats.clone(), stats), samples, weights)
    }

    /// Per-step training losses are noisy under the random σ prior, so
    /// learning is verified on a fixed validation configuration (fixed σ, z)
    /// before vs after training.
    #[test]
    fn edm_training_reduces_loss() {
        let (mut g, samples, weights) = setup();
        let eval = |g: &GenCastAnalog| {
            let sigma = 0.5f32;
            let mut rng = Rng::seed_from(1234);
            let mut total = 0.0f64;
            for s in &samples {
                let z = Tensor::randn(s.residual.shape(), &mut rng);
                let x_sigma = g.edm.add_noise(&s.residual, &z, sigma);
                let prev = g.stats.standardize(&s.x_prev);
                let d = g.denoise(&x_sigma, &prev, &s.forcings, sigma);
                let diff = d.sub(&s.residual);
                total += diff.dot(&diff) / diff.len() as f64;
            }
            total / samples.len() as f64
        };
        let before = eval(&g);
        let losses = g.fit(&samples, &weights, 2, 6, 3e-3, 2);
        assert!(losses.iter().all(|l| l.is_finite()));
        let after = eval(&g);
        assert!(after < before * 0.97, "no learning: {before:.4} -> {after:.4}");
    }

    #[test]
    fn denoiser_limits_match_preconditioning() {
        let (g, samples, _) = setup();
        let prev = g.stats.standardize(&samples[0].x_prev);
        let forc = &samples[0].forcings;
        let x = samples[0].residual.clone();
        // σ → 0: D(x) → x (c_skip→1, c_out→0).
        let d = g.denoise(&x, &prev, forc, 1e-4);
        assert!(d.max_abs_diff(&x) < 1e-3);
    }

    #[test]
    fn ensemble_members_differ() {
        let (g, samples, _) = setup();
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let ens = g.ensemble(&samples[0].x_prev, &forc, 1, 2, 31);
        assert!(ens[0][0].max_abs_diff(&ens[1][0]) > 1e-6);
    }
}
