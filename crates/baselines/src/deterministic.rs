//! GraphCast-class deterministic baseline: the identical Swin backbone
//! trained to regress the (standardized) residual with the physically
//! weighted MSE. Section IV-A of the paper: such models deliver competitive
//! medium-range skill but blur at long leads and have no ensemble spread.

use aeris_autodiff::Tape;
use aeris_core::{AerisModel, TrainSample};
use aeris_earthsim::NormStats;
use aeris_nn::{AdamW, AdamWConfig, Binding};
use aeris_tensor::{Rng, Tensor};

/// A deterministic residual-regression forecaster on the AERIS backbone.
/// The diffusion-conditioning slot (`x_t`) is fed zeros at `t = 0`.
pub struct DeterministicForecaster {
    pub model: AerisModel,
    pub stats: NormStats,
    /// Residual statistics (prediction targets are residual-standardized).
    pub res_stats: NormStats,
}

impl DeterministicForecaster {
    /// Wrap a freshly initialized model.
    pub fn new(model: AerisModel, stats: NormStats, res_stats: NormStats) -> Self {
        DeterministicForecaster { model, stats, res_stats }
    }

    /// One training step over a batch: weighted MSE on the standardized
    /// residual. Returns the mean loss.
    pub fn train_step(
        &mut self,
        opt: &mut AdamW,
        batch: &[&TrainSample],
        weights: &Tensor,
        lr: f32,
    ) -> f64 {
        let mut acc: Vec<Option<Tensor>> = vec![None; self.model.store.len()];
        let mut total = 0.0f64;
        let zeros = Tensor::zeros(&[self.model.cfg.tokens(), self.model.cfg.channels]);
        for s in batch {
            let input = self.model.assemble_input(&zeros, &s.x_prev, &s.forcings);
            let mut tape = Tape::new();
            let mut binding = Binding::new(&self.model.store);
            let iv = tape.constant(input);
            let out = self.model.forward(&mut tape, &mut binding, iv, 0.0);
            let loss = tape.weighted_mse(out, &s.residual, weights);
            total += tape.value(loss).data()[0] as f64;
            let mut grads = tape.backward(loss);
            for (slot, g) in acc.iter_mut().zip(binding.collect_grads(&mut grads)) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
        }
        let inv = 1.0 / batch.len() as f32;
        for g in acc.iter_mut().flatten() {
            g.scale_inplace(inv);
        }
        opt.step(&mut self.model.store, &acc, lr);
        total / batch.len() as f64
    }

    /// Train for `epochs` shuffled passes.
    pub fn fit(
        &mut self,
        samples: &[TrainSample],
        weights: &Tensor,
        batch: usize,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Vec<f64> {
        let mut opt = AdamW::new(&self.model.store, AdamWConfig::default());
        let mut rng = Rng::seed_from(seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::new();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch.max(1)) {
                let b: Vec<&TrainSample> = chunk.iter().map(|&i| &samples[i]).collect();
                losses.push(self.train_step(&mut opt, &b, weights, lr));
            }
        }
        losses
    }

    /// One deterministic forecast step in physical units.
    pub fn forecast_step(&self, x_prev: &Tensor, forcings: &Tensor) -> Tensor {
        let prev_std = self.stats.standardize(x_prev);
        let zeros = Tensor::zeros(prev_std.shape());
        let pred = self.model.velocity(&zeros, &prev_std, forcings, 0.0);
        let mut next = x_prev.clone();
        for r in 0..pred.shape()[0] {
            let row = next.row_mut(r);
            for j in 0..pred.shape()[1] {
                row[j] += pred.at(&[r, j]) * self.res_stats.std[j] + self.res_stats.mean[j];
            }
        }
        next
    }

    /// Deterministic autoregressive rollout.
    pub fn rollout(&self, x0: &Tensor, forcings: &dyn Fn(usize) -> Tensor, steps: usize) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut x = x0.clone();
        for k in 0..steps {
            x = self.forecast_step(&x, &forcings(k));
            states.push(x.clone());
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::AerisConfig;
    use aeris_diffusion::loss_weights;
    use aeris_earthsim::Grid;

    fn setup() -> (DeterministicForecaster, Vec<TrainSample>, Tensor) {
        let cfg = AerisConfig::test_tiny();
        let grid = Grid::new(cfg.grid_h, cfg.grid_w);
        let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
        let mut rng = Rng::seed_from(3);
        let samples: Vec<TrainSample> = (0..6)
            .map(|_| {
                let x_prev = Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng);
                // Learnable rule: residual = 0.5 * prev (plus noise).
                let residual = x_prev.scale(0.5);
                TrainSample { x_prev, residual, forcings: Tensor::zeros(&[cfg.tokens(), 3]) }
            })
            .collect();
        let stats = NormStats { mean: vec![0.0; cfg.channels], std: vec![1.0; cfg.channels] };
        (
            DeterministicForecaster::new(AerisModel::new(cfg), stats.clone(), stats),
            samples,
            weights,
        )
    }

    #[test]
    fn training_reduces_loss() {
        let (mut f, samples, weights) = setup();
        let losses = f.fit(&samples, &weights, 2, 6, 3e-3, 1);
        let head = losses[0];
        let tail = *losses.last().unwrap();
        assert!(tail < head * 0.8, "no learning: {head:.4} -> {tail:.4}");
    }

    #[test]
    fn rollout_is_deterministic_with_zero_spread() {
        let (f, samples, _) = setup();
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let a = f.rollout(&samples[0].x_prev, &forc, 3);
        let b = f.rollout(&samples[0].x_prev, &forc, 3);
        assert_eq!(a[2], b[2], "deterministic model must have zero ensemble spread");
    }
}
