//! The IFS ENS analog: a perfect-model numerical ensemble.
//!
//! In a synthetic-truth world, "the operational numerical ensemble" is the
//! generating dynamical core itself, integrated from perturbed initial
//! conditions with per-member stochastic physics (the toy equivalent of the
//! IFS's singular-vector ICs + SPPT). This is a *strong* baseline: the model
//! is perfect by construction, and only initial-condition and stochastic
//! uncertainty limit its skill.

use aeris_earthsim::{ToyAtmosphere, VariableSet};
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;

/// Run an `n_members` numerical ensemble from the given simulator state for
/// `steps` outputs. Member `m` perturbs the initial condition with amplitude
/// `pert_amp` and reseeds its stochastic forcing from `base_seed ⊕ m`.
/// Returns `[member][step]` rendered states.
pub fn numerical_ensemble(
    init: &ToyAtmosphere,
    vars: &VariableSet,
    steps: usize,
    n_members: usize,
    pert_amp: f32,
    base_seed: u64,
) -> Vec<Vec<Tensor>> {
    (0..n_members)
        .into_par_iter()
        .map(|m| {
            let mut sim = init.clone();
            let mut rng = Rng::seed_from(base_seed).stream(m as u64 + 1);
            sim.perturb(pert_amp, &mut rng);
            sim.reseed_stochastic(base_seed ^ (m as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let mut out = Vec::with_capacity(steps);
            for _ in 0..steps {
                sim.step();
                out.push(sim.render(vars));
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_earthsim::ToyParams;

    #[test]
    fn ensemble_shapes_and_spread() {
        let params = ToyParams { nlat: 16, nlon: 32, seed: 5, ..Default::default() };
        let mut sim = ToyAtmosphere::new(params);
        sim.spinup(20);
        let vars = VariableSet::default_toy();
        let ens = numerical_ensemble(&sim, &vars, 3, 4, 1.0, 99);
        assert_eq!(ens.len(), 4);
        assert_eq!(ens[0].len(), 3);
        // Members diverge.
        assert!(ens[0][2].max_abs_diff(&ens[1][2]) > 1e-4);
        // Deterministic reproduction.
        let ens2 = numerical_ensemble(&sim, &vars, 3, 4, 1.0, 99);
        assert_eq!(ens[3][2], ens2[3][2]);
    }

    #[test]
    fn unperturbed_member_tracks_truth_initially() {
        // With tiny perturbations the ensemble mean at step 1 stays close to
        // the unperturbed trajectory (perfect-model property).
        let params = ToyParams { nlat: 16, nlon: 32, seed: 6, ..Default::default() };
        let mut sim = ToyAtmosphere::new(params);
        sim.spinup(20);
        let vars = VariableSet::default_toy();
        let mut truth = sim.clone();
        truth.step();
        let truth_state = truth.render(&vars);
        let ens = numerical_ensemble(&sim, &vars, 1, 6, 0.05, 42);
        // Mean over members.
        let mut mean = Tensor::zeros(truth_state.shape());
        for m in &ens {
            mean.add_assign(&m[0]);
        }
        mean.scale_inplace(1.0 / ens.len() as f32);
        let t2m = vars.index_of("t2m").unwrap();
        let mut err = 0.0f64;
        for t in 0..truth_state.shape()[0] {
            let d = (mean.at(&[t, t2m]) - truth_state.at(&[t, t2m])) as f64;
            err += d * d;
        }
        let rmse = (err / truth_state.shape()[0] as f64).sqrt();
        assert!(rmse < 1.0, "1-step ensemble-mean T2m error {rmse}");
    }
}
