//! Tape-based reverse-mode automatic differentiation over `aeris-tensor`.
//!
//! Each training rank (and each pipeline microbatch) builds its own [`Tape`];
//! tapes are cheap, single-threaded, and dropped after the backward pass, which
//! mirrors how activation memory behaves in the real system (and makes the
//! SWiPe activation-memory accounting in `aeris-swipe` meaningful).
//!
//! The op vocabulary is exactly what a pixel-level Swin diffusion transformer
//! needs: matmul (plus the `A·Bᵀ` variant used for attention scores), row-wise
//! softmax / RMSNorm, SiLU, elementwise arithmetic, column/row split-concat
//! (heads, SwiGLU), row gathers (window partition / shift / rolls), RoPE
//! rotations, and row-broadcast affine modulation (AdaLN).
//!
//! Every op's backward is verified against central finite differences in the
//! `grad` test module and property tests.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

mod attention;
mod tape;

pub use attention::WindowAttnPlan;
pub use tape::{Grads, Tape, Var};

use aeris_tensor::Tensor;

/// Central finite-difference gradient of a scalar-valued function of one
/// tensor, used to verify analytic gradients in tests.
pub fn numeric_grad(f: &mut dyn FnMut(&Tensor) -> f64, x: &Tensor, eps: f32) -> Tensor {
    let mut g = Tensor::zeros(x.shape());
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = x.data()[i];
        xp.data_mut()[i] = orig + eps;
        let fp = f(&xp);
        xp.data_mut()[i] = orig - eps;
        let fm = f(&xp);
        xp.data_mut()[i] = orig;
        g.data_mut()[i] = ((fp - fm) / (2.0 * eps as f64)) as f32;
    }
    g
}

/// Assert an analytic gradient matches the finite-difference one within a
/// combined relative/absolute tolerance. Panics with the worst offender.
pub fn assert_grad_close(analytic: &Tensor, numeric: &Tensor, tol: f32) {
    assert_eq!(analytic.shape(), numeric.shape());
    let mut worst = 0.0f32;
    let mut worst_i = 0;
    for i in 0..analytic.len() {
        let (a, n) = (analytic.data()[i], numeric.data()[i]);
        let err = (a - n).abs() / (1.0f32).max(a.abs()).max(n.abs());
        if err > worst {
            worst = err;
            worst_i = i;
        }
    }
    assert!(
        worst <= tol,
        "gradient mismatch at flat index {worst_i}: analytic={} numeric={} (rel err {worst})",
        analytic.data()[worst_i],
        numeric.data()[worst_i]
    );
}
