//! Fused windowed multi-head attention as a single tape op.
//!
//! The unfused Swin block builds ~10 tape nodes *per window* (row gather,
//! per-head column slices, RoPE, scores, softmax, weighted sum, concats), so
//! the tape grows as O(windows · heads) per block and every node's backward
//! allocates intermediate tensors. [`Tape::window_attention`] replaces that
//! chain with **one** node: three projection GEMMs, a window-parallel
//! attention kernel with per-worker scratch reused across windows, the output
//! GEMM, and an analytic backward.
//!
//! # Determinism
//!
//! The window loops (forward and backward) write only the disjoint rows of
//! their own window — the rayon shim hands each closure a disjoint chunk — and
//! every cross-window reduction (`dWq = Xᵀ dQ`, …) is a plain GEMM with a
//! fixed per-element accumulation order. No partial sums depend on the worker
//! count, so losses and gradients are bitwise identical at any thread count.
//!
//! # Backward derivation
//!
//! Per window and head, with `Q̃ = R(Q)`, `K̃ = R(K)` (RoPE rotation `R`),
//! `S = Q̃K̃ᵀ·s`, `P = softmax(S)`, `O = PV`:
//!
//! - `dV = Pᵀ dO`
//! - `dP = dO Vᵀ`, and through softmax `dS_ij = P_ij (dP_ij − Σ_j P_ij dP_ij)`
//! - `dQ̃ = s·dS K̃`, `dK̃ = s·dSᵀ Q̃`, un-rotated with `R⁻¹ = R(−θ)`
//!
//! followed by the shared projection gradients `dX = Σ dZ Wᵀ`, `dW = Xᵀ dZ`.

use crate::tape::{Tape, Var};
use aeris_tensor::{matmul, matmul_nt, matmul_tn, Tensor};
use rayon::prelude::*;

/// Static geometry of a fused windowed-attention call: how the token matrix
/// splits into windows, the head layout, and the (shared) RoPE tables.
#[derive(Clone, Debug)]
pub struct WindowAttnPlan {
    pub n_windows: usize,
    pub window_len: usize,
    pub n_heads: usize,
    pub head_dim: usize,
    /// `[window_len, head_dim/2]` cosine table, shared by all windows & heads.
    pub cos: Tensor,
    /// `[window_len, head_dim/2]` sine table.
    pub sin: Tensor,
}

impl WindowAttnPlan {
    /// Build a plan; validates the table shapes against the geometry.
    pub fn new(
        n_windows: usize,
        window_len: usize,
        n_heads: usize,
        head_dim: usize,
        cos: Tensor,
        sin: Tensor,
    ) -> Self {
        assert_eq!(head_dim % 2, 0, "RoPE needs an even head_dim");
        assert_eq!(cos.shape(), &[window_len, head_dim / 2]);
        assert_eq!(sin.shape(), &[window_len, head_dim / 2]);
        WindowAttnPlan { n_windows, window_len, n_heads, head_dim, cos, sin }
    }

    /// Total token count covered (`n_windows · window_len`).
    pub fn tokens(&self) -> usize {
        self.n_windows * self.window_len
    }

    /// Model dimension (`n_heads · head_dim`).
    pub fn dim(&self) -> usize {
        self.n_heads * self.head_dim
    }
}

/// Per-worker scratch, allocated once per thread and reused for every window
/// that thread processes (`for_each_init`).
struct Scratch {
    /// Rotated queries for the current window, `[window_len, dim]` row-major.
    qr: Vec<f32>,
    /// Rotated keys, same layout.
    kr: Vec<f32>,
    /// Gradient w.r.t. rotated keys (backward only).
    dkr: Vec<f32>,
    /// One row of attention scores / probabilities, `[window_len]`.
    prow: Vec<f32>,
    /// Gradient of one probability row (backward only).
    dprow: Vec<f32>,
    /// One head-sized temporary, `[head_dim]`.
    hrow: Vec<f32>,
}

impl Scratch {
    fn new(plan: &WindowAttnPlan) -> Self {
        let wd = plan.window_len * plan.dim();
        Scratch {
            qr: vec![0.0; wd],
            kr: vec![0.0; wd],
            dkr: vec![0.0; wd],
            prow: vec![0.0; plan.window_len],
            dprow: vec![0.0; plan.window_len],
            hrow: vec![0.0; plan.head_dim],
        }
    }
}

/// Rotate every head segment of one token row by the table row `(cos, sin)`.
fn rope_row(src: &[f32], dst: &mut [f32], cos: &[f32], sin: &[f32], n_heads: usize, head_dim: usize) {
    for h in 0..n_heads {
        let base = h * head_dim;
        for (p, (&c, &s)) in cos.iter().zip(sin).enumerate() {
            let (x0, x1) = (src[base + 2 * p], src[base + 2 * p + 1]);
            dst[base + 2 * p] = x0 * c - x1 * s;
            dst[base + 2 * p + 1] = x0 * s + x1 * c;
        }
    }
}

/// Inverse rotation (by `−θ`): transforms gradients in rotated space back.
fn rope_row_inv(src: &[f32], dst: &mut [f32], cos: &[f32], sin: &[f32], n_heads: usize, head_dim: usize) {
    for h in 0..n_heads {
        let base = h * head_dim;
        for (p, (&c, &s)) in cos.iter().zip(sin).enumerate() {
            let (g0, g1) = (src[base + 2 * p], src[base + 2 * p + 1]);
            dst[base + 2 * p] = g0 * c + g1 * s;
            dst[base + 2 * p + 1] = -g0 * s + g1 * c;
        }
    }
}

/// Recompute the softmax probability row for query `i`, head `base..`, of the
/// current window into `prow`. Matches the unfused op *structure* (full dot
/// product, then ×scale; max / exp / ×(1/z) softmax) with a fixed k-ascending
/// accumulation order, so the row is bitwise identical between the forward
/// and backward recompute at any thread count. The unfused tape path now runs
/// through the packed SIMD GEMM (FMA contraction on AVX2 hosts) and a
/// lane-split softmax sum, so fused-vs-unfused agreement is within FMA /
/// lane-order rounding (≤ 1e-5 under test), not bitwise.
#[allow(clippy::too_many_arguments)]
fn prob_row(
    qr: &[f32],
    kr: &[f32],
    prow: &mut [f32],
    i: usize,
    base: usize,
    dim: usize,
    head_dim: usize,
    scale: f32,
) {
    let q_i = &qr[i * dim + base..i * dim + base + head_dim];
    for (j, p) in prow.iter_mut().enumerate() {
        let k_j = &kr[j * dim + base..j * dim + base + head_dim];
        let mut acc = 0.0f32;
        for (&qc, &kc) in q_i.iter().zip(k_j) {
            acc += qc * kc;
        }
        *p = acc * scale;
    }
    let m = prow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for p in prow.iter_mut() {
        let e = (*p - m).exp();
        *p = e;
        z += e;
    }
    let inv = 1.0 / z;
    for p in prow.iter_mut() {
        *p *= inv;
    }
}

/// Forward: `Y = attn(X) Wo`. Returns `(y, q, k, v, o)` with the projections
/// and the pre-output-projection context `O` saved for the backward pass.
fn forward(
    x: &Tensor,
    wq: &Tensor,
    wk: &Tensor,
    wv: &Tensor,
    wo: &Tensor,
    plan: &WindowAttnPlan,
) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
    let (tokens, dim) = (plan.tokens(), plan.dim());
    assert_eq!(x.shape(), &[tokens, dim], "window_attention input shape");
    for w in [wq, wk, wv, wo] {
        assert_eq!(w.shape(), &[dim, dim], "window_attention weight shape");
    }
    let (wlen, n_heads, head_dim) = (plan.window_len, plan.n_heads, plan.head_dim);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let pairs = head_dim / 2;

    let q = matmul(x, wq);
    let k = matmul(x, wk);
    let v = matmul(x, wv);

    let mut o = Tensor::zeros(&[tokens, dim]);
    let (q_data, k_data, v_data) = (q.data(), k.data(), v.data());
    let (cos, sin) = (plan.cos.data(), plan.sin.data());
    o.data_mut().par_chunks_mut(wlen * dim).enumerate().for_each_init(
        || Scratch::new(plan),
        |scr, (w, o_win)| {
            let r0 = w * wlen;
            for i in 0..wlen {
                let (cr, sr) = (&cos[i * pairs..(i + 1) * pairs], &sin[i * pairs..(i + 1) * pairs]);
                let row = (r0 + i) * dim;
                rope_row(&q_data[row..row + dim], &mut scr.qr[i * dim..(i + 1) * dim], cr, sr, n_heads, head_dim);
                rope_row(&k_data[row..row + dim], &mut scr.kr[i * dim..(i + 1) * dim], cr, sr, n_heads, head_dim);
            }
            for h in 0..n_heads {
                let base = h * head_dim;
                for i in 0..wlen {
                    prob_row(&scr.qr, &scr.kr, &mut scr.prow, i, base, dim, head_dim, scale);
                    let out = &mut o_win[i * dim + base..i * dim + base + head_dim];
                    // No zero-skip on pw: skipping `0 · v` would suppress
                    // NaN/Inf propagation from V and put a data-dependent
                    // branch in the hot loop.
                    for (j, &pw) in scr.prow.iter().enumerate() {
                        let v_j = &v_data[(r0 + j) * dim + base..(r0 + j) * dim + base + head_dim];
                        for (oc, &vc) in out.iter_mut().zip(v_j) {
                            *oc += pw * vc;
                        }
                    }
                }
            }
        },
    );

    let y = matmul(&o, wo);
    (y, q, k, v, o)
}

/// Analytic backward. Window-parallel like the forward; each window writes
/// only its own rows of the combined `[tokens, 3·dim]` gradient buffer
/// (`dQ | dK | dV` side by side), and all cross-window reductions happen in
/// the final deterministic GEMMs.
#[allow(clippy::too_many_arguments)]
fn backward(
    dy: &Tensor,
    x: &Tensor,
    wq: &Tensor,
    wk: &Tensor,
    wv: &Tensor,
    wo: &Tensor,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    o: &Tensor,
    plan: &WindowAttnPlan,
) -> Vec<Tensor> {
    let (tokens, dim) = (plan.tokens(), plan.dim());
    let (wlen, n_heads, head_dim) = (plan.window_len, plan.n_heads, plan.head_dim);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let pairs = head_dim / 2;

    let dwo = matmul_tn(o, dy);
    let d_o = matmul_nt(dy, wo);

    let mut dqkv = Tensor::zeros(&[tokens, 3 * dim]);
    let (q_data, k_data, v_data) = (q.data(), k.data(), v.data());
    let do_data = d_o.data();
    let (cos, sin) = (plan.cos.data(), plan.sin.data());
    dqkv.data_mut().par_chunks_mut(wlen * 3 * dim).enumerate().for_each_init(
        || Scratch::new(plan),
        |scr, (w, dwin)| {
            let r0 = w * wlen;
            for i in 0..wlen {
                let (cr, sr) = (&cos[i * pairs..(i + 1) * pairs], &sin[i * pairs..(i + 1) * pairs]);
                let row = (r0 + i) * dim;
                rope_row(&q_data[row..row + dim], &mut scr.qr[i * dim..(i + 1) * dim], cr, sr, n_heads, head_dim);
                rope_row(&k_data[row..row + dim], &mut scr.kr[i * dim..(i + 1) * dim], cr, sr, n_heads, head_dim);
            }
            scr.dkr.fill(0.0);
            for h in 0..n_heads {
                let base = h * head_dim;
                for i in 0..wlen {
                    prob_row(&scr.qr, &scr.kr, &mut scr.prow, i, base, dim, head_dim, scale);
                    let do_i = &do_data[(r0 + i) * dim + base..(r0 + i) * dim + base + head_dim];
                    // dP_ij = <dO_i, V_j>, then softmax backward to dS (reusing
                    // the dprow buffer) with the ×scale of the score op folded in.
                    for (j, dp) in scr.dprow.iter_mut().enumerate() {
                        let v_j = &v_data[(r0 + j) * dim + base..(r0 + j) * dim + base + head_dim];
                        let mut acc = 0.0f32;
                        for (&gc, &vc) in do_i.iter().zip(v_j) {
                            acc += gc * vc;
                        }
                        *dp = acc;
                    }
                    let dot: f32 = scr.prow.iter().zip(&scr.dprow).map(|(&p, &g)| p * g).sum();
                    for (ds, &p) in scr.dprow.iter_mut().zip(&scr.prow) {
                        *ds = p * (*ds - dot) * scale;
                    }
                    // dQ̃_i = Σ_j dS_ij K̃_j ; dK̃_j += dS_ij Q̃_i ; dV_j += P_ij dO_i.
                    scr.hrow.fill(0.0);
                    let q_i = scr.qr[i * dim + base..i * dim + base + head_dim].to_vec();
                    for (j, (&ds, &pw)) in scr.dprow.iter().zip(&scr.prow).enumerate() {
                        let k_j = &scr.kr[j * dim + base..j * dim + base + head_dim];
                        for (hc, &kc) in scr.hrow.iter_mut().zip(k_j) {
                            *hc += ds * kc;
                        }
                        let dk_j = &mut scr.dkr[j * dim + base..j * dim + base + head_dim];
                        for (dc, &qc) in dk_j.iter_mut().zip(&q_i) {
                            *dc += ds * qc;
                        }
                        let dv_j = &mut dwin[j * 3 * dim + 2 * dim + base..j * 3 * dim + 2 * dim + base + head_dim];
                        for (dc, &gc) in dv_j.iter_mut().zip(do_i) {
                            *dc += pw * gc;
                        }
                    }
                    // Un-rotate dQ̃_i into the dQ section of the window buffer.
                    let (cr, sr) = (&cos[i * pairs..(i + 1) * pairs], &sin[i * pairs..(i + 1) * pairs]);
                    let dq_i = &mut dwin[i * 3 * dim + base..i * 3 * dim + base + head_dim];
                    for (p, (&c, &s)) in cr.iter().zip(sr).enumerate() {
                        let (g0, g1) = (scr.hrow[2 * p], scr.hrow[2 * p + 1]);
                        dq_i[2 * p] = g0 * c + g1 * s;
                        dq_i[2 * p + 1] = -g0 * s + g1 * c;
                    }
                }
            }
            // Un-rotate the accumulated dK̃ rows into the dK section.
            for j in 0..wlen {
                let (cr, sr) = (&cos[j * pairs..(j + 1) * pairs], &sin[j * pairs..(j + 1) * pairs]);
                rope_row_inv(
                    &scr.dkr[j * dim..(j + 1) * dim],
                    &mut dwin[j * 3 * dim + dim..j * 3 * dim + 2 * dim],
                    cr,
                    sr,
                    n_heads,
                    head_dim,
                );
            }
        },
    );

    let dq = dqkv.slice_cols(0, dim);
    let dk = dqkv.slice_cols(dim, 2 * dim);
    let dv = dqkv.slice_cols(2 * dim, 3 * dim);
    let mut dx = matmul_nt(&dq, wq);
    dx.add_assign(&matmul_nt(&dk, wk));
    dx.add_assign(&matmul_nt(&dv, wv));
    let dwq = matmul_tn(x, &dq);
    let dwk = matmul_tn(x, &dk);
    let dwv = matmul_tn(x, &dv);
    vec![dx, dwq, dwk, dwv, dwo]
}

impl Tape {
    /// Fused windowed multi-head attention with RoPE:
    /// `Y = concat_w softmax(R(X_w Wq) R(X_w Wk)ᵀ / √d) (X_w Wv) · Wo`
    /// over all windows of `x: [tokens, dim]`, as **one** tape node.
    ///
    /// `x` is the window-partitioned token matrix (window-major rows, as
    /// produced by the Swin partition permutation); `wq`/`wk`/`wv`/`wo` are
    /// the `[dim, dim]` projection weights. Matches the unfused per-window op
    /// chain exactly in both value and gradients.
    pub fn window_attention(
        &mut self,
        x: Var,
        wq: Var,
        wk: Var,
        wv: Var,
        wo: Var,
        plan: &WindowAttnPlan,
    ) -> Var {
        let (y, q, k, v, o) = forward(
            self.value(x),
            self.value(wq),
            self.value(wk),
            self.value(wv),
            self.value(wo),
            plan,
        );
        let plan = plan.clone();
        let (px, pwq, pwk, pwv, pwo) = (x.0, wq.0, wk.0, wv.0, wo.0);
        self.push(
            y,
            vec![px, pwq, pwk, pwv, pwo],
            Some(Box::new(move |d, nodes| {
                backward(
                    &d,
                    nodes[px].value(),
                    nodes[pwq].value(),
                    nodes[pwk].value(),
                    nodes[pwv].value(),
                    nodes[pwo].value(),
                    &q,
                    &k,
                    &v,
                    &o,
                    &plan,
                )
            })),
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_grad_close, numeric_grad};
    use aeris_tensor::Rng;

    fn test_plan(n_windows: usize, wlen: usize, n_heads: usize, head_dim: usize) -> WindowAttnPlan {
        let pairs = head_dim / 2;
        let angles: Vec<f32> = (0..wlen * pairs).map(|i| 0.37 * i as f32).collect();
        let cos = Tensor::from_vec(&[wlen, pairs], angles.iter().map(|a| a.cos()).collect());
        let sin = Tensor::from_vec(&[wlen, pairs], angles.iter().map(|a| a.sin()).collect());
        WindowAttnPlan::new(n_windows, wlen, n_heads, head_dim, cos, sin)
    }

    fn random_weights(dim: usize, rng: &mut Rng) -> [Tensor; 4] {
        std::array::from_fn(|_| Tensor::randn(&[dim, dim], rng).scale(1.0 / (dim as f32).sqrt()))
    }

    /// The unfused reference: the exact per-window / per-head tape-op chain
    /// the Swin block used before fusion.
    fn unfused(
        tape: &mut Tape,
        x: Var,
        w: [Var; 4],
        plan: &WindowAttnPlan,
    ) -> Var {
        let [wq, wk, wv, wo] = w;
        let wlen = plan.window_len;
        let scale = 1.0 / (plan.head_dim as f32).sqrt();
        let mut outs = Vec::new();
        for win in 0..plan.n_windows {
            let xw = tape.slice_rows(x, win * wlen, (win + 1) * wlen);
            let q = tape.matmul(xw, wq);
            let k = tape.matmul(xw, wk);
            let v = tape.matmul(xw, wv);
            let mut heads = Vec::new();
            for h in 0..plan.n_heads {
                let (c0, c1) = (h * plan.head_dim, (h + 1) * plan.head_dim);
                let qh = tape.slice_cols(q, c0, c1);
                let kh = tape.slice_cols(k, c0, c1);
                let vh = tape.slice_cols(v, c0, c1);
                let qh = tape.rope_rows(qh, &plan.cos, &plan.sin);
                let kh = tape.rope_rows(kh, &plan.cos, &plan.sin);
                let s = tape.matmul_nt(qh, kh);
                let s = tape.scale(s, scale);
                let p = tape.softmax_rows(s);
                heads.push(tape.matmul(p, vh));
            }
            let merged = tape.concat_cols(&heads);
            outs.push(tape.matmul(merged, wo));
        }
        tape.concat_rows(&outs)
    }

    fn setup(plan: &WindowAttnPlan, seed: u64) -> (Tensor, [Tensor; 4]) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[plan.tokens(), plan.dim()], &mut rng);
        let w = random_weights(plan.dim(), &mut rng);
        (x, w)
    }

    /// Fused forward, loss, and all five gradients vs. the unfused op chain.
    #[test]
    fn fused_matches_unfused_forward_and_backward() {
        let plan = test_plan(3, 4, 2, 4);
        let (x, w) = setup(&plan, 21);

        let run = |fused: bool| -> (Tensor, Vec<Tensor>) {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv: Vec<Var> = w.iter().map(|t| tape.leaf(t.clone())).collect();
            let y = if fused {
                tape.window_attention(xv, wv[0], wv[1], wv[2], wv[3], &plan)
            } else {
                unfused(&mut tape, xv, [wv[0], wv[1], wv[2], wv[3]], &plan)
            };
            let sq = tape.mul(y, y);
            let loss = tape.sum(sq);
            let y_val = tape.value(y).clone();
            let mut grads = tape.backward(loss);
            let gs = std::iter::once(xv)
                .chain(wv)
                .map(|v| grads.take(v).expect("grad"))
                .collect();
            (y_val, gs)
        };

        let (y_f, g_f) = run(true);
        let (y_u, g_u) = run(false);
        assert!(y_f.max_abs_diff(&y_u) < 1e-5, "forward diff {}", y_f.max_abs_diff(&y_u));
        for (i, (gf, gu)) in g_f.iter().zip(&g_u).enumerate() {
            assert!(
                gf.max_abs_diff(gu) < 1e-5,
                "grad {i} diff {}",
                gf.max_abs_diff(gu)
            );
        }
    }

    /// Gradcheck against central finite differences for the input and one
    /// projection weight.
    #[test]
    fn gradcheck_input_and_weight() {
        let plan = test_plan(2, 4, 2, 4);
        let (x, w) = setup(&plan, 22);

        // d/dx
        let loss_of = |x_t: &Tensor, wq_t: &Tensor| -> (Tape, Var, Var, Var) {
            let mut tape = Tape::new();
            let xv = tape.leaf(x_t.clone());
            let wqv = tape.leaf(wq_t.clone());
            let wkv = tape.constant(w[1].clone());
            let wvv = tape.constant(w[2].clone());
            let wov = tape.constant(w[3].clone());
            let y = tape.window_attention(xv, wqv, wkv, wvv, wov, &plan);
            let sq = tape.mul(y, y);
            let l = tape.sum(sq);
            (tape, xv, wqv, l)
        };
        let (mut tape, xv, wqv, l) = loss_of(&x, &w[0]);
        let mut grads = tape.backward(l);
        let gx = grads.take(xv).unwrap();
        let gwq = grads.take(wqv).unwrap();

        let mut fx = |x_t: &Tensor| {
            let (tape, _, _, l) = loss_of(x_t, &w[0]);
            tape.value(l).data()[0] as f64
        };
        assert_grad_close(&gx, &numeric_grad(&mut fx, &x, 1e-3), 3e-2);
        let mut fw = |wq_t: &Tensor| {
            let (tape, _, _, l) = loss_of(&x, wq_t);
            tape.value(l).data()[0] as f64
        };
        assert_grad_close(&gwq, &numeric_grad(&mut fw, &w[0], 1e-3), 3e-2);
    }

    /// One tape node regardless of window/head count (plus the leaves).
    #[test]
    fn tape_is_constant_size_in_windows() {
        let plan = test_plan(8, 4, 2, 4);
        let (x, w) = setup(&plan, 23);
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let wv: Vec<Var> = w.into_iter().map(|t| tape.leaf(t)).collect();
        let before = tape.len();
        let _ = tape.window_attention(xv, wv[0], wv[1], wv[2], wv[3], &plan);
        assert_eq!(tape.len() - before, 1);
    }

    /// Loss and every gradient must be bitwise identical across pool widths.
    #[test]
    fn bitwise_identical_across_thread_counts() {
        let plan = test_plan(6, 4, 2, 4);
        let (x, w) = setup(&plan, 24);
        let run = |threads: usize| -> Vec<Vec<u32>> {
            rayon::set_thread_override(Some(threads));
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv: Vec<Var> = w.iter().map(|t| tape.leaf(t.clone())).collect();
            let y = tape.window_attention(xv, wv[0], wv[1], wv[2], wv[3], &plan);
            let sq = tape.mul(y, y);
            let loss = tape.sum(sq);
            let mut out = vec![tape.value(loss).data().iter().map(|v| v.to_bits()).collect()];
            let mut grads = tape.backward(loss);
            for v in std::iter::once(xv).chain(wv) {
                out.push(grads.take(v).unwrap().data().iter().map(|g| g.to_bits()).collect());
            }
            rayon::set_thread_override(None);
            out
        };
        let base = run(1);
        for t in [2, 3, 8] {
            assert_eq!(base, run(t), "not bitwise stable at {t} threads");
        }
    }
}
