//! The differentiation tape.

use aeris_tensor::{matmul, matmul_nt, matmul_tn, sweeps, Tensor};

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape that
/// created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Backward closure: receives the node's upstream gradient *by value* (the
/// reverse sweep is done with it afterwards), so trivial ops — `add`,
/// `add_scalar`, `reshape`, `scale` — forward or transform the buffer in
/// place instead of cloning it.
pub(crate) type BackFn = Box<dyn Fn(Tensor, &[Node]) -> Vec<Tensor>>;

pub(crate) struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackFn>,
    requires_grad: bool,
}

impl Node {
    #[inline]
    pub(crate) fn value(&self) -> &Tensor {
        &self.value
    }
}

/// Gradients produced by [`Tape::backward`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `var`, if it participated in the graph.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Move the gradient out (used by optimizers to avoid a clone).
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.0).and_then(|g| g.take())
    }
}

/// A single-threaded reverse-mode AD tape.
///
/// Build the forward computation with the op methods, then call
/// [`Tape::backward`] on a scalar node. The tape owns all intermediate values;
/// drop it to release activation memory.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total activation memory held by the tape, in f32 elements.
    pub fn activation_elems(&self) -> usize {
        self.nodes.iter().map(|n| n.value.len()).sum()
    }

    pub(crate) fn push(&mut self, value: Tensor, parents: Vec<usize>, backward: Option<BackFn>, rg: bool) -> Var {
        self.nodes.push(Node { value, parents, backward, requires_grad: rg });
        Var(self.nodes.len() - 1)
    }

    /// A differentiable leaf (parameter or input needing gradients).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None, true)
    }

    /// A non-differentiable constant; gradients are not accumulated for it.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, vec![], None, false)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    // ---- elementwise ----

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|d, _| {
                let da = d.clone();
                vec![da, d]
            })),
            true,
        )
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|d, _| {
                let db = d.scale(-1.0);
                vec![d, db]
            })),
            true,
        )
    }

    /// Hadamard product `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        let (pa, pb) = (a.0, b.0);
        self.push(
            value,
            vec![pa, pb],
            Some(Box::new(move |d, nodes| {
                vec![d.mul(nodes[pb].value()), d.mul(nodes[pa].value())]
            })),
            true,
        )
    }

    /// `c * a` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).scale(c);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |mut d, _| {
                d.scale_inplace(c);
                vec![d]
            })),
            true,
        )
    }

    /// `a + c` for a scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).add_scalar(c);
        self.push(value, vec![a.0], Some(Box::new(|d, _| vec![d])), true)
    }

    /// Reshape (same element count); backward reshapes the gradient back.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let old_shape = self.value(a).shape().to_vec();
        let value = self.value(a).clone().reshape(shape);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| vec![d.reshape(&old_shape)])),
            true,
        )
    }

    /// SiLU activation `x · σ(x)`.
    pub fn silu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x * sigmoid(x));
        let pa = a.0;
        self.push(
            value,
            vec![pa],
            Some(Box::new(move |d, nodes| {
                let x = nodes[pa].value();
                vec![d.zip_map(x, |g, x| {
                    let s = sigmoid(x);
                    g * (s * (1.0 + x * (1.0 - s)))
                })]
            })),
            true,
        )
    }

    // ---- linear algebra ----

    /// `A @ B` for 2-D `A: [m,k]`, `B: [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = matmul(self.value(a), self.value(b));
        let (pa, pb) = (a.0, b.0);
        self.push(
            value,
            vec![pa, pb],
            Some(Box::new(move |d, nodes| {
                let da = matmul_nt(&d, nodes[pb].value()); // dC Bᵀ
                let db = matmul_tn(nodes[pa].value(), &d); // Aᵀ dC
                vec![da, db]
            })),
            true,
        )
    }

    /// `A @ Bᵀ` for `A: [m,k]`, `B: [n,k]` — attention scores `QKᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let value = matmul_nt(self.value(a), self.value(b));
        let (pa, pb) = (a.0, b.0);
        self.push(
            value,
            vec![pa, pb],
            Some(Box::new(move |d, nodes| {
                let da = matmul(&d, nodes[pb].value()); // dC B
                let db = matmul_tn(&d, nodes[pa].value()); // dCᵀ A
                vec![da, db]
            })),
            true,
        )
    }

    // ---- normalization / activation over rows ----

    /// Row-wise softmax of a 2-D tensor.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        let y = value.clone();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| {
                let (rows, cols) = (y.shape()[0], y.shape()[1]);
                let mut dx = Tensor::zeros(y.shape());
                for r in 0..rows {
                    let yr = y.row(r);
                    let dr = &d.data()[r * cols..(r + 1) * cols];
                    let dot = sweeps::dot(yr, dr);
                    let out = dx.row_mut(r);
                    for ((o, &p), &g) in out.iter_mut().zip(yr).zip(dr) {
                        *o = p * (g - dot);
                    }
                }
                vec![dx]
            })),
            true,
        )
    }

    /// Row-wise RMSNorm with learned gain: `y = x / rms(x) ⊙ γ`,
    /// `rms(x) = sqrt(mean(x²) + eps)`. `x: [rows, dim]`, `gamma: [dim]`.
    pub fn rmsnorm_rows(&mut self, x: Var, gamma: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let gv = self.value(gamma);
        assert_eq!(xv.ndim(), 2);
        assert_eq!(gv.shape(), &[xv.shape()[1]]);
        let (rows, dim) = (xv.shape()[0], xv.shape()[1]);
        let mut value = Tensor::zeros(xv.shape());
        let mut inv_rms = Vec::with_capacity(rows);
        for r in 0..rows {
            let xr = xv.row(r);
            let ms = sweeps::sum_sq(xr) / dim as f32;
            let ir = 1.0 / (ms + eps).sqrt();
            inv_rms.push(ir);
            for (o, (&xi, &gi)) in value.row_mut(r).iter_mut().zip(xr.iter().zip(gv.data())) {
                *o = xi * ir * gi;
            }
        }
        let (px, pg) = (x.0, gamma.0);
        self.push(
            value,
            vec![px, pg],
            Some(Box::new(move |d, nodes| {
                let xv = nodes[px].value();
                let gv = nodes[pg].value();
                let mut dx = Tensor::zeros(xv.shape());
                let mut dg = Tensor::zeros(gv.shape());
                for r in 0..rows {
                    let xr = xv.row(r);
                    let dr = &d.data()[r * dim..(r + 1) * dim];
                    let ir = inv_rms[r];
                    let s = sweeps::dot3(gv.data(), dr, xr); // Σ γ_j d_j x_j
                    let coef = s * ir * ir * ir / dim as f32;
                    let dxr = dx.row_mut(r);
                    for j in 0..dim {
                        dxr[j] = gv.data()[j] * dr[j] * ir - xr[j] * coef;
                        dg.data_mut()[j] += dr[j] * xr[j] * ir;
                    }
                }
                vec![dx, dg]
            })),
            true,
        )
    }

    // ---- structural ----

    /// Columns `[c0, c1)` of a 2-D tensor.
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let av = self.value(a);
        let cols = av.shape()[1];
        let value = av.slice_cols(c0, c1);
        let rows = av.shape()[0];
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| {
                let mut dx = Tensor::zeros(&[rows, cols]);
                let w = c1 - c0;
                for r in 0..rows {
                    dx.row_mut(r)[c0..c1].copy_from_slice(&d.data()[r * w..(r + 1) * w]);
                }
                vec![dx]
            })),
            true,
        )
    }

    /// Rows `[r0, r1)` of a 2-D tensor. Unlike [`Tape::gather_rows`] with a
    /// consecutive index vector, this is a contiguous memcpy forward and a
    /// single `copy_from_slice` into a zero buffer backward — no index vector,
    /// no per-row scatter-add.
    pub fn slice_rows(&mut self, a: Var, r0: usize, r1: usize) -> Var {
        let av = self.value(a);
        assert_eq!(av.ndim(), 2);
        let (rows, cols) = (av.shape()[0], av.shape()[1]);
        assert!(r0 <= r1 && r1 <= rows, "row slice [{r0}, {r1}) out of bounds ({rows})");
        let value = av.slice_rows(r0, r1);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| {
                let mut dx = Tensor::zeros(&[rows, cols]);
                dx.data_mut()[r0 * cols..r1 * cols].copy_from_slice(d.data());
                vec![dx]
            })),
            true,
        )
    }

    /// Concatenate 2-D tensors along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let widths: Vec<usize> = tensors.iter().map(|t| t.shape()[1]).collect();
        let value = Tensor::concat_cols(&tensors);
        let parents: Vec<usize> = parts.iter().map(|v| v.0).collect();
        self.push(
            value,
            parents,
            Some(Box::new(move |d, _| {
                let mut out = Vec::with_capacity(widths.len());
                let mut c0 = 0;
                for &w in &widths {
                    out.push(d.slice_cols(c0, c0 + w));
                    c0 += w;
                }
                out
            })),
            true,
        )
    }

    /// Concatenate 2-D tensors along rows.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let heights: Vec<usize> = tensors.iter().map(|t| t.shape()[0]).collect();
        let value = Tensor::concat_rows(&tensors);
        let parents: Vec<usize> = parts.iter().map(|v| v.0).collect();
        self.push(
            value,
            parents,
            Some(Box::new(move |d, _| {
                let mut out = Vec::with_capacity(heights.len());
                let mut r0 = 0;
                for &h in &heights {
                    out.push(d.slice_rows(r0, r0 + h));
                    r0 += h;
                }
                out
            })),
            true,
        )
    }

    /// Gather rows: `y[i] = x[idx[i]]`. `idx` may be any permutation or
    /// selection; backward scatter-adds. This is the primitive behind window
    /// partition, window merge, and the cyclic shift of Swin attention.
    pub fn gather_rows(&mut self, a: Var, idx: &[usize]) -> Var {
        let av = self.value(a);
        assert_eq!(av.ndim(), 2);
        let (rows, cols) = (av.shape()[0], av.shape()[1]);
        let mut value = Tensor::zeros(&[idx.len(), cols]);
        for (i, &src) in idx.iter().enumerate() {
            assert!(src < rows, "gather index {src} out of bounds ({rows})");
            value.row_mut(i).copy_from_slice(av.row(src));
        }
        let idx = idx.to_vec();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| {
                let mut dx = Tensor::zeros(&[rows, cols]);
                for (i, &src) in idx.iter().enumerate() {
                    let dr = &d.data()[i * cols..(i + 1) * cols];
                    for (o, &g) in dx.row_mut(src).iter_mut().zip(dr) {
                        *o += g;
                    }
                }
                vec![dx]
            })),
            true,
        )
    }

    /// Rotary position embedding over adjacent pairs: for each row `r` and
    /// pair `p`, rotate `(x[2p], x[2p+1])` by the constant angle whose
    /// cos/sin are `cos[r,p]` / `sin[r,p]`.
    pub fn rope_rows(&mut self, a: Var, cos: &Tensor, sin: &Tensor) -> Var {
        let av = self.value(a);
        assert_eq!(av.ndim(), 2);
        let (rows, dim) = (av.shape()[0], av.shape()[1]);
        assert_eq!(dim % 2, 0, "RoPE requires an even feature dimension");
        assert_eq!(cos.shape(), &[rows, dim / 2]);
        assert_eq!(sin.shape(), &[rows, dim / 2]);
        let mut value = Tensor::zeros(av.shape());
        for r in 0..rows {
            let xr = av.row(r);
            let out = value.row_mut(r);
            for p in 0..dim / 2 {
                let (c, s) = (cos.at(&[r, p]), sin.at(&[r, p]));
                let (x0, x1) = (xr[2 * p], xr[2 * p + 1]);
                out[2 * p] = x0 * c - x1 * s;
                out[2 * p + 1] = x0 * s + x1 * c;
            }
        }
        let (cos, sin) = (cos.clone(), sin.clone());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| {
                // Inverse rotation (by -θ) applied to the output gradient.
                let mut dx = Tensor::zeros(d.shape());
                for r in 0..rows {
                    let dr = &d.data()[r * dim..(r + 1) * dim];
                    let out = dx.row_mut(r);
                    for p in 0..dim / 2 {
                        let (c, s) = (cos.at(&[r, p]), sin.at(&[r, p]));
                        let (g0, g1) = (dr[2 * p], dr[2 * p + 1]);
                        out[2 * p] = g0 * c + g1 * s;
                        out[2 * p + 1] = -g0 * s + g1 * c;
                    }
                }
                vec![dx]
            })),
            true,
        )
    }

    /// Row-broadcast affine: `y = x ⊙ scale + shift` with `x: [rows, dim]`,
    /// `scale, shift: [dim]`. This is the AdaLN modulation primitive.
    pub fn affine_rows(&mut self, x: Var, scale: Var, shift: Var) -> Var {
        let xv = self.value(x);
        let sv = self.value(scale);
        let bv = self.value(shift);
        assert_eq!(xv.ndim(), 2);
        let (rows, dim) = (xv.shape()[0], xv.shape()[1]);
        assert_eq!(sv.shape(), &[dim]);
        assert_eq!(bv.shape(), &[dim]);
        let mut value = Tensor::zeros(xv.shape());
        for r in 0..rows {
            let xr = xv.row(r).to_vec();
            let out = value.row_mut(r);
            for j in 0..dim {
                out[j] = xr[j] * sv.data()[j] + bv.data()[j];
            }
        }
        let (px, ps) = (x.0, scale.0);
        self.push(
            value,
            vec![px, ps, shift.0],
            Some(Box::new(move |d, nodes| {
                let xv = nodes[px].value();
                let sv = nodes[ps].value();
                let mut dx = Tensor::zeros(xv.shape());
                let mut dscale = Tensor::zeros(sv.shape());
                let mut dshift = Tensor::zeros(sv.shape());
                for r in 0..rows {
                    let dr = &d.data()[r * dim..(r + 1) * dim];
                    let xr = xv.row(r);
                    let dxr = dx.row_mut(r);
                    for j in 0..dim {
                        dxr[j] = dr[j] * sv.data()[j];
                        dscale.data_mut()[j] += dr[j] * xr[j];
                        dshift.data_mut()[j] += dr[j];
                    }
                }
                vec![dx, dscale, dshift]
            })),
            true,
        )
    }

    /// Row-broadcast product `y = x ⊙ vec` (AdaLN gating).
    pub fn mul_rows(&mut self, x: Var, vec: Var) -> Var {
        let xv = self.value(x);
        let vv = self.value(vec);
        let (rows, dim) = (xv.shape()[0], xv.shape()[1]);
        assert_eq!(vv.shape(), &[dim]);
        let mut value = Tensor::zeros(xv.shape());
        for r in 0..rows {
            for (o, (&xi, &vi)) in value.row_mut(r).iter_mut().zip(xv.row(r).iter().zip(vv.data())) {
                *o = xi * vi;
            }
        }
        let (px, pv) = (x.0, vec.0);
        self.push(
            value,
            vec![px, pv],
            Some(Box::new(move |d, nodes| {
                let xv = nodes[px].value();
                let vv = nodes[pv].value();
                let mut dx = Tensor::zeros(xv.shape());
                let mut dv = Tensor::zeros(vv.shape());
                for r in 0..rows {
                    let dr = &d.data()[r * dim..(r + 1) * dim];
                    let xr = xv.row(r);
                    let dxr = dx.row_mut(r);
                    for j in 0..dim {
                        dxr[j] = dr[j] * vv.data()[j];
                        dv.data_mut()[j] += dr[j] * xr[j];
                    }
                }
                vec![dx, dv]
            })),
            true,
        )
    }

    /// Row-broadcast addition `y = x + vec` (bias).
    pub fn add_rows(&mut self, x: Var, vec: Var) -> Var {
        let xv = self.value(x);
        let vv = self.value(vec);
        let (rows, dim) = (xv.shape()[0], xv.shape()[1]);
        assert_eq!(vv.shape(), &[dim]);
        let mut value = xv.clone();
        for r in 0..rows {
            for (o, &vi) in value.row_mut(r).iter_mut().zip(vv.data()) {
                *o += vi;
            }
        }
        self.push(
            value,
            vec![x.0, vec.0],
            Some(Box::new(move |d, _| {
                let mut dv = Tensor::zeros(&[dim]);
                for r in 0..rows {
                    let dr = &d.data()[r * dim..(r + 1) * dim];
                    for (o, &g) in dv.data_mut().iter_mut().zip(dr) {
                        *o += g;
                    }
                }
                vec![d, dv]
            })),
            true,
        )
    }

    // ---- reductions / losses ----

    /// Sum of all elements → shape `[1]`.
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Tensor::from_slice(&[self.value(a).sum() as f32]);
        let shape = self.value(a).shape().to_vec();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |d, _| vec![Tensor::full(&shape, d.data()[0])])),
            true,
        )
    }

    /// Mean of all elements → shape `[1]`.
    pub fn mean(&mut self, a: Var) -> Var {
        let n = self.value(a).len() as f32;
        let s = self.sum(a);
        self.scale(s, 1.0 / n)
    }

    /// Weighted squared-error loss against constant target with constant
    /// per-element weights: `Σ w ⊙ (pred − target)² / pred.len()`.
    ///
    /// This is the fused primitive behind the paper's physically weighted
    /// diffusion objective (Eq. 2); `target` and `weights` never need grads.
    pub fn weighted_mse(&mut self, pred: Var, target: &Tensor, weights: &Tensor) -> Var {
        let pv = self.value(pred);
        assert_eq!(pv.shape(), target.shape());
        assert_eq!(pv.shape(), weights.shape());
        let n = pv.len() as f32;
        let mut acc = 0.0f64;
        for ((&p, &t), &w) in pv.data().iter().zip(target.data()).zip(weights.data()) {
            let d = p - t;
            acc += (w * d * d) as f64;
        }
        let value = Tensor::from_slice(&[(acc / n as f64) as f32]);
        let (target, weights) = (target.clone(), weights.clone());
        let p_ix = pred.0;
        self.push(
            value,
            vec![p_ix],
            Some(Box::new(move |d, nodes| {
                let pv = nodes[p_ix].value();
                let g0 = d.data()[0] * 2.0 / n;
                let grad = pv
                    .zip_map(&target, |p, t| p - t)
                    .zip_map(&weights, |diff, w| g0 * w * diff);
                vec![grad]
            })),
            true,
        )
    }

    /// Run the backward pass from a scalar node; returns gradients for every
    /// `leaf` that participated.
    pub fn backward(&mut self, loss: Var) -> Grads {
        assert_eq!(self.value(loss).len(), 1, "backward requires a scalar loss");
        let seed = Tensor::ones(&[1]).reshape(self.value(loss).shape());
        self.backward_from(&[(loss, seed)])
    }

    /// Generalized backward pass (vector–Jacobian product) seeded with
    /// explicit cotangents at arbitrary vars. This is the primitive the
    /// distributed runtime uses: gradients arriving from another rank (via
    /// all-to-all or pipeline send/recv) seed the local tape at the vars whose
    /// values were shipped out during the forward pass.
    pub fn backward_from(&mut self, seeds: &[(Var, Tensor)]) -> Grads {
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for (var, seed) in seeds {
            assert_eq!(
                seed.shape(),
                self.value(*var).shape(),
                "seed shape mismatch for var {}",
                var.0
            );
            match &mut grads[var.0] {
                Some(acc) => acc.add_assign(seed),
                slot @ None => *slot = Some(seed.clone()),
            }
        }

        for i in (0..self.nodes.len()).rev() {
            let Some(dout) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            if let Some(back) = &node.backward {
                let parent_grads = back(dout, &self.nodes);
                debug_assert_eq!(parent_grads.len(), node.parents.len());
                for (p, g) in node.parents.clone().into_iter().zip(parent_grads) {
                    if !self.nodes[p].requires_grad && self.nodes[p].backward.is_none() {
                        continue; // constant leaf: skip accumulation
                    }
                    match &mut grads[p] {
                        Some(acc) => acc.add_assign(&g),
                        slot @ None => *slot = Some(g),
                    }
                }
            } else if node.requires_grad {
                grads[i] = Some(dout); // keep leaf gradient
            }
        }
        Grads { grads }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_grad_close, numeric_grad};
    use aeris_tensor::Rng;

    /// Run f building a scalar loss from a leaf initialized to x; return
    /// (loss value, analytic grad).
    fn analytic(x: &Tensor, f: impl Fn(&mut Tape, Var) -> Var) -> (f64, Tensor) {
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let loss = f(&mut tape, v);
        let val = tape.value(loss).data()[0] as f64;
        let mut grads = tape.backward(loss);
        (val, grads.take(v).expect("leaf grad"))
    }

    fn check(x: &Tensor, tol: f32, f: impl Fn(&mut Tape, Var) -> Var + Copy) {
        let (_, g) = analytic(x, f);
        let mut numf = |xt: &Tensor| analytic(xt, f).0;
        let ng = numeric_grad(&mut numf, x, 1e-3);
        assert_grad_close(&g, &ng, tol);
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let x = Tensor::from_slice(&[1., 2., 3.]);
        let (_, g) = analytic(&x, |t, v| t.sum(v));
        assert_eq!(g.data(), &[1., 1., 1.]);
    }

    #[test]
    fn grad_elementwise_chain() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[2, 3], &mut rng);
        check(&x, 1e-2, |t, v| {
            let a = t.scale(v, 3.0);
            let b = t.mul(a, v);
            let c = t.add(b, v);
            let d = t.add_scalar(c, 0.5);
            t.sum(d)
        });
    }

    #[test]
    fn grad_sub_and_mean() {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(&[4], &mut rng);
        check(&x, 1e-2, |t, v| {
            let two = t.constant(Tensor::full(&[4], 2.0));
            let d = t.sub(v, two);
            let sq = t.mul(d, d);
            t.mean(sq)
        });
    }

    #[test]
    fn grad_matmul_both_sides() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        // grad wrt a
        check(&a, 1e-2, |t, v| {
            let bc = t.constant(b.clone());
            let c = t.matmul(v, bc);
            t.sum(c)
        });
        // grad wrt b (as leaf)
        let mut tape = Tape::new();
        let av = tape.constant(a.clone());
        let bv = tape.leaf(b.clone());
        let c = tape.matmul(av, bv);
        let loss = tape.sum(c);
        let mut grads = tape.backward(loss);
        let gb = grads.take(bv).unwrap();
        let mut numf = |bt: &Tensor| {
            let mut t = Tape::new();
            let av = t.constant(a.clone());
            let bv = t.leaf(bt.clone());
            let c = t.matmul(av, bv);
            let l = t.sum(c);
            t.value(l).data()[0] as f64
        };
        let ng = numeric_grad(&mut numf, &b, 1e-3);
        assert_grad_close(&gb, &ng, 1e-2);
    }

    #[test]
    fn grad_matmul_nt() {
        let mut rng = Rng::seed_from(4);
        let q = Tensor::randn(&[3, 4], &mut rng);
        let k = Tensor::randn(&[5, 4], &mut rng);
        check(&q, 1e-2, |t, v| {
            let kc = t.constant(k.clone());
            let s = t.matmul_nt(v, kc);
            let sq = t.mul(s, s);
            t.sum(sq)
        });
    }

    #[test]
    fn grad_softmax() {
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[2, 5], &mut rng);
        check(&x, 1e-2, |t, v| {
            let s = t.softmax_rows(v);
            let sq = t.mul(s, s);
            t.sum(sq)
        });
    }

    #[test]
    fn grad_silu() {
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[8], &mut rng).reshape(&[2, 4]);
        check(&x, 1e-2, |t, v| {
            let s = t.silu(v);
            t.sum(s)
        });
    }

    #[test]
    fn grad_rmsnorm_x_and_gamma() {
        let mut rng = Rng::seed_from(7);
        let x = Tensor::randn(&[3, 6], &mut rng);
        let gamma = Tensor::rand_uniform(&[6], 0.5, 1.5, &mut rng);
        check(&x, 2e-2, |t, v| {
            let g = t.constant(gamma.clone());
            let y = t.rmsnorm_rows(v, g, 1e-6);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        // gamma gradient
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let gv = tape.leaf(gamma.clone());
        let y = tape.rmsnorm_rows(xv, gv, 1e-6);
        let sq = tape.mul(y, y);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        let gg = grads.take(gv).unwrap();
        let mut numf = |gt: &Tensor| {
            let mut t = Tape::new();
            let xv = t.constant(x.clone());
            let gv = t.leaf(gt.clone());
            let y = t.rmsnorm_rows(xv, gv, 1e-6);
            let sq = t.mul(y, y);
            let l = t.sum(sq);
            t.value(l).data()[0] as f64
        };
        let ng = numeric_grad(&mut numf, &gamma, 1e-3);
        assert_grad_close(&gg, &ng, 2e-2);
    }

    #[test]
    fn grad_slice_concat_cols() {
        let mut rng = Rng::seed_from(8);
        let x = Tensor::randn(&[2, 6], &mut rng);
        check(&x, 1e-2, |t, v| {
            let a = t.slice_cols(v, 0, 3);
            let b = t.slice_cols(v, 3, 6);
            let p = t.mul(a, b);
            let c = t.concat_cols(&[p, a]);
            t.sum(c)
        });
    }

    #[test]
    fn grad_concat_rows() {
        let mut rng = Rng::seed_from(18);
        let x = Tensor::randn(&[4, 3], &mut rng);
        check(&x, 1e-2, |t, v| {
            let top = t.gather_rows(v, &[0, 1]);
            let bot = t.gather_rows(v, &[2, 3]);
            let cat = t.concat_rows(&[bot, top]);
            let sq = t.mul(cat, cat);
            t.sum(sq)
        });
    }

    #[test]
    fn grad_slice_rows() {
        let mut rng = Rng::seed_from(19);
        let x = Tensor::randn(&[5, 3], &mut rng);
        check(&x, 1e-2, |t, v| {
            let mid = t.slice_rows(v, 1, 4);
            let sq = t.mul(mid, mid);
            t.sum(sq)
        });
    }

    #[test]
    fn slice_rows_matches_gather_rows() {
        let mut rng = Rng::seed_from(20);
        let x = Tensor::randn(&[6, 4], &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let s = tape.slice_rows(v, 2, 5);
        let g = tape.gather_rows(v, &[2, 3, 4]);
        assert!(tape.value(s).max_abs_diff(tape.value(g)) < 1e-7);
        assert_eq!(tape.value(s).shape(), &[3, 4]);
    }

    #[test]
    fn grad_gather_rows_with_duplicates() {
        let mut rng = Rng::seed_from(9);
        let x = Tensor::randn(&[4, 3], &mut rng);
        check(&x, 1e-2, |t, v| {
            let g = t.gather_rows(v, &[1, 1, 3, 0]);
            let sq = t.mul(g, g);
            t.sum(sq)
        });
    }

    #[test]
    fn gather_rows_permutation_roundtrip() {
        let mut rng = Rng::seed_from(10);
        let x = Tensor::randn(&[5, 2], &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let perm = [4, 2, 0, 3, 1];
        let mut inv = [0usize; 5];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        let g = tape.gather_rows(v, &perm);
        let back = tape.gather_rows(g, &inv);
        assert!(tape.value(back).max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn grad_rope() {
        let mut rng = Rng::seed_from(11);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let angles: Vec<f32> = (0..6).map(|i| 0.3 * i as f32).collect();
        let cos = Tensor::from_vec(&[3, 2], angles.iter().map(|a| a.cos()).collect());
        let sin = Tensor::from_vec(&[3, 2], angles.iter().map(|a| a.sin()).collect());
        check(&x, 1e-2, |t, v| {
            let r = t.rope_rows(v, &cos, &sin);
            let sq = t.mul(r, r);
            t.sum(sq)
        });
    }

    #[test]
    fn rope_preserves_pair_norms() {
        let mut rng = Rng::seed_from(12);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let cos = Tensor::from_vec(&[2, 3], vec![0.6; 6]);
        let sin = Tensor::from_vec(&[2, 3], vec![0.8; 6]);
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let r = tape.rope_rows(v, &cos, &sin);
        let y = tape.value(r);
        for row in 0..2 {
            for p in 0..3 {
                let nx = x.at(&[row, 2 * p]).hypot(x.at(&[row, 2 * p + 1]));
                let ny = y.at(&[row, 2 * p]).hypot(y.at(&[row, 2 * p + 1]));
                assert!((nx - ny).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grad_affine_mul_add_rows() {
        let mut rng = Rng::seed_from(13);
        let x = Tensor::randn(&[3, 4], &mut rng);
        let s = Tensor::rand_uniform(&[4], 0.5, 1.5, &mut rng);
        let b = Tensor::randn(&[4], &mut rng);
        check(&x, 1e-2, |t, v| {
            let sv = t.constant(s.clone());
            let bv = t.constant(b.clone());
            let y = t.affine_rows(v, sv, bv);
            let z = t.mul_rows(y, sv);
            let w = t.add_rows(z, bv);
            let sq = t.mul(w, w);
            t.sum(sq)
        });
        // scale / shift grads
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let sv = tape.leaf(s.clone());
        let bv = tape.leaf(b.clone());
        let y = tape.affine_rows(xv, sv, bv);
        let sq = tape.mul(y, y);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        let gs = grads.take(sv).unwrap();
        let gb = grads.take(bv).unwrap();
        let mut numf_s = |st: &Tensor| {
            let mut t = Tape::new();
            let xv = t.constant(x.clone());
            let sv = t.leaf(st.clone());
            let bv = t.constant(b.clone());
            let y = t.affine_rows(xv, sv, bv);
            let sq = t.mul(y, y);
            let l = t.sum(sq);
            t.value(l).data()[0] as f64
        };
        assert_grad_close(&gs, &numeric_grad(&mut numf_s, &s, 1e-3), 2e-2);
        let mut numf_b = |bt: &Tensor| {
            let mut t = Tape::new();
            let xv = t.constant(x.clone());
            let sv = t.constant(s.clone());
            let bv = t.leaf(bt.clone());
            let y = t.affine_rows(xv, sv, bv);
            let sq = t.mul(y, y);
            let l = t.sum(sq);
            t.value(l).data()[0] as f64
        };
        assert_grad_close(&gb, &numeric_grad(&mut numf_b, &b, 1e-3), 2e-2);
    }

    #[test]
    fn grad_weighted_mse() {
        let mut rng = Rng::seed_from(14);
        let pred = Tensor::randn(&[2, 3], &mut rng);
        let target = Tensor::randn(&[2, 3], &mut rng);
        let weights = Tensor::rand_uniform(&[2, 3], 0.1, 2.0, &mut rng);
        check(&pred, 1e-2, |t, v| t.weighted_mse(v, &target, &weights));
    }

    #[test]
    fn weighted_mse_value_is_correct() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let w = Tensor::from_slice(&[1.0, 0.5]);
        let mut tape = Tape::new();
        let v = tape.leaf(pred);
        let l = tape.weighted_mse(v, &target, &w);
        // (1*1 + 0.5*4)/2 = 1.5
        assert!((tape.value(l).data()[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[2.0]));
        let c = tape.constant(Tensor::from_slice(&[3.0]));
        let y = tape.mul(x, c);
        let l = tape.sum(y);
        let mut grads = tape.backward(l);
        assert!(grads.get(c).is_none());
        assert_eq!(grads.take(x).unwrap().data(), &[3.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = sum(x*x + x*x) => grad = 4x
        let x = Tensor::from_slice(&[1.5, -2.0]);
        let (_, g) = analytic(&x, |t, v| {
            let a = t.mul(v, v);
            let b = t.mul(v, v);
            let s = t.add(a, b);
            t.sum(s)
        });
        assert!((g.data()[0] - 6.0).abs() < 1e-5);
        assert!((g.data()[1] + 8.0).abs() < 1e-5);
    }

    #[test]
    fn backward_from_matches_split_computation() {
        // Full graph: loss = sum((2x)^2). Split at y = 2x: backward of
        // sum(y^2) seeds dy = 2y; backward_from((y, dy)) on the producer tape
        // must equal the fused gradient 8x.
        let x = Tensor::from_slice(&[1.0, -3.0]);
        // Fused reference.
        let (_, g_ref) = analytic(&x, |t, v| {
            let y = t.scale(v, 2.0);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        // Split: producer tape computes y only.
        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let y = tape.scale(v, 2.0);
        let y_val = tape.value(y).clone();
        // "Consumer" computes dL/dy = 2y externally.
        let dy = y_val.scale(2.0);
        let mut grads = tape.backward_from(&[(y, dy)]);
        let g_split = grads.take(v).unwrap();
        assert!(g_split.max_abs_diff(&g_ref) < 1e-6);
    }

    #[test]
    fn backward_from_accumulates_multiple_seeds() {
        let x = Tensor::from_slice(&[2.0]);
        let mut tape = Tape::new();
        let v = tape.leaf(x);
        let a = tape.scale(v, 3.0);
        let b = tape.scale(v, 5.0);
        let mut grads = tape.backward_from(&[
            (a, Tensor::from_slice(&[1.0])),
            (b, Tensor::from_slice(&[1.0])),
        ]);
        assert_eq!(grads.take(v).unwrap().data(), &[8.0]);
    }

    #[test]
    fn activation_accounting_grows() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[10, 10]));
        assert_eq!(tape.activation_elems(), 100);
        let y = tape.add_scalar(x, 1.0);
        let _ = tape.mul(y, y);
        assert_eq!(tape.activation_elems(), 300);
        assert_eq!(tape.len(), 3);
    }
}
