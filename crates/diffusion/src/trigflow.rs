//! TrigFlow parameterization (§VI-B, after Lu & Song 2024).
//!
//! Clean data `x₀ ~ p_d` (standardized, σ_d = 1) is spherically interpolated
//! with Gaussian noise: `x_t = cos(t)·x₀ + sin(t)·z`, `z ~ N(0, σ_d² I)`,
//! with diffusion time `t = arctan(e^τ / σ_d) ∈ [0, π/2]` and τ drawn
//! log-uniformly from `[ln σ_min, ln σ_max]` (the paper's heavy-tail-covering
//! prior, with σ_min = 0.2 and σ_max = 500). The network learns the velocity
//! `v_t = cos(t)·z − sin(t)·x₀` with an L2 objective (Eq. 1), and the learned
//! dynamics follow the PFODE `dx/dt = σ_d · F_θ(x/σ_d, t)`.

use aeris_tensor::{Rng, Tensor};

/// TrigFlow hyperparameters. Defaults follow the paper.
#[derive(Clone, Copy, Debug)]
pub struct TrigFlow {
    /// Data standard deviation σ_d (inputs are z-scored, so 1).
    pub sigma_d: f32,
    /// Lower bound of the log-uniform σ prior.
    pub sigma_min: f32,
    /// Upper bound of the log-uniform σ prior.
    pub sigma_max: f32,
}

impl Default for TrigFlow {
    fn default() -> Self {
        TrigFlow { sigma_d: 1.0, sigma_min: 0.2, sigma_max: 500.0 }
    }
}

impl TrigFlow {
    /// Diffusion time for a noise scale σ: `t = arctan(σ / σ_d)`.
    pub fn t_of_sigma(&self, sigma: f32) -> f32 {
        (sigma / self.sigma_d).atan()
    }

    /// Noise scale for a diffusion time: `σ = σ_d · tan(t)`.
    pub fn sigma_of_t(&self, t: f32) -> f32 {
        self.sigma_d * t.tan()
    }

    /// Draw a diffusion time from the training prior:
    /// `τ = (1−u)·ln σ_min + u·ln σ_max`, `u ~ U(0,1)`, `t = arctan(e^τ/σ_d)`.
    pub fn sample_t(&self, rng: &mut Rng) -> f32 {
        let u = rng.next_f32();
        let tau = (1.0 - u) * self.sigma_min.ln() + u * self.sigma_max.ln();
        (tau.exp() / self.sigma_d).atan()
    }

    /// Spherical interpolation `x_t = cos(t)·x₀ + sin(t)·z`.
    pub fn interpolate(&self, x0: &Tensor, z: &Tensor, t: f32) -> Tensor {
        assert_eq!(x0.shape(), z.shape());
        let (c, s) = (t.cos(), t.sin());
        x0.zip_map(z, |x, n| c * x + s * n)
    }

    /// The velocity target `v_t = cos(t)·z − sin(t)·x₀`.
    pub fn velocity_target(&self, x0: &Tensor, z: &Tensor, t: f32) -> Tensor {
        assert_eq!(x0.shape(), z.shape());
        let (c, s) = (t.cos(), t.sin());
        z.zip_map(x0, |n, x| c * n - s * x)
    }

    /// Recover the denoised estimate from a velocity prediction:
    /// since `dx/dt = v`, `x₀ ≈ cos(t)·x_t − sin(t)·v̂` (exact when v̂ = v).
    pub fn denoise(&self, x_t: &Tensor, v_hat: &Tensor, t: f32) -> Tensor {
        let (c, s) = (t.cos(), t.sin());
        x_t.zip_map(v_hat, |x, v| c * x - s * v)
    }

    /// Exact angular-rotation ODE step (first order / "TrigFlow DDIM"): with
    /// constant velocity field, `x_{t'} = cos(t−t')·x_t − sin(t−t')·v̂`.
    pub fn ode_step(&self, x_t: &Tensor, v_hat: &Tensor, t: f32, t_next: f32) -> Tensor {
        let d = t - t_next;
        let (c, s) = (d.cos(), d.sin());
        x_t.zip_map(v_hat, |x, v| c * x - s * v)
    }

    /// Re-noise a sample from time `t` up to `t_hat ≥ t` (the trigonometric
    /// Langevin-like churn). This is the exact forward renoising of the
    /// spherical interpolant: scaling the signal by `cos t̂ / cos t` and
    /// topping the noise back up to `sin t̂`,
    /// `x̂ = (cos t̂/cos t)·x_t + σ_d·√(sin² t̂ − (cos t̂/cos t)²·sin² t)·z`,
    /// which maps the marginal at `t` exactly onto the marginal at `t̂`.
    pub fn churn(&self, x_t: &Tensor, t: f32, t_hat: f32, rng: &mut Rng) -> Tensor {
        assert!(t_hat >= t);
        let scale = t_hat.cos() / t.cos();
        let add = (t_hat.sin() * t_hat.sin() - scale * scale * t.sin() * t.sin()).max(0.0).sqrt();
        let sd = self.sigma_d;
        let mut out = x_t.clone();
        for v in out.data_mut() {
            *v = scale * *v + add * sd * rng.normal();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_sigma_roundtrip_and_range() {
        let tf = TrigFlow::default();
        for &sigma in &[0.2f32, 1.0, 10.0, 500.0] {
            let t = tf.t_of_sigma(sigma);
            assert!((0.0..std::f32::consts::FRAC_PI_2).contains(&t));
            assert!((tf.sigma_of_t(t) - sigma).abs() / sigma < 1e-4);
        }
    }

    #[test]
    fn sampled_times_cover_prior_support() {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(1);
        let t_min = tf.t_of_sigma(tf.sigma_min);
        let t_max = tf.t_of_sigma(tf.sigma_max);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for _ in 0..5000 {
            let t = tf.sample_t(&mut rng);
            assert!(t >= t_min - 1e-6 && t <= t_max + 1e-6);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        assert!(lo < t_min + 0.1, "lower support unexplored");
        assert!(hi > t_max - 0.01, "upper support unexplored");
    }

    #[test]
    fn interpolation_preserves_marginal_variance() {
        // var(x_t) = cos² var(x0) + sin² σ_d² = σ_d² when var(x0)=σ_d².
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(2);
        let x0 = Tensor::randn(&[20_000], &mut rng);
        let z = Tensor::randn(&[20_000], &mut rng);
        for &t in &[0.3f32, 0.8, 1.3] {
            let xt = tf.interpolate(&x0, &z, t);
            let var = xt.variance();
            assert!((var - 1.0).abs() < 0.05, "t={t} var={var}");
        }
    }

    #[test]
    fn denoise_recovers_x0_with_true_velocity() {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(3);
        let x0 = Tensor::randn(&[64], &mut rng);
        let z = Tensor::randn(&[64], &mut rng);
        let t = 0.9;
        let xt = tf.interpolate(&x0, &z, t);
        let v = tf.velocity_target(&x0, &z, t);
        assert!(tf.denoise(&xt, &v, t).max_abs_diff(&x0) < 1e-5);
    }

    #[test]
    fn ode_step_with_true_velocity_is_exact() {
        // Rotating (x0, z) by the angular step must land exactly on the
        // interpolant at the new time.
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(4);
        let x0 = Tensor::randn(&[64], &mut rng);
        let z = Tensor::randn(&[64], &mut rng);
        let (t, t_next) = (1.2f32, 0.5f32);
        let xt = tf.interpolate(&x0, &z, t);
        let v = tf.velocity_target(&x0, &z, t);
        let stepped = tf.ode_step(&xt, &v, t, t_next);
        let expected = tf.interpolate(&x0, &z, t_next);
        assert!(stepped.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn ode_step_to_zero_is_denoise() {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(5);
        let x = Tensor::randn(&[16], &mut rng);
        let v = Tensor::randn(&[16], &mut rng);
        assert!(tf.ode_step(&x, &v, 0.7, 0.0).max_abs_diff(&tf.denoise(&x, &v, 0.7)) < 1e-6);
    }

    #[test]
    fn churn_preserves_marginal_variance_and_t_identity() {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(6);
        let x = Tensor::randn(&[20_000], &mut rng);
        // Δ = 0: identity.
        let same = tf.churn(&x, 0.4, 0.4, &mut rng);
        assert_eq!(same, x);
        // Renoising keeps unit marginal variance.
        let churned = tf.churn(&x, 0.4, 0.9, &mut rng);
        assert!((churned.variance() - 1.0).abs() < 0.05);
    }
}
