//! EDM (Karras et al. 2022) parameterization and stochastic sampler.
//!
//! Used by the GenCast-analog baseline: GenCast trains with EDM-style σ-space
//! diffusion and samples with a stochastic second-order solver. Keeping the
//! real EDM machinery here lets the benchmark compare TrigFlow-vs-EDM
//! parameterizations on the same backbone — one of the implicit design
//! choices the paper leans on.

use aeris_tensor::{Rng, Tensor};

/// EDM hyperparameters (Karras defaults adapted to σ_data = 1 z-scored data).
#[derive(Clone, Copy, Debug)]
pub struct EdmConfig {
    pub sigma_min: f32,
    pub sigma_max: f32,
    pub sigma_data: f32,
    /// Karras schedule exponent ρ.
    pub rho: f32,
    /// Training noise prior: ln σ ~ N(p_mean, p_std²).
    pub p_mean: f32,
    pub p_std: f32,
}

impl Default for EdmConfig {
    fn default() -> Self {
        EdmConfig { sigma_min: 0.02, sigma_max: 88.0, sigma_data: 1.0, rho: 7.0, p_mean: -1.2, p_std: 1.2 }
    }
}

impl EdmConfig {
    /// Sample a training noise level from the log-normal prior.
    pub fn sample_sigma(&self, rng: &mut Rng) -> f32 {
        (self.p_mean + self.p_std * rng.normal()).exp().clamp(self.sigma_min, self.sigma_max)
    }

    /// Preconditioning coefficients `(c_skip, c_out, c_in, c_noise)` such that
    /// the denoiser is `D(x,σ) = c_skip·x + c_out·F(c_in·x, c_noise)`.
    pub fn precond(&self, sigma: f32) -> (f32, f32, f32, f32) {
        let sd2 = self.sigma_data * self.sigma_data;
        let s2 = sigma * sigma;
        let c_skip = sd2 / (s2 + sd2);
        let c_out = sigma * self.sigma_data / (s2 + sd2).sqrt();
        let c_in = 1.0 / (s2 + sd2).sqrt();
        let c_noise = 0.25 * sigma.ln();
        (c_skip, c_out, c_in, c_noise)
    }

    /// EDM loss weight λ(σ) = (σ² + σ_d²) / (σ·σ_d)².
    pub fn loss_weight(&self, sigma: f32) -> f32 {
        let sd = self.sigma_data;
        (sigma * sigma + sd * sd) / (sigma * sd).powi(2)
    }

    /// Noisy sample `x_σ = x₀ + σ z`.
    pub fn add_noise(&self, x0: &Tensor, z: &Tensor, sigma: f32) -> Tensor {
        x0.zip_map(z, |x, n| x + sigma * n)
    }

    /// Karras σ schedule from σ_max to σ_min, plus final 0.
    pub fn schedule(&self, n: usize) -> Vec<f32> {
        assert!(n >= 1);
        let inv_rho = 1.0 / self.rho;
        let a = self.sigma_max.powf(inv_rho);
        let b = self.sigma_min.powf(inv_rho);
        let mut out: Vec<f32> = (0..n)
            .map(|i| {
                let frac = if n == 1 { 0.0 } else { i as f32 / (n - 1) as f32 };
                (a + frac * (b - a)).powf(self.rho)
            })
            .collect();
        out.push(0.0);
        out
    }
}

/// Stochastic second-order (Heun) EDM sampler with churn.
#[derive(Clone, Copy, Debug)]
pub struct EdmSampler {
    pub cfg: EdmConfig,
    pub n_steps: usize,
    /// Churn amount S_churn/n per step (0 = deterministic Heun).
    pub churn: f32,
}

impl EdmSampler {
    /// Construct.
    pub fn new(cfg: EdmConfig, n_steps: usize, churn: f32) -> Self {
        EdmSampler { cfg, n_steps, churn }
    }

    /// Generate one sample. `denoise(x, σ)` is the full preconditioned
    /// denoiser `D(x, σ)` (an estimate of x₀).
    pub fn sample(
        &self,
        shape: &[usize],
        denoise: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
    ) -> Tensor {
        let sigmas = self.cfg.schedule(self.n_steps);
        let mut x = Tensor::randn(shape, rng).scale(sigmas[0]);
        for i in 0..sigmas.len() - 1 {
            let mut sigma = sigmas[i];
            let sigma_next = sigmas[i + 1];
            if self.churn > 0.0 {
                let gamma = self.churn.min(2.0f32.sqrt() - 1.0);
                let sigma_hat = sigma * (1.0 + gamma);
                let add = (sigma_hat * sigma_hat - sigma * sigma).max(0.0).sqrt();
                for v in x.data_mut() {
                    *v += add * rng.normal();
                }
                sigma = sigma_hat;
            }
            // dx/dσ = (x - D(x,σ)) / σ
            let d0 = denoise(&x, sigma);
            let slope: Tensor = x.zip_map(&d0, |xv, dv| (xv - dv) / sigma);
            let x_euler = x.zip_map(&slope, |xv, s| xv + (sigma_next - sigma) * s);
            if sigma_next > 0.0 {
                // Heun correction.
                let d1 = denoise(&x_euler, sigma_next);
                let slope1 = x_euler.zip_map(&d1, |xv, dv| (xv - dv) / sigma_next);
                x = x.zip_map(&slope.zip_map(&slope1, |a, b| 0.5 * (a + b)), |xv, s| {
                    xv + (sigma_next - sigma) * s
                });
            } else {
                x = x_euler;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precond_limits() {
        let cfg = EdmConfig::default();
        // σ → 0: skip → 1, out → 0 (identity at no noise).
        let (cs, co, _, _) = cfg.precond(1e-4);
        assert!(cs > 0.999);
        assert!(co < 1e-3);
        // σ large: skip → 0.
        let (cs, _, _, _) = cfg.precond(80.0);
        assert!(cs < 1e-3);
    }

    #[test]
    fn schedule_monotone_and_bounded() {
        let cfg = EdmConfig::default();
        let s = cfg.schedule(16);
        assert_eq!(s.len(), 17);
        assert!((s[0] - cfg.sigma_max).abs() < 1e-3);
        for w in s.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(*s.last().unwrap(), 0.0);
    }

    #[test]
    fn sigma_prior_within_bounds() {
        let cfg = EdmConfig::default();
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let s = cfg.sample_sigma(&mut rng);
            assert!(s >= cfg.sigma_min && s <= cfg.sigma_max);
        }
    }

    /// For Gaussian data N(μ, s²), the exact denoiser is
    /// D(x,σ) = (s²x + σ²μ)/(s² + σ²); the sampler must reproduce the target.
    #[test]
    fn sampler_matches_gaussian_statistics() {
        let (mu, s) = (1.5f32, 0.6f32);
        let mut denoise = move |x: &Tensor, sigma: f32| {
            x.map(|xv| (s * s * xv + sigma * sigma * mu) / (s * s + sigma * sigma))
        };
        let sampler = EdmSampler::new(EdmConfig::default(), 24, 0.0);
        let mut rng = Rng::seed_from(2);
        let out = sampler.sample(&[8000], &mut denoise, &mut rng);
        assert!((out.mean() - mu as f64).abs() < 0.05, "mean {}", out.mean());
        assert!((out.variance().sqrt() - s as f64).abs() < 0.05, "std {}", out.variance().sqrt());
    }

    #[test]
    fn stochastic_churn_still_matches_statistics() {
        let (mu, s) = (0.0f32, 1.0f32);
        let mut denoise = move |x: &Tensor, sigma: f32| {
            x.map(|xv| (s * s * xv + sigma * sigma * mu) / (s * s + sigma * sigma))
        };
        let sampler = EdmSampler::new(EdmConfig::default(), 24, 0.2);
        let mut rng = Rng::seed_from(3);
        let out = sampler.sample(&[8000], &mut denoise, &mut rng);
        assert!(out.mean().abs() < 0.06);
        assert!((out.variance() - 1.0).abs() < 0.1);
    }

    #[test]
    fn loss_weight_decreases_with_sigma_at_high_noise() {
        let cfg = EdmConfig::default();
        assert!(cfg.loss_weight(0.1) > cfg.loss_weight(1.0));
        assert!(cfg.loss_weight(1.0) > cfg.loss_weight(10.0));
    }
}
