//! Diffusion parameterizations and samplers for AERIS.
//!
//! - [`trigflow`]: the paper's training objective (§VI-B) — TrigFlow
//!   (Lu & Song 2024), which unifies EDM and flow matching under a spherical
//!   interpolation `x_t = cos(t)·x₀ + sin(t)·z` and a v-prediction target.
//! - [`sampler`]: the paper's inference procedure — a second-order
//!   DPMSolver++ 2S-style solver expressed in TrigFlow's angular domain with
//!   a log-uniform time schedule and a trigonometric Langevin-like churn.
//! - [`edm`]: Karras et al. EDM parameterization and stochastic Heun sampler,
//!   used by the GenCast-analog baseline.
//! - [`weights`]: the latitude- and pressure-weighted loss mask of Eq. 2.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod edm;
pub mod sampler;
pub mod trigflow;
pub mod weights;

pub use edm::{EdmConfig, EdmSampler};
pub use sampler::{Guidance, NoGuidance, SamplerConfig, SamplerError, TrigFlowSampler};
pub use trigflow::TrigFlow;
pub use weights::loss_weights;
