//! The paper's inference solver: DPMSolver++ 2S in TrigFlow's angular domain,
//! with a log-uniform time schedule matched to the training prior and a
//! trigonometric Langevin-like churn for sample quality and ensemble spread
//! (§VI-B "Inference").
//!
//! In TrigFlow the PFODE is a rotation: an Euler step with the predicted
//! velocity is replaced by the exact angular rotation
//! `x_{t'} = cos(t−t')·x_t − sin(t−t')·v̂`, and the second-order (2S) variant
//! re-evaluates the velocity at the angular midpoint. Ten steps are the
//! paper's default.

use crate::trigflow::TrigFlow;
use aeris_tensor::{Rng, Tensor};

/// Typed sampler-configuration error. Returned by [`SamplerConfig::validate`]
/// and [`TrigFlowSampler::try_new`] so malformed schedules are rejected at
/// construction (or request admission) instead of panicking mid-rollout.
#[derive(Clone, Debug, PartialEq)]
pub enum SamplerError {
    /// `n_steps == 0`: the σ schedule would be empty.
    EmptySchedule,
    /// The σ prior bounds do not satisfy `0 < σ_min < σ_max` (this includes
    /// NaN bounds), so the log-uniform time grid would not be monotone.
    NonMonotoneSigma { sigma_min: f32, sigma_max: f32 },
    /// Churn fraction outside `[0, 1)` (or NaN).
    BadChurn { churn: f32 },
}

impl std::fmt::Display for SamplerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerError::EmptySchedule => write!(f, "sampler schedule is empty (n_steps = 0)"),
            SamplerError::NonMonotoneSigma { sigma_min, sigma_max } => write!(
                f,
                "sigma schedule is not monotone: need 0 < sigma_min < sigma_max, \
                 got [{sigma_min}, {sigma_max}]"
            ),
            SamplerError::BadChurn { churn } => {
                write!(f, "churn fraction {churn} outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for SamplerError {}

/// Sampler hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Number of solver steps (paper: 10).
    pub n_steps: usize,
    /// Churn fraction γ ∈ [0, 1): each step first re-noises from `t_i` back
    /// toward `t_{i-1}` by `γ·(t_{i-1} − t_i)`. 0 disables churn.
    pub churn: f32,
    /// Use the second-order midpoint correction (2S); `false` gives the
    /// first-order angular-DDIM solver (ablation).
    pub second_order: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { n_steps: 10, churn: 0.1, second_order: true }
    }
}

impl SamplerConfig {
    /// Check that this config yields a well-formed, strictly decreasing time
    /// grid under the parameterization `tf`.
    pub fn validate(&self, tf: &TrigFlow) -> Result<(), SamplerError> {
        if self.n_steps == 0 {
            return Err(SamplerError::EmptySchedule);
        }
        // Explicit NaN checks: NaN bounds must fail, not slip through.
        if tf.sigma_min <= 0.0
            || tf.sigma_max <= tf.sigma_min
            || tf.sigma_min.is_nan()
            || tf.sigma_max.is_nan()
        {
            return Err(SamplerError::NonMonotoneSigma {
                sigma_min: tf.sigma_min,
                sigma_max: tf.sigma_max,
            });
        }
        if !(0.0..1.0).contains(&self.churn) {
            return Err(SamplerError::BadChurn { churn: self.churn });
        }
        Ok(())
    }
}

/// Inference-time guidance: a hook called with each denoised / data-prediction
/// estimate of the solver, returning an additive correction (or `None` for
/// "leave the estimate untouched").
///
/// The contract that keeps the determinism suites biting: an implementation
/// whose scheduled weight is exactly zero at `step` MUST return `None`, and
/// the sampler then executes a code path bitwise identical to the unguided
/// solver. Returning `Some(zeros)` is NOT equivalent — adding a zero tensor
/// can still flip `-0.0` to `+0.0` and, on the first-order path, swaps the
/// exact angular rotation for the algebraically-equal-but-differently-rounded
/// data-prediction update.
pub trait Guidance {
    /// Correction to the denoised estimate `x_hat` at solver step `step`
    /// (0-based over [`SamplerConfig::n_steps`]) and diffusion time `t`.
    /// For the 2S solver this is called twice per step — once for the
    /// half-step estimate, once for the midpoint estimate — with the same
    /// `step` index.
    fn nudge(&mut self, x_hat: &Tensor, step: usize, t: f32) -> Option<Tensor>;
}

/// The always-off guidance; [`TrigFlowSampler::sample`] routes through the
/// guided loop with this, so there is exactly one solver implementation.
pub struct NoGuidance;

impl Guidance for NoGuidance {
    fn nudge(&mut self, _x_hat: &Tensor, _step: usize, _t: f32) -> Option<Tensor> {
        None
    }
}

/// The TrigFlow sampler.
#[derive(Clone, Copy, Debug)]
pub struct TrigFlowSampler {
    pub tf: TrigFlow,
    pub cfg: SamplerConfig,
}

impl TrigFlowSampler {
    /// Construct with a parameterization and config.
    pub fn new(tf: TrigFlow, cfg: SamplerConfig) -> Self {
        TrigFlowSampler { tf, cfg }
    }

    /// Validating constructor: rejects configs whose time grid would be
    /// empty or non-monotone instead of panicking inside [`Self::schedule`].
    pub fn try_new(tf: TrigFlow, cfg: SamplerConfig) -> Result<Self, SamplerError> {
        cfg.validate(&tf)?;
        Ok(TrigFlowSampler { tf, cfg })
    }

    /// The time grid: σ log-uniform from σ_max down to σ_min (matching the
    /// training prior), mapped through `t = arctan(σ/σ_d)`, with a final 0.
    pub fn schedule(&self) -> Vec<f32> {
        let n = self.cfg.n_steps;
        assert!(n >= 1);
        let lmin = self.tf.sigma_min.ln();
        let lmax = self.tf.sigma_max.ln();
        let mut ts = Vec::with_capacity(n + 1);
        for i in 0..n {
            let frac = if n == 1 { 0.0 } else { i as f32 / (n - 1) as f32 };
            let sigma = (lmax + frac * (lmin - lmax)).exp();
            ts.push(self.tf.t_of_sigma(sigma));
        }
        ts.push(0.0);
        ts
    }

    /// Draw the pure-noise initial state at `t = π/2` (scaled by σ_d).
    pub fn initial_noise(&self, shape: &[usize], rng: &mut Rng) -> Tensor {
        Tensor::randn(shape, rng).scale(self.tf.sigma_d)
    }

    /// Generate one sample. `velocity(x, t)` evaluates the trained network
    /// `σ_d · F_θ(x/σ_d, t)`; `rng` drives the churn noise.
    pub fn sample(
        &self,
        shape: &[usize],
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
    ) -> Tensor {
        let mut x = self.initial_noise(shape, rng);
        self.sample_from(&mut x, velocity, rng);
        x
    }

    /// [`Self::sample`] with an observation-consistency [`Guidance`] term.
    pub fn sample_guided(
        &self,
        shape: &[usize],
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
        guidance: &mut dyn Guidance,
    ) -> Tensor {
        let mut x = self.initial_noise(shape, rng);
        self.sample_from_guided(&mut x, velocity, rng, guidance);
        x
    }

    /// Run the solver in place starting from the provided `x` at `t = π/2`
    /// (or at `schedule()[0]`, which is within 2e-3 rad of π/2 for the
    /// default σ_max = 500).
    pub fn sample_from(
        &self,
        x: &mut Tensor,
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
    ) {
        self.sample_from_guided(x, velocity, rng, &mut NoGuidance);
    }

    /// The guided solver loop. Each step forms the data-prediction estimate
    /// `D̂`, asks `guidance` for a nudge toward the observations, and — only
    /// when a nudge is present — continues the step from `D̂ + g` via the
    /// data-prediction update. With no nudge the step is the unguided solver,
    /// bit for bit: the first-order branch keeps the exact angular rotation
    /// (`ode_step`), which rounds differently from the algebraically equal
    /// `exp_step` form.
    pub fn sample_from_guided(
        &self,
        x: &mut Tensor,
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
        guidance: &mut dyn Guidance,
    ) {
        let ts = self.schedule();
        for i in 0..ts.len() - 1 {
            let mut t = ts[i];
            let t_next = ts[i + 1];
            // Churn: re-noise toward the previous (noisier) time.
            if self.cfg.churn > 0.0 && i > 0 {
                let t_hat = (t + self.cfg.churn * (ts[i - 1] - t)).min(std::f32::consts::FRAC_PI_2);
                *x = self.tf.churn(x, t, t_hat, rng);
                t = t_hat;
            }
            if self.cfg.second_order {
                *x = self.step_2s(x, t, t_next, velocity, i, guidance);
            } else {
                let v = velocity(x, t);
                let d = self.tf.denoise(x, &v, t);
                match guidance.nudge(&d, i, t) {
                    Some(g) => *x = exp_step(x, &d.add(&g), t, t_next),
                    None => *x = self.tf.ode_step(x, &v, t, t_next),
                }
            }
        }
    }

    /// Exponential-integrator step in data-prediction form. In TrigFlow
    /// variables (α = cos t, σ = sin t) the PFODE becomes `d(x/sin t)/dτ = D`
    /// with `τ = cot t` and denoised estimate `D = cos(t)x − sin(t)v`, giving
    /// the exact update
    /// `x(t') = (sin t'/sin t)·x + (sin(t − t')/sin t)·D̄`,
    /// where `D̄` is the data prediction held over the step. First order
    /// (DDIM) uses `D̄ = D(x_t, t)`; DPMSolver++ 2S evaluates `D̄` at the
    /// λ-space midpoint `cot t_mid = √(cot t · cot t')` (geometric mean).
    fn step_2s(
        &self,
        x: &Tensor,
        t: f32,
        t_next: f32,
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        step: usize,
        guidance: &mut dyn Guidance,
    ) -> Tensor {
        let v_s = velocity(x, t);
        let mut d_s = self.tf.denoise(x, &v_s, t);
        if let Some(g) = guidance.nudge(&d_s, step, t) {
            d_s = d_s.add(&g);
        }
        // λ-space midpoint; for the final step to t' = 0 (λ → ∞) fall back to
        // the t-space midpoint.
        let t_mid = if t_next > 0.0 {
            let cot_mid = ((t.tan().recip()) * (t_next.tan().recip())).sqrt();
            cot_mid.recip().atan()
        } else {
            0.5 * t
        };
        // First-order hop to the midpoint.
        let u = exp_step(x, &d_s, t, t_mid);
        let v_mid = velocity(&u, t_mid);
        let mut d_mid = self.tf.denoise(&u, &v_mid, t_mid);
        if let Some(g) = guidance.nudge(&d_mid, step, t_mid) {
            d_mid = d_mid.add(&g);
        }
        exp_step(x, &d_mid, t, t_next)
    }
}

/// The exact data-prediction update
/// `x(t') = (sin t'/sin t)·x + (sin(t−t')/sin t)·D` (see [`TrigFlowSampler::step_2s`]).
/// At `t' = 0` this returns `D` itself.
fn exp_step(x: &Tensor, d: &Tensor, t: f32, t_next: f32) -> Tensor {
    let s = t.sin();
    let a = t_next.sin() / s;
    let b = (t - t_next).sin() / s;
    x.zip_map(d, |xv, dv| a * xv + b * dv)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For a Gaussian data distribution N(μ, s²I) the exact TrigFlow velocity
    /// field is available in closed form, so the solver can be validated
    /// end-to-end against known statistics. With x_t = cos(t)x0 + sin(t)z:
    /// E[v | x_t] = cos(t)E[z|x_t] − sin(t)E[x0|x_t], where the posterior is
    /// Gaussian with var_t = cos²s² + sin².
    fn gaussian_velocity(mu: f32, s: f32) -> impl FnMut(&Tensor, f32) -> Tensor {
        move |x: &Tensor, t: f32| {
            let (c, si) = (t.cos(), t.sin());
            let var_t = c * c * s * s + si * si;
            x.map(|xt| {
                let e_x0 = (c * s * s * (xt - c * mu) / var_t) + mu;
                let e_z = si * (xt - c * mu) / var_t;
                c * e_z - si * e_x0
            })
        }
    }

    #[test]
    fn schedule_is_monotone_decreasing_ending_at_zero() {
        let s = TrigFlowSampler::new(TrigFlow::default(), SamplerConfig::default());
        let ts = s.schedule();
        assert_eq!(ts.len(), 11);
        for w in ts.windows(2) {
            assert!(w[1] < w[0], "schedule must decrease: {:?}", ts);
        }
        assert_eq!(*ts.last().unwrap(), 0.0);
        assert!(ts[0] > 1.56, "starts near pi/2");
    }

    #[test]
    fn samples_match_gaussian_target_statistics() {
        let (mu, s) = (2.0f32, 0.5f32);
        let sampler = TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 24, churn: 0.0, second_order: true },
        );
        let mut vel = gaussian_velocity(mu, s);
        let mut rng = Rng::seed_from(7);
        let out = sampler.sample(&[8000], &mut vel, &mut rng);
        let mean = out.mean();
        let std = out.variance().sqrt();
        assert!((mean - mu as f64).abs() < 0.05, "mean {mean}");
        assert!((std - s as f64).abs() < 0.05, "std {std}");
    }

    #[test]
    fn second_order_beats_first_order_at_few_steps() {
        let (mu, s) = (-1.0f32, 0.3f32);
        let run = |second_order: bool, n_steps: usize| {
            let sampler = TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps, churn: 0.0, second_order },
            );
            let mut vel = gaussian_velocity(mu, s);
            let mut rng = Rng::seed_from(8);
            let out = sampler.sample(&[4000], &mut vel, &mut rng);
            (out.mean() - mu as f64).abs()
        };
        let err2 = run(true, 6);
        let err1 = run(false, 6);
        assert!(err2 < err1 + 0.02, "2S err {err2} vs 1S err {err1}");
    }

    #[test]
    fn churn_increases_ensemble_spread_without_breaking_stats() {
        let (mu, s) = (0.0f32, 1.0f32);
        let run = |churn: f32, seed: u64| {
            let sampler = TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 12, churn, second_order: true },
            );
            let mut vel = gaussian_velocity(mu, s);
            let mut rng = Rng::seed_from(seed);
            sampler.sample(&[4000], &mut vel, &mut rng)
        };
        let a = run(0.3, 9);
        assert!((a.mean()).abs() < 0.08);
        // Few-step solvers slightly contract variance (the same effect that
        // makes the paper's ensembles under-dispersive, SSR < 1).
        assert!((0.75..1.1).contains(&a.variance()), "var {}", a.variance());
        // Distinct seeds produce distinct members.
        let b = run(0.3, 10);
        assert!(a.max_abs_diff(&b) > 0.1);
    }

    #[test]
    fn deterministic_given_seed_without_churn_noise_dependence() {
        let sampler = TrigFlowSampler::new(TrigFlow::default(), SamplerConfig::default());
        let mut vel_a = gaussian_velocity(1.0, 0.4);
        let mut vel_b = gaussian_velocity(1.0, 0.4);
        let mut r1 = Rng::seed_from(11);
        let mut r2 = Rng::seed_from(11);
        let a = sampler.sample(&[100], &mut vel_a, &mut r1);
        let b = sampler.sample(&[100], &mut vel_b, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        let ok = SamplerConfig::default();
        assert_eq!(ok.validate(&TrigFlow::default()), Ok(()));
        assert!(TrigFlowSampler::try_new(TrigFlow::default(), ok).is_ok());

        let empty = SamplerConfig { n_steps: 0, ..ok };
        assert_eq!(empty.validate(&TrigFlow::default()), Err(SamplerError::EmptySchedule));

        let inverted = TrigFlow { sigma_min: 10.0, sigma_max: 0.5, ..TrigFlow::default() };
        assert!(matches!(
            ok.validate(&inverted),
            Err(SamplerError::NonMonotoneSigma { .. })
        ));
        let degenerate = TrigFlow { sigma_min: 2.0, sigma_max: 2.0, ..TrigFlow::default() };
        assert!(ok.validate(&degenerate).is_err(), "equal bounds give an empty log range");
        let nan = TrigFlow { sigma_min: f32::NAN, ..TrigFlow::default() };
        assert!(ok.validate(&nan).is_err(), "NaN bounds must not pass");
        let nonpos = TrigFlow { sigma_min: 0.0, ..TrigFlow::default() };
        assert!(ok.validate(&nonpos).is_err(), "sigma_min = 0 breaks ln()");

        for churn in [-0.1f32, 1.0, 1.5, f32::NAN] {
            let bad = SamplerConfig { churn, ..ok };
            assert!(
                matches!(bad.validate(&TrigFlow::default()), Err(SamplerError::BadChurn { .. })),
                "churn {churn} accepted"
            );
            assert!(TrigFlowSampler::try_new(TrigFlow::default(), bad).is_err());
        }

        // Errors format without panicking and carry the offending values.
        let msg = SamplerError::NonMonotoneSigma { sigma_min: 3.0, sigma_max: 1.0 }.to_string();
        assert!(msg.contains('3') && msg.contains('1'), "{msg}");
    }

    /// A guidance that never fires must leave both solver branches bitwise
    /// unchanged — the core contract the assimilation stack builds on.
    struct NeverFires {
        calls: usize,
    }
    impl Guidance for NeverFires {
        fn nudge(&mut self, _x_hat: &Tensor, _step: usize, _t: f32) -> Option<Tensor> {
            self.calls += 1;
            None
        }
    }

    #[test]
    fn inactive_guidance_is_bitwise_identical_to_plain_sampler() {
        for second_order in [false, true] {
            let sampler = TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 6, churn: 0.2, second_order },
            );
            let mut vel_a = gaussian_velocity(0.5, 0.7);
            let mut vel_b = gaussian_velocity(0.5, 0.7);
            let plain = sampler.sample(&[64], &mut vel_a, &mut Rng::seed_from(21));
            let mut never = NeverFires { calls: 0 };
            let guided =
                sampler.sample_guided(&[64], &mut vel_b, &mut Rng::seed_from(21), &mut never);
            assert_eq!(plain, guided, "second_order={second_order}");
            // The hook was consulted at every data-prediction estimate.
            let expected = if second_order { 12 } else { 6 };
            assert_eq!(never.calls, expected);
        }
    }

    /// A constant pull toward a target value moves the sample mean toward it.
    struct PullToward {
        target: f32,
        weight: f32,
    }
    impl Guidance for PullToward {
        fn nudge(&mut self, x_hat: &Tensor, _step: usize, _t: f32) -> Option<Tensor> {
            Some(x_hat.map(|v| self.weight * (self.target - v)))
        }
    }

    #[test]
    fn active_guidance_pulls_samples_toward_target() {
        let (mu, s) = (0.0f32, 0.5f32);
        let sampler = TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 12, churn: 0.0, second_order: true },
        );
        let mut vel = gaussian_velocity(mu, s);
        let mut pull = PullToward { target: 3.0, weight: 0.3 };
        let out =
            sampler.sample_guided(&[4000], &mut vel, &mut Rng::seed_from(31), &mut pull);
        let mean = out.mean();
        assert!(mean > 1.0, "guidance should drag mean toward 3.0, got {mean}");
    }
}
