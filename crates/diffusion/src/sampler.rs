//! The paper's inference solver: DPMSolver++ 2S in TrigFlow's angular domain,
//! with a log-uniform time schedule matched to the training prior and a
//! trigonometric Langevin-like churn for sample quality and ensemble spread
//! (§VI-B "Inference").
//!
//! In TrigFlow the PFODE is a rotation: an Euler step with the predicted
//! velocity is replaced by the exact angular rotation
//! `x_{t'} = cos(t−t')·x_t − sin(t−t')·v̂`, and the second-order (2S) variant
//! re-evaluates the velocity at the angular midpoint. Ten steps are the
//! paper's default.

use crate::trigflow::TrigFlow;
use aeris_tensor::{Rng, Tensor};

/// Sampler hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Number of solver steps (paper: 10).
    pub n_steps: usize,
    /// Churn fraction γ ∈ [0, 1): each step first re-noises from `t_i` back
    /// toward `t_{i-1}` by `γ·(t_{i-1} − t_i)`. 0 disables churn.
    pub churn: f32,
    /// Use the second-order midpoint correction (2S); `false` gives the
    /// first-order angular-DDIM solver (ablation).
    pub second_order: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig { n_steps: 10, churn: 0.1, second_order: true }
    }
}

/// The TrigFlow sampler.
#[derive(Clone, Copy, Debug)]
pub struct TrigFlowSampler {
    pub tf: TrigFlow,
    pub cfg: SamplerConfig,
}

impl TrigFlowSampler {
    /// Construct with a parameterization and config.
    pub fn new(tf: TrigFlow, cfg: SamplerConfig) -> Self {
        TrigFlowSampler { tf, cfg }
    }

    /// The time grid: σ log-uniform from σ_max down to σ_min (matching the
    /// training prior), mapped through `t = arctan(σ/σ_d)`, with a final 0.
    pub fn schedule(&self) -> Vec<f32> {
        let n = self.cfg.n_steps;
        assert!(n >= 1);
        let lmin = self.tf.sigma_min.ln();
        let lmax = self.tf.sigma_max.ln();
        let mut ts = Vec::with_capacity(n + 1);
        for i in 0..n {
            let frac = if n == 1 { 0.0 } else { i as f32 / (n - 1) as f32 };
            let sigma = (lmax + frac * (lmin - lmax)).exp();
            ts.push(self.tf.t_of_sigma(sigma));
        }
        ts.push(0.0);
        ts
    }

    /// Draw the pure-noise initial state at `t = π/2` (scaled by σ_d).
    pub fn initial_noise(&self, shape: &[usize], rng: &mut Rng) -> Tensor {
        Tensor::randn(shape, rng).scale(self.tf.sigma_d)
    }

    /// Generate one sample. `velocity(x, t)` evaluates the trained network
    /// `σ_d · F_θ(x/σ_d, t)`; `rng` drives the churn noise.
    pub fn sample(
        &self,
        shape: &[usize],
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
    ) -> Tensor {
        let mut x = self.initial_noise(shape, rng);
        self.sample_from(&mut x, velocity, rng);
        x
    }

    /// Run the solver in place starting from the provided `x` at `t = π/2`
    /// (or at `schedule()[0]`, which is within 2e-3 rad of π/2 for the
    /// default σ_max = 500).
    pub fn sample_from(
        &self,
        x: &mut Tensor,
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
        rng: &mut Rng,
    ) {
        let ts = self.schedule();
        for i in 0..ts.len() - 1 {
            let mut t = ts[i];
            let t_next = ts[i + 1];
            // Churn: re-noise toward the previous (noisier) time.
            if self.cfg.churn > 0.0 && i > 0 {
                let t_hat = (t + self.cfg.churn * (ts[i - 1] - t)).min(std::f32::consts::FRAC_PI_2);
                *x = self.tf.churn(x, t, t_hat, rng);
                t = t_hat;
            }
            if self.cfg.second_order {
                *x = self.step_2s(x, t, t_next, velocity);
            } else {
                let v = velocity(x, t);
                *x = self.tf.ode_step(x, &v, t, t_next);
            }
        }
    }

    /// Exponential-integrator step in data-prediction form. In TrigFlow
    /// variables (α = cos t, σ = sin t) the PFODE becomes `d(x/sin t)/dτ = D`
    /// with `τ = cot t` and denoised estimate `D = cos(t)x − sin(t)v`, giving
    /// the exact update
    /// `x(t') = (sin t'/sin t)·x + (sin(t − t')/sin t)·D̄`,
    /// where `D̄` is the data prediction held over the step. First order
    /// (DDIM) uses `D̄ = D(x_t, t)`; DPMSolver++ 2S evaluates `D̄` at the
    /// λ-space midpoint `cot t_mid = √(cot t · cot t')` (geometric mean).
    fn step_2s(
        &self,
        x: &Tensor,
        t: f32,
        t_next: f32,
        velocity: &mut dyn FnMut(&Tensor, f32) -> Tensor,
    ) -> Tensor {
        let v_s = velocity(x, t);
        let d_s = self.tf.denoise(x, &v_s, t);
        // λ-space midpoint; for the final step to t' = 0 (λ → ∞) fall back to
        // the t-space midpoint.
        let t_mid = if t_next > 0.0 {
            let cot_mid = ((t.tan().recip()) * (t_next.tan().recip())).sqrt();
            cot_mid.recip().atan()
        } else {
            0.5 * t
        };
        // First-order hop to the midpoint.
        let u = exp_step(x, &d_s, t, t_mid);
        let v_mid = velocity(&u, t_mid);
        let d_mid = self.tf.denoise(&u, &v_mid, t_mid);
        exp_step(x, &d_mid, t, t_next)
    }
}

/// The exact data-prediction update
/// `x(t') = (sin t'/sin t)·x + (sin(t−t')/sin t)·D` (see [`TrigFlowSampler::step_2s`]).
/// At `t' = 0` this returns `D` itself.
fn exp_step(x: &Tensor, d: &Tensor, t: f32, t_next: f32) -> Tensor {
    let s = t.sin();
    let a = t_next.sin() / s;
    let b = (t - t_next).sin() / s;
    x.zip_map(d, |xv, dv| a * xv + b * dv)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For a Gaussian data distribution N(μ, s²I) the exact TrigFlow velocity
    /// field is available in closed form, so the solver can be validated
    /// end-to-end against known statistics. With x_t = cos(t)x0 + sin(t)z:
    /// E[v | x_t] = cos(t)E[z|x_t] − sin(t)E[x0|x_t], where the posterior is
    /// Gaussian with var_t = cos²s² + sin².
    fn gaussian_velocity(mu: f32, s: f32) -> impl FnMut(&Tensor, f32) -> Tensor {
        move |x: &Tensor, t: f32| {
            let (c, si) = (t.cos(), t.sin());
            let var_t = c * c * s * s + si * si;
            x.map(|xt| {
                let e_x0 = (c * s * s * (xt - c * mu) / var_t) + mu;
                let e_z = si * (xt - c * mu) / var_t;
                c * e_z - si * e_x0
            })
        }
    }

    #[test]
    fn schedule_is_monotone_decreasing_ending_at_zero() {
        let s = TrigFlowSampler::new(TrigFlow::default(), SamplerConfig::default());
        let ts = s.schedule();
        assert_eq!(ts.len(), 11);
        for w in ts.windows(2) {
            assert!(w[1] < w[0], "schedule must decrease: {:?}", ts);
        }
        assert_eq!(*ts.last().unwrap(), 0.0);
        assert!(ts[0] > 1.56, "starts near pi/2");
    }

    #[test]
    fn samples_match_gaussian_target_statistics() {
        let (mu, s) = (2.0f32, 0.5f32);
        let sampler = TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 24, churn: 0.0, second_order: true },
        );
        let mut vel = gaussian_velocity(mu, s);
        let mut rng = Rng::seed_from(7);
        let out = sampler.sample(&[8000], &mut vel, &mut rng);
        let mean = out.mean();
        let std = out.variance().sqrt();
        assert!((mean - mu as f64).abs() < 0.05, "mean {mean}");
        assert!((std - s as f64).abs() < 0.05, "std {std}");
    }

    #[test]
    fn second_order_beats_first_order_at_few_steps() {
        let (mu, s) = (-1.0f32, 0.3f32);
        let run = |second_order: bool, n_steps: usize| {
            let sampler = TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps, churn: 0.0, second_order },
            );
            let mut vel = gaussian_velocity(mu, s);
            let mut rng = Rng::seed_from(8);
            let out = sampler.sample(&[4000], &mut vel, &mut rng);
            (out.mean() - mu as f64).abs()
        };
        let err2 = run(true, 6);
        let err1 = run(false, 6);
        assert!(err2 < err1 + 0.02, "2S err {err2} vs 1S err {err1}");
    }

    #[test]
    fn churn_increases_ensemble_spread_without_breaking_stats() {
        let (mu, s) = (0.0f32, 1.0f32);
        let run = |churn: f32, seed: u64| {
            let sampler = TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 12, churn, second_order: true },
            );
            let mut vel = gaussian_velocity(mu, s);
            let mut rng = Rng::seed_from(seed);
            sampler.sample(&[4000], &mut vel, &mut rng)
        };
        let a = run(0.3, 9);
        assert!((a.mean()).abs() < 0.08);
        // Few-step solvers slightly contract variance (the same effect that
        // makes the paper's ensembles under-dispersive, SSR < 1).
        assert!((0.75..1.1).contains(&a.variance()), "var {}", a.variance());
        // Distinct seeds produce distinct members.
        let b = run(0.3, 10);
        assert!(a.max_abs_diff(&b) > 0.1);
    }

    #[test]
    fn deterministic_given_seed_without_churn_noise_dependence() {
        let sampler = TrigFlowSampler::new(TrigFlow::default(), SamplerConfig::default());
        let mut vel_a = gaussian_velocity(1.0, 0.4);
        let mut vel_b = gaussian_velocity(1.0, 0.4);
        let mut r1 = Rng::seed_from(11);
        let mut r2 = Rng::seed_from(11);
        let a = sampler.sample(&[100], &mut vel_a, &mut r1);
        let b = sampler.sample(&[100], &mut vel_b, &mut r2);
        assert_eq!(a, b);
    }
}
