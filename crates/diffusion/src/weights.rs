//! The physically weighted loss mask of Eq. 2: per-token latitude weights
//! α(s) times per-channel variable/pressure weights κ(v), normalized so the
//! weighted objective has the same overall scale as the unweighted one.

use aeris_tensor::Tensor;

/// Build the `[tokens, channels]` loss-weight tensor from per-token latitude
/// weights and per-channel κ values. The product is renormalized to mean 1.
pub fn loss_weights(token_lat_weights: &[f32], kappa: &[f32]) -> Tensor {
    let tokens = token_lat_weights.len();
    let channels = kappa.len();
    assert!(tokens > 0 && channels > 0);
    let mut out = Tensor::zeros(&[tokens, channels]);
    let mut sum = 0.0f64;
    for (r, &a) in token_lat_weights.iter().enumerate() {
        let row = out.row_mut(r);
        for (j, &k) in kappa.iter().enumerate() {
            let w = a * k;
            row[j] = w;
            sum += w as f64;
        }
    }
    let norm = (tokens * channels) as f64 / sum;
    out.scale_inplace(norm as f32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_one() {
        let lat = vec![0.5, 1.0, 1.5];
        let kappa = vec![2.0, 0.5];
        let w = loss_weights(&lat, &kappa);
        assert_eq!(w.shape(), &[3, 2]);
        assert!((w.mean() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn proportionality_structure() {
        let lat = vec![1.0, 2.0];
        let kappa = vec![1.0, 3.0];
        let w = loss_weights(&lat, &kappa);
        // ratios preserved: w[1][j]/w[0][j] = 2, w[i][1]/w[i][0] = 3.
        assert!((w.at(&[1, 0]) / w.at(&[0, 0]) - 2.0).abs() < 1e-6);
        assert!((w.at(&[0, 1]) / w.at(&[0, 0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_inputs_give_uniform_weights() {
        let w = loss_weights(&[1.0; 10], &[1.0; 4]);
        for v in w.data() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }
}
