//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. residual (Δx) vs full-field prediction — rollout stability,
//! 2. log-uniform vs uniform diffusion-time prior — tail coverage / val loss,
//! 3. churn on vs off — ensemble spread,
//!
//! (Window-shift and solver-order ablations live in the criterion benches.)

use aeris_bench::*;
use aeris_core::{prepare_samples, AerisConfig, AerisModel, Forecaster, TrainSample, Trainer, TrainerConfig};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::NormStats;
use aeris_nn::LrSchedule;
use aeris_tensor::{Rng, Tensor};

fn main() {
    let scale = RunScale::from_env();
    let seed = 303;
    header("Ablations");
    let ds = build_dataset(seed, standard_scenario(), 360);
    let vars = ds.vars.clone();

    // ---- 1. residual vs full-field targets ----
    header("1. residual vs full-field prediction (rollout drift)");
    // Residual model: the standard pipeline.
    let aeris = train_aeris(&ds, &scale, seed);
    // Full-field model: targets are the standardized *next state* itself; at
    // inference the sampled field replaces (not increments) the state.
    let full = train_full_field(&ds, &scale, seed);
    let (_, _, test) = ds.split_ranges();
    let i0 = test.start + 1;
    let forc = forcing_provider(seed, ds.time(i0));
    let steps = 28usize; // 7 days
    let mut rng = Rng::seed_from(1);
    let res_states = aeris.rollout(ds.state(i0), &forc, steps, &mut rng);
    let mut rng = Rng::seed_from(1);
    let full_states = full_field_rollout(&full, &ds.stats, ds.state(i0), &forc, steps, &mut rng);
    let lat_w = ds.grid.token_lat_weights();
    let t2m = vars.index_of("t2m").unwrap();
    println!("{:>6}{:>16}{:>16}", "day", "residual RMSE", "full-field RMSE");
    for day in [1usize, 3, 5, 7] {
        let k = day * 4 - 1;
        let truth = ds.state(i0 + k + 1);
        let r1 = aeris_evaluation::rmse(&res_states[k], truth, &lat_w, t2m);
        let r2 = aeris_evaluation::rmse(&full_states[k], truth, &lat_w, t2m);
        println!("{day:>6}{r1:>16.2}{r2:>16.2}");
    }
    println!("Expected: full-field prediction loses the autoregressive anchor and");
    println!("drifts/blurs faster — the reason the paper predicts residuals.");

    // ---- 2. noise prior ----
    header("2. log-uniform vs uniform diffusion-time prior (val diffusion loss)");
    for (label, uniform) in [("log-uniform (paper)", false), ("uniform t", true)] {
        let f = train_with_prior(&ds, &scale, seed ^ 0xF00, uniform);
        let loss = val_diffusion_loss(&ds, &f);
        println!("  {label:<22} val loss {loss:.4}");
    }
    println!("Expected: the log-uniform prior covers the heavy-tailed noise range");
    println!("the solver actually visits, giving a lower matched-schedule loss.");

    // ---- 3. churn on/off ----
    header("3. churn on vs off (ensemble spread at day 3)");
    for churn in [0.1f32, 0.0] {
        let mut f = train_aeris(&ds, &scale, seed ^ 0xC0);
        f.sampler.cfg.churn = churn;
        let ens = f.ensemble(ds.state(i0), &forc, 12, scale.members, 5);
        let members: Vec<&Tensor> = ens.at_step(11).expect("step within forecast horizon");
        let spread = aeris_evaluation::spread(&members, &lat_w, t2m);
        println!("  churn {churn:>4.1}: T2m ensemble spread {spread:.3} K");
    }
    println!("Expected: churn adds calibrated stochasticity → larger spread.");
}

/// Train a model whose diffusion target is the standardized next state.
fn train_full_field(ds: &aeris_earthsim::Dataset, scale: &RunScale, seed: u64) -> Forecaster {
    let cfg = AerisConfig { seed: seed ^ 0xFF, ..toy_model_config(&ds.vars) };
    let mut model = AerisModel::new(cfg);
    let tcfg = trainer_cfg(scale);
    let mut trainer = Trainer::new(&model, ds.grid, &ds.vars.kappa(), tcfg);
    let samples: Vec<TrainSample> = ds
        .split_ranges()
        .0
        .map(|i| {
            let pair = ds.pair(i);
            TrainSample {
                x_prev: ds.stats.standardize(&pair.prev),
                // Full-field target (standardized next state).
                residual: ds.stats.standardize(&pair.next),
                forcings: pair.forcings,
            }
        })
        .collect();
    trainer.fit(&mut model, &samples, scale.train_images);
    Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: scale.sampler_steps, churn: 0.1, second_order: true },
        ),
    }
}

/// Rollout for the full-field model: the sample *is* the next standardized
/// state.
fn full_field_rollout(
    f: &Forecaster,
    stats: &NormStats,
    x0: &Tensor,
    forc: &dyn Fn(usize) -> Tensor,
    steps: usize,
    rng: &mut Rng,
) -> Vec<Tensor> {
    let mut states = Vec::with_capacity(steps);
    let mut x = x0.clone();
    for k in 0..steps {
        let prev_std = stats.standardize(&x);
        let shape = prev_std.shape().to_vec();
        let fo = forc(k);
        let mut velocity = |x_t: &Tensor, t: f32| f.model.velocity(x_t, &prev_std, &fo, t);
        let next_std = f.sampler.sample(&shape, &mut velocity, rng);
        x = stats.unstandardize(&next_std);
        states.push(x.clone());
    }
    states
}

fn trainer_cfg(scale: &RunScale) -> TrainerConfig {
    TrainerConfig {
        schedule: LrSchedule {
            peak: 2e-3,
            warmup: scale.train_images / 10,
            decay: scale.train_images / 5,
            total: scale.train_images,
        },
        batch: 2,
        ema_halflife: scale.train_images as f64 / 8.0,
        ..TrainerConfig::paper_scaled(scale.train_images, 2)
    }
}

/// Train with either the paper's log-uniform prior or a uniform-t prior.
fn train_with_prior(
    ds: &aeris_earthsim::Dataset,
    scale: &RunScale,
    seed: u64,
    uniform: bool,
) -> Forecaster {
    let cfg = AerisConfig { seed, ..toy_model_config(&ds.vars) };
    let mut model = AerisModel::new(cfg);
    let mut trainer = Trainer::new(&model, ds.grid, &ds.vars.kappa(), trainer_cfg(scale));
    if uniform {
        // A degenerate prior: σ_min ≈ σ_max in log space would collapse the
        // range; instead emulate "uniform in t" by widening to a prior whose
        // pushforward is ~uniform: sample t directly. TrigFlow sample_t is
        // driven by (σ_min, σ_max); setting them to tan of the endpoints and
        // using a linear map gives uniform t.
        trainer.tf = TrigFlow { sigma_d: 1.0, sigma_min: (0.05f32).tan(), sigma_max: (1.52f32).tan() };
        // NOTE: log-uniform in σ over this range is close to uniform in t at
        // mid-range but undersamples the extremes vs the paper's prior.
    }
    let samples = prepare_samples(ds, ds.split_ranges().0);
    trainer.fit(&mut model, &samples, scale.train_images);
    Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: scale.sampler_steps, churn: 0.1, second_order: true },
        ),
    }
}

/// Validation diffusion loss at fixed (t, z), using the paper's schedule.
fn val_diffusion_loss(ds: &aeris_earthsim::Dataset, f: &Forecaster) -> f64 {
    let tf = TrigFlow::default();
    let sampler = TrigFlowSampler::new(tf, SamplerConfig { n_steps: 6, churn: 0.0, second_order: true });
    let ts = sampler.schedule();
    let mut rng = Rng::seed_from(4242);
    let (_, val, _) = ds.split_ranges();
    let mut total = 0.0f64;
    let mut n = 0usize;
    for i in val.clone().take(4) {
        let pair = ds.pair(i);
        let prev = ds.stats.standardize(&pair.prev);
        let x0 = ds.res_stats.standardize(&pair.next.sub(&pair.prev));
        for &t in ts.iter().take(ts.len() - 1) {
            let z = Tensor::randn(x0.shape(), &mut rng);
            let x_t = tf.interpolate(&x0, &z, t);
            let target = tf.velocity_target(&x0, &z, t);
            let v = f.model.velocity(&x_t, &prev, &pair.forcings, t);
            let d = v.sub(&target);
            total += d.dot(&d) / d.len() as f64;
            n += 1;
        }
    }
    total / n as f64
}
