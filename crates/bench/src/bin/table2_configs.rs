//! Regenerates Table II: AERIS model configurations, with parameter counts
//! derived from the analytical model (blocks = 2·(PP−2), see DESIGN.md).

use aeris_perfmodel::{params_count, PAPER_CONFIGS};

fn main() {
    println!("Table II: AERIS model configurations (derived params vs labels)");
    println!(
        "{:<8}{:>8}{:>12}{:>6}{:>6}{:>7}{:>8}{:>8}{:>8}{:>10}{:>12}",
        "Params", "WP", "WP(large)", "PP", "GAS", "Dim", "Heads", "FFN", "Blocks", "Nodes/inst", "Derived(B)"
    );
    for c in &PAPER_CONFIGS {
        println!(
            "{:<8}{:>8}{:>12}{:>6}{:>6}{:>7}{:>8}{:>8}{:>8}{:>10}{:>12.2}",
            c.name,
            format!("{}x{}", c.wp_base.0, c.wp_base.1),
            format!("{}x{}", c.wp_large.0, c.wp_large.1),
            c.pp,
            c.gas,
            c.dim,
            c.heads,
            c.ffn,
            c.blocks,
            c.nodes_per_instance(),
            params_count(c) / 1e9,
        );
    }
    println!("\nNote: Table II prints WP=16(4x4) for the 40B row but 720 nodes;");
    println!("the text and Table III use WP=36 (6x6): 36 x 20 = 720 (see DESIGN.md).");
}
