//! Regenerates Table III: sustained and peak training throughput from the
//! analytical performance model, against the paper's published numbers.

use aeris_perfmodel::throughput::predict_table3;
use aeris_perfmodel::{EffModel, AURORA, LUMI, PAPER_CONFIGS};

fn main() {
    let eff = EffModel::default();
    let paper = [
        ("1.3B", 47.6, 21.6, 1.1, 1.2),
        ("13B", 63.3, 28.8, 5.8, 6.4),
        ("40B", 84.4, 38.4, 10.21, 11.21),
        ("80B", 52.8, 24.0, 5.27, 6.1),
        ("26B(L)", 66.5, 34.8, 0.54, 0.62),
    ];
    println!("Table III: sustained & peak throughput — analytical model vs paper");
    println!(
        "{:<8}{:>7}{:>5}{:>6} | {:>8}{:>8} | {:>8}{:>8} | {:>9}{:>9} | {:>9}{:>9}",
        "Config", "Nodes", "DP", "GBS", "TF/T", "paper", "MFU%", "paper", "EF(S)", "paper", "EF(P)", "paper"
    );
    for (c, (_, tft_p, mfu_p, efs_p, efp_p)) in PAPER_CONFIGS.iter().zip(paper) {
        let machine = if c.name.ends_with("(L)") { &LUMI } else { &AURORA };
        let p = predict_table3(c, machine, &eff);
        println!(
            "{:<8}{:>7}{:>5}{:>6} | {:>8.1}{:>8.1} | {:>8.1}{:>8.1} | {:>9.2}{:>9.2} | {:>9.2}{:>9.2}",
            c.name,
            p.nodes,
            p.dp,
            p.gbs,
            p.tf_per_tile,
            tft_p,
            p.mfu * 100.0,
            mfu_p,
            p.sustained_flops / 1e18,
            efs_p,
            p.peak_flops / 1e18,
            efp_p,
        );
    }
    let p40 = predict_table3(&PAPER_CONFIGS[2], &AURORA, &eff);
    println!(
        "\n40B at full scale: {:.0} samples/s (paper: ~50); 3M samples in {:.1} h (paper: ~15 h)",
        p40.samples_per_s,
        3.0e6 / p40.samples_per_s / 3600.0
    );
}
