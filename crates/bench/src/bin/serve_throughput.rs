//! Serving-engine throughput: requests/s and latency percentiles as a
//! function of micro-batch size and cache-hit rate, per-request-type
//! latency under a mixed forecast/nowcast load, plus the un-standardize
//! kernel comparison (scalar indexing vs row-slice sweep) that motivates the
//! row-major hot loop in `Forecaster::forecast_step`.
//!
//! Emits `BENCH_serve.json` with the throughput sweeps and the per-kind
//! (forecast vs nowcast) p50/p99, read off the engine's own per-kind
//! latency series (`serve_latency_ms` / `serve_nowcast_latency_ms`).
//!
//! Run: `cargo run --release -p aeris-bench --bin serve_throughput`
//! (`AERIS_FULL=1` for more requests per configuration).

use aeris_assim::{GuidanceSchedule, ObsOperator, ObservationSet};
use aeris_bench::{fmt_row, header, toy_model_config, toy_vars};
use aeris_core::{AerisModel, Forecaster};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::{Grid, NormStats};
use aeris_serve::{ForecastRequest, Forcings, NowcastRequest, ServeConfig, ServeEngine};
use aeris_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn forecaster() -> Arc<Forecaster> {
    // Untrained weights: serving cost is architecture + sampler dependent,
    // not weight dependent, so skip training and measure the machinery.
    let cfg = toy_model_config(&toy_vars());
    let channels = cfg.channels;
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Arc::new(Forecaster {
        model: AerisModel::new(cfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.1, second_order: false },
        ),
    })
}

struct LoadResult {
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    hit_rate: f64,
}

/// Drive `n_requests` through a fresh engine from 4 client threads.
/// `distinct` controls cache pressure: request `i` uses seed `i % distinct`,
/// so smaller `distinct` means more repeated rollouts (higher hit rate).
fn drive(
    fc: &Arc<Forecaster>,
    tokens: usize,
    max_batch: usize,
    n_requests: usize,
    distinct: usize,
) -> LoadResult {
    let engine = Arc::new(ServeEngine::start(
        Arc::clone(fc),
        ServeConfig {
            workers: 4,
            queue_capacity: n_requests,
            max_batch,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    ));
    let channels = fc.model.cfg.channels;
    let t0 = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in (c..n_requests).step_by(4) {
                    let seed = (i % distinct) as u64;
                    let init =
                        Tensor::randn(&[tokens, channels], &mut Rng::seed_from(seed ^ 0xA15));
                    let ticket = engine
                        .submit(ForecastRequest {
                            init,
                            forcings: Forcings::Zeros { channels: 3 },
                            steps: 2,
                            n_members: 2,
                            seed,
                            deadline: None,
                        })
                        .expect("admitted");
                    ticket.wait().expect("served");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }
    let wall = t0.elapsed().as_secs_f64();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients done"));
    let report = engine.shutdown();
    LoadResult {
        req_per_s: n_requests as f64 / wall,
        p50_ms: report.metrics.latency_ms.percentile(50.0).unwrap_or(f64::NAN),
        p99_ms: report.metrics.latency_ms.percentile(99.0).unwrap_or(f64::NAN),
        mean_batch: report.metrics.batch_size.mean().unwrap_or(f64::NAN),
        hit_rate: report.cache.hit_rate(),
    }
}

struct MixedResult {
    req_per_s: f64,
    forecast_p50_ms: f64,
    forecast_p99_ms: f64,
    nowcast_p50_ms: f64,
    nowcast_p99_ms: f64,
}

/// Drive an even forecast/nowcast mix through one engine from 4 client
/// threads and read the per-kind latency percentiles off the engine's own
/// split series.
fn drive_mixed(fc: &Arc<Forecaster>, n_requests: usize) -> MixedResult {
    let engine = Arc::new(ServeEngine::start(
        Arc::clone(fc),
        ServeConfig {
            workers: 4,
            queue_capacity: n_requests,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    ));
    let cfg = &fc.model.cfg;
    let tokens = cfg.tokens();
    let channels = cfg.channels;
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    // One observation network shared by all nowcasts (realistic: a fixed
    // station network observed at many analysis times).
    let op = ObsOperator::stations(&grid, tokens / 4, &[0, 1], &vec![0.5; channels], 17);
    let observations: Vec<Arc<ObservationSet>> = (0..4)
        .map(|i| {
            let truth =
                Tensor::randn(&[tokens, channels], &mut Rng::seed_from(0xBE5 + i as u64));
            Arc::new(op.observe(&truth, 0.05, 0x0B5 + i as u64))
        })
        .collect();
    let t0 = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let observations = observations.clone();
            std::thread::spawn(move || {
                for i in (c..n_requests).step_by(4) {
                    let seed = i as u64;
                    let init =
                        Tensor::randn(&[tokens, channels], &mut Rng::seed_from(seed ^ 0xA15));
                    if i % 2 == 0 {
                        engine
                            .submit(ForecastRequest {
                                init,
                                forcings: Forcings::Zeros { channels: 3 },
                                steps: 2,
                                n_members: 2,
                                seed,
                                deadline: None,
                            })
                            .expect("admitted")
                            .wait()
                            .expect("served");
                    } else {
                        engine
                            .submit_nowcast(NowcastRequest {
                                background: init,
                                forcings: Forcings::Zeros { channels: 3 },
                                observations: Arc::clone(&observations[i % 4 / 2]),
                                schedule: GuidanceSchedule::Constant(0.05),
                                n_members: 2,
                                seed,
                                deadline: None,
                            })
                            .expect("admitted")
                            .wait()
                            .expect("served");
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }
    let wall = t0.elapsed().as_secs_f64();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients done"));
    let report = engine.shutdown();
    let p = |series: &aeris_obs::MetricSeries, q: f64| series.percentile(q).unwrap_or(f64::NAN);
    MixedResult {
        req_per_s: n_requests as f64 / wall,
        forecast_p50_ms: p(&report.metrics.latency_ms, 50.0),
        forecast_p99_ms: p(&report.metrics.latency_ms, 99.0),
        nowcast_p50_ms: p(&report.metrics.nowcast_latency_ms, 50.0),
        nowcast_p99_ms: p(&report.metrics.nowcast_latency_ms, 99.0),
    }
}

/// The pre-optimization un-standardize inner loop: scalar `at()` indexing
/// with per-element bounds/offset arithmetic. Kept here as the baseline the
/// row-slice sweep in `forecast_step` is measured against.
fn unstandardize_scalar(residual_std: &Tensor, next: &mut Tensor, stats: &NormStats) {
    let shape = residual_std.shape();
    for r in 0..shape[0] {
        for c in 0..shape[1] {
            let v = residual_std.at(&[r, c]);
            let cur = next.at(&[r, c]);
            next.row_mut(r)[c] = cur + v * stats.std[c] + stats.mean[c];
        }
    }
}

/// The shipped row-slice version (mirrors the hot loop in `forecast_step`).
fn unstandardize_rows(residual_std: &Tensor, next: &mut Tensor, stats: &NormStats) {
    let rows = residual_std.shape()[0];
    for r in 0..rows {
        let row = next.row_mut(r);
        for (j, (o, &v)) in row.iter_mut().zip(residual_std.row(r)).enumerate() {
            *o += v * stats.std[j] + stats.mean[j];
        }
    }
}

fn main() {
    let full = std::env::var("AERIS_FULL").map(|v| v == "1").unwrap_or(false);
    let n_requests = if full { 96 } else { 32 };
    let fc = forecaster();
    let tokens = fc.model.cfg.tokens();

    header("Serving throughput vs micro-batch size");
    println!("{n_requests} requests x 2 members x 2 steps, 4 workers, 4 clients, all-distinct seeds");
    println!("{:<16}{:>10}{:>10}{:>10}{:>12}", "max_batch", "req/s", "p50 ms", "p99 ms", "mean batch");
    let mut batch_rows = Vec::new();
    for max_batch in [1usize, 2, 4, 8, 16] {
        let r = drive(&fc, tokens, max_batch, n_requests, n_requests);
        println!(
            "{:<16}{:>10.2}{:>10.1}{:>10.1}{:>12.2}",
            max_batch, r.req_per_s, r.p50_ms, r.p99_ms, r.mean_batch
        );
        batch_rows.push(format!(
            "{{\"max_batch\": {max_batch}, \"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_batch\": {:.3}}}",
            r.req_per_s, r.p50_ms, r.p99_ms, r.mean_batch
        ));
    }

    header("Serving throughput vs cache-hit rate");
    println!("max_batch 8; `distinct` = number of unique rollouts among {n_requests} requests");
    println!("{:<16}{:>10}{:>10}{:>10}{:>12}", "distinct", "req/s", "p50 ms", "p99 ms", "hit rate");
    let mut cache_rows = Vec::new();
    for distinct in [n_requests, n_requests / 2, n_requests / 8, 1] {
        let r = drive(&fc, tokens, 8, n_requests, distinct.max(1));
        println!(
            "{:<16}{:>10.2}{:>10.1}{:>10.1}{:>11.0}%",
            distinct.max(1),
            r.req_per_s,
            r.p50_ms,
            r.p99_ms,
            100.0 * r.hit_rate
        );
        cache_rows.push(format!(
            "{{\"distinct\": {}, \"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"hit_rate\": {:.4}}}",
            distinct.max(1),
            r.req_per_s,
            r.p50_ms,
            r.p99_ms,
            r.hit_rate
        ));
    }

    header("Mixed forecast/nowcast load: per-request-type latency");
    println!("{n_requests} requests, 50% nowcasts, max_batch 8, shared station network");
    let m = drive_mixed(&fc, n_requests);
    println!("{:<16}{:>10}{:>10}", "kind", "p50 ms", "p99 ms");
    println!("{:<16}{:>10.1}{:>10.1}", "forecast", m.forecast_p50_ms, m.forecast_p99_ms);
    println!("{:<16}{:>10.1}{:>10.1}", "nowcast", m.nowcast_p50_ms, m.nowcast_p99_ms);
    println!("mixed load: {:.2} req/s", m.req_per_s);

    header("Un-standardize kernel: scalar at() vs row-slice sweep");
    let channels = fc.model.cfg.channels;
    let stats = NormStats { mean: vec![0.1; channels], std: vec![1.3; channels] };
    let mut rng = Rng::seed_from(7);
    let residual = Tensor::randn(&[tokens, channels], &mut rng);
    let base = Tensor::randn(&[tokens, channels], &mut rng);
    let iters = if full { 20_000 } else { 4_000 };
    let mut sink = 0.0f32;
    let mut scratch = base.clone();
    let t0 = Instant::now();
    for _ in 0..iters {
        scratch.data_mut().copy_from_slice(base.data());
        unstandardize_scalar(&residual, &mut scratch, &stats);
        sink += scratch.at(&[0, 0]);
    }
    let scalar_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        scratch.data_mut().copy_from_slice(base.data());
        unstandardize_rows(&residual, &mut scratch, &stats);
        sink += scratch.at(&[0, 0]);
    }
    let rows_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("{}", fmt_row("scalar at()", &[scalar_us], 12, 2));
    println!("{}", fmt_row("row slices", &[rows_us], 12, 2));
    println!("{}", fmt_row("speedup", &[scalar_us / rows_us], 12, 2));
    assert!(sink.is_finite());

    let out = format!(
        "{{\n  \"batch_sweep\": [\n    {}\n  ],\n  \"cache_sweep\": [\n    {}\n  ],\n  \
         \"mixed_load\": {{\n    \"req_per_s\": {:.3},\n    \
         \"forecast\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n    \
         \"nowcast\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}\n  }},\n  \
         \"unstandardize_kernel\": {{\"scalar_us\": {scalar_us:.3}, \"rows_us\": {rows_us:.3}, \
         \"speedup\": {:.3}}}\n}}\n",
        batch_rows.join(",\n    "),
        cache_rows.join(",\n    "),
        m.req_per_s,
        m.forecast_p50_ms,
        m.forecast_p99_ms,
        m.nowcast_p50_ms,
        m.nowcast_p99_ms,
        scalar_us / rows_us,
    );
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
