//! Serving-engine throughput: requests/s and latency percentiles as a
//! function of micro-batch size and cache-hit rate, per-tier capacity and
//! latency for the two-tier (full sampler vs distilled one-step student)
//! engine under a mixed multi-tenant load, plus the un-standardize kernel
//! comparison (scalar indexing vs row-slice sweep) that motivates the
//! row-major hot loop in `Forecaster::forecast_step`.
//!
//! Emits `BENCH_serve.json` with the throughput sweeps, a `tiers` object
//! (per-tier req/s, p50/p99 ms, completed/shed counts, read off the
//! engine's own per-tier latency series and report counters), and a
//! `tenants` array from the same report.
//!
//! Run: `cargo run --release -p aeris-bench --bin serve_throughput`
//! (`AERIS_FULL=1` for more requests per configuration).

use aeris_assim::{GuidanceSchedule, ObsOperator, ObservationSet};
use aeris_bench::{fmt_row, header, toy_model_config, toy_vars};
use aeris_core::{AerisModel, ConsistencyStudent, Forecaster};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::{Grid, NormStats};
use aeris_serve::{
    ForecastRequest, Forcings, NowcastRequest, QuotaConfig, ServeConfig, ServeEngine,
    TenantPolicy, Tier,
};
use aeris_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn forecaster() -> Arc<Forecaster> {
    // Untrained weights: serving cost is architecture + sampler dependent,
    // not weight dependent, so skip training and measure the machinery.
    // 6 solver steps with the second-order corrector = 12 network evals per
    // member-step on the quality tier, vs 1 for the distilled student.
    let cfg = toy_model_config(&toy_vars());
    let channels = cfg.channels;
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Arc::new(Forecaster {
        model: AerisModel::new(cfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 6, churn: 0.1, second_order: true },
        ),
    })
}

/// The fast tier's one-step model. Teacher-copy weights (zero distillation
/// steps): throughput depends on the NFE count and architecture, not on how
/// well the student was trained, so the copy measures exactly the serving
/// cost a distilled student would have.
fn student_of(fc: &Forecaster) -> Arc<ConsistencyStudent> {
    Arc::new(ConsistencyStudent {
        model: fc.replicate().model,
        stats: fc.stats.clone(),
        res_stats: fc.res_stats.clone(),
        tf: fc.sampler.tf,
    })
}

fn forecast_request(tokens: usize, channels: usize, seed: u64) -> ForecastRequest {
    ForecastRequest {
        init: Tensor::randn(&[tokens, channels], &mut Rng::seed_from(seed ^ 0xA15)),
        forcings: Forcings::Zeros { channels: 3 },
        steps: 2,
        n_members: 2,
        seed,
        deadline: None,
        tenant: None,
        tier: None,
    }
}

struct LoadResult {
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    hit_rate: f64,
}

/// Drive `n_requests` through a fresh engine from 4 client threads.
/// `distinct` controls cache pressure: request `i` uses seed `i % distinct`,
/// so smaller `distinct` means more repeated rollouts (higher hit rate).
fn drive(
    fc: &Arc<Forecaster>,
    tokens: usize,
    max_batch: usize,
    n_requests: usize,
    distinct: usize,
) -> LoadResult {
    let engine = Arc::new(ServeEngine::start(
        Arc::clone(fc),
        ServeConfig {
            workers: 4,
            queue_capacity: n_requests,
            max_batch,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    ));
    let channels = fc.model.cfg.channels;
    let t0 = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in (c..n_requests).step_by(4) {
                    let seed = (i % distinct) as u64;
                    let ticket = engine
                        .submit(forecast_request(tokens, channels, seed))
                        .expect("admitted");
                    ticket.wait().expect("served");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }
    let wall = t0.elapsed().as_secs_f64();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients done"));
    let report = engine.shutdown();
    LoadResult {
        req_per_s: n_requests as f64 / wall,
        p50_ms: report.metrics.latency_ms.percentile(50.0).unwrap_or(f64::NAN),
        p99_ms: report.metrics.latency_ms.percentile(99.0).unwrap_or(f64::NAN),
        mean_batch: report.metrics.batch_size.mean().unwrap_or(f64::NAN),
        hit_rate: report.cache.hit_rate(),
    }
}

/// Per-tier capacity: `n_requests` pinned to one tier through a fresh
/// two-tier engine (same worker count per tier, all-distinct seeds, no
/// caching help), 4 client threads.
fn tier_capacity(
    fc: &Arc<Forecaster>,
    student: &Arc<ConsistencyStudent>,
    tier: Tier,
    n_requests: usize,
) -> f64 {
    let engine = Arc::new(ServeEngine::start_two_tier(
        Arc::clone(fc),
        Arc::clone(student),
        ServeConfig {
            workers: 4,
            fast_workers: 4,
            queue_capacity: n_requests,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    ));
    let tokens = fc.model.cfg.tokens();
    let channels = fc.model.cfg.channels;
    let t0 = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in (c..n_requests).step_by(4) {
                    let mut req = forecast_request(tokens, channels, i as u64);
                    req.tier = Some(tier);
                    engine.submit(req).expect("admitted").wait().expect("served");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client panicked");
    }
    let wall = t0.elapsed().as_secs_f64();
    drop(engine);
    n_requests as f64 / wall
}

struct TierRow {
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    completed: u64,
    shed: u64,
}

struct TenantRow {
    tenant: String,
    completed: u64,
    shed: u64,
    quota_denied: u64,
}

struct TieredResult {
    mixed_req_per_s: f64,
    tiers: [TierRow; 2], // [fast, quality]
    tenants: Vec<TenantRow>,
    nowcast_p50_ms: f64,
    nowcast_p99_ms: f64,
}

/// The headline mixed load: two tenants (an "ops" desk with 4× weight and a
/// quota-capped "research" tenant) driving an even forecast/nowcast mix,
/// half of it pinned fast and half quality, plus a slice of zero-deadline
/// requests that the engine sheds at admission. Per-tier latency comes off
/// the engine's own split series; per-tier/per-tenant counters off the
/// shutdown report.
fn drive_tiered(
    fc: &Arc<Forecaster>,
    student: &Arc<ConsistencyStudent>,
    n_requests: usize,
    capacities: [f64; 2],
) -> TieredResult {
    let engine = Arc::new(ServeEngine::start_two_tier(
        Arc::clone(fc),
        Arc::clone(student),
        ServeConfig {
            workers: 4,
            fast_workers: 2,
            queue_capacity: 2 * n_requests,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            quota: Some(QuotaConfig {
                default: TenantPolicy { weight: 1.0, rate: 0.0, burst: 0.0 },
                overrides: vec![
                    (Arc::from("ops"), TenantPolicy { weight: 4.0, rate: 0.0, burst: 0.0 }),
                    // Research demands ~1.5 member-steps per request of the
                    // whole mix; a burst of n_requests covers about 2/3 of
                    // that, so the tail is refused at admission.
                    (
                        Arc::from("research"),
                        TenantPolicy { weight: 1.0, rate: 1e-9, burst: n_requests as f64 },
                    ),
                ],
            }),
            ..ServeConfig::default()
        },
    ));
    let cfg = &fc.model.cfg;
    let tokens = cfg.tokens();
    let channels = cfg.channels;
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    // One observation network shared by all nowcasts (realistic: a fixed
    // station network observed at many analysis times).
    let op = ObsOperator::stations(&grid, tokens / 4, &[0, 1], &vec![0.5; channels], 17);
    let observations: Vec<Arc<ObservationSet>> = (0..4)
        .map(|i| {
            let truth = Tensor::randn(&[tokens, channels], &mut Rng::seed_from(0xBE5 + i as u64));
            Arc::new(op.observe(&truth, 0.05, 0x0B5 + i as u64))
        })
        .collect();
    let t0 = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let observations = observations.clone();
            std::thread::spawn(move || {
                let tenant: Arc<str> = if c % 2 == 0 { Arc::from("ops") } else { Arc::from("research") };
                let mut quota_denied = 0usize;
                for i in (c..n_requests).step_by(4) {
                    let seed = i as u64;
                    let tier = Some(if i % 2 == 0 { Tier::Fast } else { Tier::Quality });
                    // Every 8th request carries a spent deadline: it is shed
                    // at admission, exercising the deadline path under load.
                    let deadline =
                        if i % 8 == 7 { Some(Duration::ZERO) } else { None };
                    let outcome = if i % 4 < 2 {
                        let mut req = forecast_request(tokens, channels, seed);
                        req.tier = tier;
                        req.tenant = Some(Arc::clone(&tenant));
                        req.deadline = deadline;
                        engine.submit(req).map(|t| t.wait())
                    } else {
                        engine
                            .submit_nowcast(NowcastRequest {
                                background: Tensor::randn(
                                    &[tokens, channels],
                                    &mut Rng::seed_from(seed ^ 0xA15),
                                ),
                                forcings: Forcings::Zeros { channels: 3 },
                                observations: Arc::clone(&observations[i % 4]),
                                schedule: GuidanceSchedule::Constant(0.05),
                                n_members: 2,
                                seed,
                                deadline,
                                tenant: Some(Arc::clone(&tenant)),
                                tier,
                            })
                            .map(|t| t.wait())
                    };
                    match outcome {
                        Ok(Ok(_)) => {}
                        Ok(Err(e)) => panic!("serve failed: {e}"),
                        Err(aeris_serve::ServeError::DeadlineExceeded { .. }) => {}
                        Err(aeris_serve::ServeError::QuotaExceeded { .. }) => quota_denied += 1,
                        Err(e) => panic!("admission failed: {e}"),
                    }
                }
                quota_denied
            })
        })
        .collect();
    let mut denied = 0usize;
    for c in clients {
        denied += c.join().expect("client panicked");
    }
    let wall = t0.elapsed().as_secs_f64();
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients done"));
    let report = engine.shutdown();
    assert_eq!(denied as u64, report.quota_denied, "client/report quota accounting disagrees");
    let p = |series: &aeris_obs::MetricSeries, q: f64| series.percentile(q).unwrap_or(f64::NAN);
    // Per-tier latency under the mix: forecast + nowcast samples pooled.
    let pooled = |fast: bool, q: f64| {
        let (a, b) = if fast {
            (&report.metrics.fast_latency_ms, &report.metrics.fast_nowcast_latency_ms)
        } else {
            (&report.metrics.latency_ms, &report.metrics.nowcast_latency_ms)
        };
        // Percentile over the union via the larger series when one is empty.
        match (a.count(), b.count()) {
            (0, _) => p(b, q),
            (_, 0) => p(a, q),
            _ => 0.5 * (p(a, q) + p(b, q)),
        }
    };
    let tiers = [Tier::Fast, Tier::Quality].map(|t| TierRow {
        req_per_s: capacities[if t == Tier::Fast { 0 } else { 1 }],
        p50_ms: pooled(t == Tier::Fast, 50.0),
        p99_ms: pooled(t == Tier::Fast, 99.0),
        completed: report.tier(t).completed,
        shed: report.tier(t).shed,
    });
    TieredResult {
        mixed_req_per_s: report.completed as f64 / wall,
        tiers,
        tenants: report
            .tenants
            .iter()
            .map(|(name, c)| TenantRow {
                tenant: name.clone(),
                completed: c.completed,
                shed: c.shed,
                quota_denied: c.quota_denied,
            })
            .collect(),
        nowcast_p50_ms: p(&report.metrics.nowcast_latency_ms, 50.0),
        nowcast_p99_ms: p(&report.metrics.nowcast_latency_ms, 99.0),
    }
}

/// The pre-optimization un-standardize inner loop: scalar `at()` indexing
/// with per-element bounds/offset arithmetic. Kept here as the baseline the
/// row-slice sweep in `forecast_step` is measured against.
fn unstandardize_scalar(residual_std: &Tensor, next: &mut Tensor, stats: &NormStats) {
    let shape = residual_std.shape();
    for r in 0..shape[0] {
        for c in 0..shape[1] {
            let v = residual_std.at(&[r, c]);
            let cur = next.at(&[r, c]);
            next.row_mut(r)[c] = cur + v * stats.std[c] + stats.mean[c];
        }
    }
}

/// The shipped row-slice version (mirrors the hot loop in `forecast_step`).
fn unstandardize_rows(residual_std: &Tensor, next: &mut Tensor, stats: &NormStats) {
    let rows = residual_std.shape()[0];
    for r in 0..rows {
        let row = next.row_mut(r);
        for (j, (o, &v)) in row.iter_mut().zip(residual_std.row(r)).enumerate() {
            *o += v * stats.std[j] + stats.mean[j];
        }
    }
}

fn main() {
    let full = std::env::var("AERIS_FULL").map(|v| v == "1").unwrap_or(false);
    let n_requests = if full { 96 } else { 32 };
    let fc = forecaster();
    let student = student_of(&fc);
    let tokens = fc.model.cfg.tokens();

    header("Serving throughput vs micro-batch size");
    println!("{n_requests} requests x 2 members x 2 steps, 4 workers, 4 clients, all-distinct seeds");
    println!("{:<16}{:>10}{:>10}{:>10}{:>12}", "max_batch", "req/s", "p50 ms", "p99 ms", "mean batch");
    let mut batch_rows = Vec::new();
    for max_batch in [1usize, 2, 4, 8, 16] {
        let r = drive(&fc, tokens, max_batch, n_requests, n_requests);
        println!(
            "{:<16}{:>10.2}{:>10.1}{:>10.1}{:>12.2}",
            max_batch, r.req_per_s, r.p50_ms, r.p99_ms, r.mean_batch
        );
        batch_rows.push(format!(
            "{{\"max_batch\": {max_batch}, \"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_batch\": {:.3}}}",
            r.req_per_s, r.p50_ms, r.p99_ms, r.mean_batch
        ));
    }

    header("Serving throughput vs cache-hit rate");
    println!("max_batch 8; `distinct` = number of unique rollouts among {n_requests} requests");
    println!("{:<16}{:>10}{:>10}{:>10}{:>12}", "distinct", "req/s", "p50 ms", "p99 ms", "hit rate");
    let mut cache_rows = Vec::new();
    for distinct in [n_requests, n_requests / 2, n_requests / 8, 1] {
        let r = drive(&fc, tokens, 8, n_requests, distinct.max(1));
        println!(
            "{:<16}{:>10.2}{:>10.1}{:>10.1}{:>11.0}%",
            distinct.max(1),
            r.req_per_s,
            r.p50_ms,
            r.p99_ms,
            100.0 * r.hit_rate
        );
        cache_rows.push(format!(
            "{{\"distinct\": {}, \"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"hit_rate\": {:.4}}}",
            distinct.max(1),
            r.req_per_s,
            r.p50_ms,
            r.p99_ms,
            r.hit_rate
        ));
    }

    header("Per-tier capacity: distilled fast tier vs full-sampler quality tier");
    println!("{n_requests} requests pinned per tier, 4 workers each, 12 vs 1 network evals/step");
    let fast_cap = tier_capacity(&fc, &student, Tier::Fast, n_requests);
    let quality_cap = tier_capacity(&fc, &student, Tier::Quality, n_requests);
    println!("{:<16}{:>10}{:>12}", "tier", "req/s", "speedup");
    println!("{:<16}{:>10.2}{:>12}", "quality", quality_cap, "1.0x");
    println!("{:<16}{:>10.2}{:>11.1}x", "fast", fast_cap, fast_cap / quality_cap);

    header("Mixed two-tier multi-tenant load");
    println!(
        "{n_requests} requests, 50% nowcasts, 50% pinned fast, 2 tenants, \
         1/8 spent deadlines, quota-capped research tenant"
    );
    let m = drive_tiered(&fc, &student, n_requests, [fast_cap, quality_cap]);
    println!("{:<16}{:>10}{:>10}{:>12}{:>8}", "tier", "p50 ms", "p99 ms", "completed", "shed");
    for (t, row) in [Tier::Fast, Tier::Quality].iter().zip(&m.tiers) {
        println!(
            "{:<16}{:>10.1}{:>10.1}{:>12}{:>8}",
            t.name(),
            row.p50_ms,
            row.p99_ms,
            row.completed,
            row.shed
        );
    }
    println!("{:<16}{:>12}{:>8}{:>14}", "tenant", "completed", "shed", "quota denied");
    for t in &m.tenants {
        println!(
            "{:<16}{:>12}{:>8}{:>14}",
            t.tenant, t.completed, t.shed, t.quota_denied
        );
    }
    println!("mixed load: {:.2} req/s completed", m.mixed_req_per_s);

    header("Un-standardize kernel: scalar at() vs row-slice sweep");
    let channels = fc.model.cfg.channels;
    let stats = NormStats { mean: vec![0.1; channels], std: vec![1.3; channels] };
    let mut rng = Rng::seed_from(7);
    let residual = Tensor::randn(&[tokens, channels], &mut rng);
    let base = Tensor::randn(&[tokens, channels], &mut rng);
    let iters = if full { 20_000 } else { 4_000 };
    let mut sink = 0.0f32;
    let mut scratch = base.clone();
    let t0 = Instant::now();
    for _ in 0..iters {
        scratch.data_mut().copy_from_slice(base.data());
        unstandardize_scalar(&residual, &mut scratch, &stats);
        sink += scratch.at(&[0, 0]);
    }
    let scalar_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        scratch.data_mut().copy_from_slice(base.data());
        unstandardize_rows(&residual, &mut scratch, &stats);
        sink += scratch.at(&[0, 0]);
    }
    let rows_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("{}", fmt_row("scalar at()", &[scalar_us], 12, 2));
    println!("{}", fmt_row("row slices", &[rows_us], 12, 2));
    println!("{}", fmt_row("speedup", &[scalar_us / rows_us], 12, 2));
    assert!(sink.is_finite());

    let tier_json = |row: &TierRow| {
        format!(
            "{{\"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"completed\": {}, \"shed\": {}}}",
            row.req_per_s, row.p50_ms, row.p99_ms, row.completed, row.shed
        )
    };
    let tenant_rows: Vec<String> = m
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\": \"{}\", \"completed\": {}, \"shed\": {}, \"quota_denied\": {}}}",
                t.tenant, t.completed, t.shed, t.quota_denied
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"batch_sweep\": [\n    {}\n  ],\n  \"cache_sweep\": [\n    {}\n  ],\n  \
         \"tiers\": {{\n    \"fast\": {},\n    \"quality\": {},\n    \
         \"fast_speedup\": {:.3}\n  }},\n  \
         \"tenants\": [\n    {}\n  ],\n  \
         \"mixed_load\": {{\n    \"req_per_s\": {:.3},\n    \
         \"nowcast\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}\n  }},\n  \
         \"unstandardize_kernel\": {{\"scalar_us\": {scalar_us:.3}, \"rows_us\": {rows_us:.3}, \
         \"speedup\": {:.3}}}\n}}\n",
        batch_rows.join(",\n    "),
        cache_rows.join(",\n    "),
        tier_json(&m.tiers[0]),
        tier_json(&m.tiers[1]),
        fast_cap / quality_cap,
        tenant_rows.join(",\n    "),
        m.mixed_req_per_s,
        m.nowcast_p50_ms,
        m.nowcast_p99_ms,
        scalar_us / rows_us,
    );
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
