//! Regenerates Fig. 7: seasonal (S2S) stability — (a) the Niño 3.4 plume
//! with the spring barrier, (b) day-N field sharpness via zonal spectra,
//! (c) the U850 equatorial Hovmöller and its pattern-correlation decay.
//! `--full-field` trains an ablation model that predicts the full state
//! instead of the residual (DESIGN.md ablation: rollouts destabilize).

use aeris_bench::*;
use aeris_earthsim::{render_climatology, EQUATORIAL_BAND};
use aeris_evaluation::hovmoller::{hovmoller, pattern_correlation, remove_time_mean};
use aeris_evaluation::nino::nino34_series;
use aeris_evaluation::spectra::high_k_sharpness;
use aeris_tensor::Tensor;

fn main() {
    let scale = RunScale::from_env();
    let seed = 2021;
    let horizon_days: usize =
        if std::env::var("AERIS_FULL").map(|v| v == "1").unwrap_or(false) { 90 } else { 30 };
    let horizon = horizon_days * 4;
    let n_steps = 460 + horizon;
    header("Fig 7: seasonal-scale stability");
    println!("rollout horizon: {horizon_days} days ({horizon} steps)");

    // Keep the training span fixed (~368 pairs, as in the other experiments)
    // and let the held-out tail grow with the rollout horizon.
    let train_frac = 368.0 / n_steps as f64;
    let ds = aeris_earthsim::Dataset::generate(
        toy_sim_params(seed, standard_scenario()),
        &toy_vars(),
        n_steps,
        60,
        train_frac,
        0.05,
    );
    println!("training AERIS…");
    let aeris = train_aeris(&ds, &scale, seed);

    let (_, _, test) = ds.split_ranges();
    let i0 = test.start + 2;
    let x0 = ds.state(i0).clone();
    let forc = forcing_provider(seed, ds.time(i0));
    let members = scale.members.min(4);
    println!("rolling out {members} members from step {i0}…");
    let ens = aeris.ensemble(&x0, &forc, horizon, members, 77);

    let truth: Vec<Tensor> = (1..=horizon).map(|k| ds.state(i0 + k).clone()).collect();
    let clim = toy_climate(seed);
    let clim_states: Vec<Tensor> = (1..=horizon)
        .map(|k| render_climatology(&clim, &ds.vars, (ds.time(i0) + 6.0 * k as f64) / 24.0))
        .collect();

    // ---- (a) Niño 3.4 plume ----
    header("Fig 7a: Niño 3.4 index (K), every 10 days");
    let truth_nino = nino34_series(&truth, &clim_states, ds.grid, &ds.vars);
    let member_ninos: Vec<Vec<f32>> = ens
        .members
        .iter()
        .map(|m| nino34_series(m, &clim_states, ds.grid, &ds.vars))
        .collect();
    println!("{:>6}{:>9}{:>9}{:>9}{:>9}", "day", "truth", "ens-min", "ens-mean", "ens-max");
    for k in (39..horizon).step_by(40) {
        let vals: Vec<f32> = member_ninos.iter().map(|s| s[k]).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
        let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        println!("{:>6.0}{:>9.2}{:>9.2}{:>9.2}{:>9.2}", (k + 1) as f64 / 4.0, truth_nino[k], min, mean, max);
    }

    // ---- (b) sharpness at the end of the rollout ----
    header("Fig 7b: day-N spectral sharpness (high-k power ratio vs truth)");
    for ch_name in ["sst", "q700", "u850"] {
        let ch = ds.vars.index_of(ch_name).unwrap();
        let s = high_k_sharpness(&ens.members[0][horizon - 1], &truth[horizon - 1], ds.grid, ch);
        println!("  {ch_name:>5}: {s:.2}  (1.0 = perfectly sharp, << 1 = blurred/collapsed)");
    }
    // Stability check: fields finite and within physical bounds.
    let t2m = ds.vars.index_of("t2m").unwrap();
    let last = &ens.members[0][horizon - 1];
    let mut t_min = f32::INFINITY;
    let mut t_max = f32::NEG_INFINITY;
    for t in 0..last.shape()[0] {
        t_min = t_min.min(last.at(&[t, t2m]));
        t_max = t_max.max(last.at(&[t, t2m]));
    }
    println!("  day-{horizon_days} T2m range: {t_min:.1}..{t_max:.1} K (finite: {})", last.all_finite());

    // ---- (c) Hovmöller ----
    header("Fig 7c: U850 equatorial Hovmöller pattern correlation vs truth");
    let u850 = ds.vars.index_of("u850").unwrap();
    let hov_truth = remove_time_mean(&hovmoller(&truth, ds.grid, &EQUATORIAL_BAND, u850));
    let hov_fc = remove_time_mean(&hovmoller(&ens.members[0], ds.grid, &EQUATORIAL_BAND, u850));
    println!("{:>6}{:>12}", "day", "pattern r");
    for k in (3..horizon).step_by(16) {
        println!("{:>6.0}{:>12.2}", (k + 1) as f64 / 4.0, pattern_correlation(&hov_fc, &hov_truth, k));
    }
    println!("\nPaper shape: skillful correlation for the first weeks, decaying toward 0");
    println!("but with *stable, realistic variability* (no blow-up) to the horizon.");
}
