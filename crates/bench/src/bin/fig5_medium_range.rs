//! Regenerates Fig. 5a: medium-range ensemble skill — latitude-weighted
//! ensemble-mean RMSE, CRPS, and spread/skill ratio for key variables, for
//! AERIS vs the GenCast analog, the IFS-ENS analog (perfect-model numerical
//! ensemble), the deterministic baseline, and persistence/climatology.
//!
//! Expected shape (paper): AERIS ≤ IFS ENS on RMSE/CRPS, competitive with
//! GenCast; SSR < 1 (under-dispersive) for the diffusion models.
//! `--no-churn` disables the stochastic churn (ablation: spread collapses).

#![allow(clippy::needless_range_loop)]


use aeris_bench::*;
use aeris_evaluation::{crps, ensemble_mean, rmse, ssr};
use aeris_tensor::Tensor;

fn main() {
    let scale = RunScale::from_env();
    let no_churn = std::env::args().any(|a| a == "--no-churn");
    let seed = 2020;
    let n_steps = 460;
    let lead_steps = 40; // 10 days at 6 h
    header("Fig 5a: medium-range ensemble skill (toy ERA5)");
    println!("scale: {scale:?}  churn: {}", !no_churn);

    let ds = build_dataset(seed, standard_scenario(), n_steps);
    let (_, _, test) = ds.split_ranges();
    println!("dataset: {} pairs (test {:?})", ds.len_pairs(), test);

    println!("training AERIS…");
    let mut aeris = train_aeris(&ds, &scale, seed);
    if no_churn {
        aeris.sampler.cfg.churn = 0.0;
    }
    println!("training GenCast analog…");
    let gencast = train_gencast(&ds, &scale, seed);
    println!("training deterministic baseline…");
    let det = train_deterministic(&ds, &scale, seed);

    let lat_w = ds.grid.token_lat_weights();
    let vars = ds.vars.clone();
    let channels = ["z500", "t850", "q700"];
    let ics: Vec<usize> = (0..scale.initial_conditions)
        .map(|k| test.start + 2 + k * (test.len().saturating_sub(lead_steps + 4)).max(1) / scale.initial_conditions.max(1))
        .filter(|&i| i + lead_steps < ds.len_pairs())
        .collect();
    println!("initial conditions at pair indices {ics:?}");

    // metric[model][channel][lead_day] accumulated over ICs.
    let models = ["AERIS", "GenCastA", "IFS-ENSa", "Determin.", "Persist."];
    let lead_days: Vec<usize> = (1..=lead_steps / 4).collect();
    let mut rmse_acc = vec![vec![vec![0.0f64; lead_days.len()]; channels.len()]; models.len()];
    let mut crps_acc = vec![vec![vec![0.0f64; lead_days.len()]; channels.len()]; models.len()];
    let mut ssr_acc = vec![vec![vec![0.0f64; lead_days.len()]; channels.len()]; models.len()];

    for &i0 in &ics {
        let x0 = ds.state(i0).clone();
        let forc = forcing_provider(seed, ds.time(i0));
        let truth: Vec<&Tensor> = (1..=lead_steps).map(|k| ds.state(i0 + k)).collect();

        let aeris_ens = aeris.ensemble(&x0, &forc, lead_steps, scale.members, 1000 + i0 as u64);
        let gc_ens = gencast.ensemble(&x0, &forc, lead_steps, scale.members, 2000 + i0 as u64);
        let sim0 = sim_at(seed, standard_scenario(), i0);
        let ifs_ens = aeris_baselines::numerical_ensemble(
            &sim0, &vars, lead_steps, scale.members, 1.0, 3000 + i0 as u64,
        );
        let det_states = det.rollout(&x0, &forc, lead_steps);

        for (ci, ch_name) in channels.iter().enumerate() {
            let ch = vars.index_of(ch_name).expect("channel");
            for (li, &day) in lead_days.iter().enumerate() {
                let k = day * 4 - 1; // index into step list
                let t = truth[k];
                // AERIS
                let mems: Vec<&Tensor> = aeris_ens.members.iter().map(|m| &m[k]).collect();
                rmse_acc[0][ci][li] += rmse(&ensemble_mean(&mems), t, &lat_w, ch);
                crps_acc[0][ci][li] += crps(&mems, t, &lat_w, ch);
                ssr_acc[0][ci][li] += ssr(&mems, t, &lat_w, ch);
                // GenCast analog
                let mems: Vec<&Tensor> = gc_ens.iter().map(|m| &m[k]).collect();
                rmse_acc[1][ci][li] += rmse(&ensemble_mean(&mems), t, &lat_w, ch);
                crps_acc[1][ci][li] += crps(&mems, t, &lat_w, ch);
                ssr_acc[1][ci][li] += ssr(&mems, t, &lat_w, ch);
                // IFS ENS analog
                let mems: Vec<&Tensor> = ifs_ens.iter().map(|m| &m[k]).collect();
                rmse_acc[2][ci][li] += rmse(&ensemble_mean(&mems), t, &lat_w, ch);
                crps_acc[2][ci][li] += crps(&mems, t, &lat_w, ch);
                ssr_acc[2][ci][li] += ssr(&mems, t, &lat_w, ch);
                // Deterministic (RMSE only; CRPS degenerates to MAE-ish).
                rmse_acc[3][ci][li] += rmse(&det_states[k], t, &lat_w, ch);
                // Persistence
                rmse_acc[4][ci][li] += rmse(&x0, t, &lat_w, ch);
            }
        }
    }
    let n = ics.len() as f64;

    for (ci, ch_name) in channels.iter().enumerate() {
        header(&format!("{ch_name}: ensemble-mean RMSE by lead (days)"));
        print!("{:<12}", "model");
        for d in &lead_days {
            print!("{d:>9}");
        }
        println!();
        for (mi, m) in models.iter().enumerate() {
            if *m == "Determin." || *m == "Persist." || rmse_acc[mi][ci][0] > 0.0 {
                print!("{m:<12}");
                for li in 0..lead_days.len() {
                    print!("{:>9.3}", rmse_acc[mi][ci][li] / n);
                }
                println!();
            }
        }
        header(&format!("{ch_name}: CRPS by lead (days)"));
        print!("{:<12}", "model");
        for d in &lead_days {
            print!("{d:>9}");
        }
        println!();
        for (mi, m) in models.iter().enumerate().take(3) {
            print!("{m:<12}");
            for li in 0..lead_days.len() {
                print!("{:>9.3}", crps_acc[mi][ci][li] / n);
            }
            println!();
        }
        header(&format!("{ch_name}: spread/skill ratio by lead (days)"));
        print!("{:<12}", "model");
        for d in &lead_days {
            print!("{d:>9}");
        }
        println!();
        for (mi, m) in models.iter().enumerate().take(3) {
            print!("{m:<12}");
            for li in 0..lead_days.len() {
                print!("{:>9.3}", ssr_acc[mi][ci][li] / n);
            }
            println!();
        }
    }
    println!("\nPaper shapes to verify: AERIS RMSE/CRPS <= IFS-ENS analog over the");
    println!("medium range; diffusion SSR < 1 (under-dispersive); deterministic");
    println!("RMSE competitive early but ensembles win at longer leads.");
}
