//! Tracing-overhead benchmark: what does `aeris-obs` cost?
//!
//! Five measurements, emitted to `BENCH_obs.json`:
//!
//! 1. **Span-site microbenchmark** — ns per `Tracer::span()` call with the
//!    tracer disabled (the steady-state production configuration: one relaxed
//!    atomic load) and enabled (seq fetch + record on drop).
//! 2. **Histogram record path** — ns per `MetricSeries::record` on the
//!    lock-free log-linear histogram, single-threaded and with 4 threads
//!    hammering one shared series, against the old implementation's shape
//!    (lock a mutex, push into an unbounded `Vec`). Also pins the fixed
//!    per-series memory footprint and the documented quantile error bound.
//! 3. **SLO observe path** — ns per `SloTracker::observe` (ring write +
//!    window recount under a short critical section).
//! 4. **End-to-end SWiPe training** — ms/step for the same distributed run
//!    with the tracer disabled vs enabled, plus how many spans the enabled
//!    run recorded. This is the number the "<2% disabled overhead" contract
//!    is about.
//! 5. **Serving engine** — requests/s through `aeris-serve` disabled vs
//!    enabled.
//!
//! ```bash
//! cargo run --release -p aeris-bench --bin obs_overhead
//! ```

use aeris_bench::{toy_model_config, toy_vars};
use aeris_core::{AerisConfig, AerisModel, Forecaster, TrainSample};
use aeris_diffusion::{loss_weights, SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::{Grid, NormStats};
use aeris_nn::AdamWConfig;
use aeris_obs::histogram::MAX_QUANTILE_REL_ERROR;
use aeris_obs::{Histogram, MetricSeries, SloConfig, SloTracker, Tracer};
use aeris_serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine};
use aeris_swipe::data::InMemorySource;
use aeris_swipe::{DistributedTrainer, SwipeConfig, SwipeTopology};
use aeris_tensor::{Rng, Tensor};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Median seconds per call of `f` over `reps` timed calls (one warmup).
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn span_site_ns(tracer: &Tracer, iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        let _g = tracer.span(aeris_obs::SpanCategory::Forward, 0);
        std::hint::black_box(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// ns per `MetricSeries::record` on the lock-free histogram path.
fn series_record_ns(iters: u64) -> f64 {
    let s = MetricSeries::new();
    let t0 = Instant::now();
    for i in 0..iters {
        s.record(std::hint::black_box((i % 1000) as f64 + 0.5));
    }
    std::hint::black_box(s.count());
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// ns per record for the old implementation's shape: lock a mutex, push the
/// raw sample into an unbounded `Vec`.
fn mutex_vec_record_ns(iters: u64) -> f64 {
    let v: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    for i in 0..iters {
        v.lock().unwrap().push(std::hint::black_box((i % 1000) as f64 + 0.5));
    }
    std::hint::black_box(v.lock().unwrap().len());
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// ns per record with `threads` writers hammering one shared series — the
/// contended case the sharded atomic buckets exist for.
fn concurrent_record_ns(threads: u64, iters: u64) -> f64 {
    let s = Arc::new(MetricSeries::new());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..iters {
                    s.record(std::hint::black_box(((i + t * 17) % 1000) as f64 + 0.5));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
    std::hint::black_box(s.count());
    t0.elapsed().as_secs_f64() * 1e9 / (threads * iters) as f64
}

/// ns per `SloTracker::observe` on a default-window tracker.
fn slo_observe_ns(iters: u64) -> f64 {
    let t = SloTracker::new(SloConfig::default());
    let t0 = Instant::now();
    for i in 0..iters {
        t.observe(std::hint::black_box(i % 100 != 0));
    }
    std::hint::black_box(t.state().total);
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn toy_model() -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 3,
    }
}

/// Median ms/step of the distributed trainer under the given tracer; returns
/// `(ms_per_step, spans_recorded_in_last_run)`.
fn bench_train(tracer: &Tracer) -> (f64, usize) {
    let cfg = toy_model();
    let mut rng = Rng::seed_from(9);
    let samples: Vec<TrainSample> = (0..8)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let source = InMemorySource { samples };
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
    let topo = SwipeTopology::new(2, 4, 1, 2, 2);
    let n_steps = 2usize;
    let swipe_cfg = SwipeConfig {
        topo,
        gas: 2,
        n_steps,
        lr: 1e-3,
        seed: 5,
        adamw: AdamWConfig::default(),
        tracer: tracer.clone(),
        ..SwipeConfig::new(topo)
    };
    let schedule: Vec<Vec<Vec<usize>>> =
        (0..n_steps).map(|s| (0..2).map(|d| vec![2 * s + d, (2 * s + d + 3) % 8]).collect()).collect();
    let reference = AerisModel::new(cfg);
    let mut spans = 0usize;
    let secs = time_median(5, || {
        let _ = tracer.take_spans();
        let report =
            DistributedTrainer::train(&reference, &swipe_cfg, &source, &schedule, &weights)
                .expect("fault-free run");
        std::hint::black_box(&report.losses);
        spans = tracer.span_count();
    });
    (secs * 1e3 / n_steps as f64, spans)
}

/// Median requests/s through the serving engine under the given tracer.
fn bench_serve(tracer: &Tracer) -> f64 {
    // Untrained weights: serving cost is architecture-dependent only.
    let cfg = toy_model_config(&toy_vars());
    let channels = cfg.channels;
    let tokens = cfg.tokens();
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    let fc = Arc::new(Forecaster {
        model: AerisModel::new(cfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.1, second_order: false },
        ),
    });
    let n_reqs = 6usize;
    let secs = time_median(3, || {
        let engine = ServeEngine::start_traced(
            Arc::clone(&fc),
            ServeConfig { workers: 2, max_batch: 4, ..ServeConfig::default() },
            tracer.clone(),
        );
        let tickets: Vec<_> = (0..n_reqs)
            .map(|i| {
                let seed = i as u64;
                engine
                    .submit(ForecastRequest {
                        init: Tensor::randn(&[tokens, channels], &mut Rng::seed_from(seed ^ 0xA15)),
                        forcings: Forcings::Zeros { channels: 3 },
                        steps: 2,
                        n_members: 2,
                        seed,
                        deadline: None,
                        tenant: None,
                        tier: None,
                    })
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("forecast ok");
        }
        engine.shutdown();
    });
    n_reqs as f64 / secs
}

fn overhead_pct(off: f64, on: f64) -> f64 {
    (on - off) / off * 100.0
}

fn main() {
    println!("AERIS observability overhead benchmark");

    let disabled = Tracer::default();
    let enabled = Tracer::new(true);

    // 1. span-site cost
    let iters = 5_000_000u64;
    let site_off = span_site_ns(&disabled, iters);
    let site_on_t = Tracer::new(true);
    let site_on = span_site_ns(&site_on_t, 1_000_000);
    println!("span site: disabled {site_off:6.2} ns/call, enabled {site_on:6.2} ns/call");

    // 2. histogram record path (median of 3 runs per variant)
    let med3 = |f: &dyn Fn() -> f64| {
        let mut v = [f(), f(), f()];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[1]
    };
    let iters = 2_000_000u64;
    let rec = med3(&|| series_record_ns(iters));
    let rec_mutex = med3(&|| mutex_vec_record_ns(iters));
    let rec_mt = med3(&|| concurrent_record_ns(4, iters / 4));
    println!(
        "series record: histogram {rec:6.2} ns, mutex+vec baseline {rec_mutex:6.2} ns, \
         4-thread shared {rec_mt:6.2} ns/record ({} B fixed/series)",
        Histogram::MEMORY_BYTES
    );

    // 3. SLO observe path
    let slo_ns = med3(&|| slo_observe_ns(1_000_000));
    println!("slo observe: {slo_ns:6.2} ns/outcome");

    // 4. trainer
    let (train_off, _) = bench_train(&disabled);
    let (train_on, train_spans) = bench_train(&enabled);
    let train_pct = overhead_pct(train_off, train_on);
    println!(
        "swipe train: disabled {train_off:7.2} ms/step, enabled {train_on:7.2} ms/step \
         ({train_pct:+.2}%, {train_spans} spans/run)"
    );

    // 5. serving
    let serve_off = bench_serve(&Tracer::default());
    let serve_on = bench_serve(&Tracer::new(true));
    let serve_pct = overhead_pct(serve_off, serve_on);
    println!(
        "serve: disabled {serve_off:7.1} req/s, enabled {serve_on:7.1} req/s ({serve_pct:+.2}%)"
    );

    let out = format!(
        "{{\n  \"span_site_ns\": {{\"disabled\": {site_off:.3}, \"enabled\": {site_on:.3}}},\n  \
         \"histogram\": {{\"record_ns\": {rec:.3}, \"mutex_vec_record_ns\": {rec_mutex:.3}, \
         \"concurrent_record_ns\": {rec_mt:.3}, \"memory_bytes\": {mem}, \
         \"quantile_rel_error_bound\": {bound}}},\n  \
         \"slo\": {{\"observe_ns\": {slo_ns:.3}}},\n  \
         \"swipe_train\": {{\"disabled_ms_per_step\": {train_off:.3}, \"enabled_ms_per_step\": {train_on:.3}, \
         \"overhead_pct\": {train_pct:.3}, \"spans_per_run\": {train_spans}}},\n  \
         \"serve\": {{\"disabled_req_per_s\": {serve_off:.3}, \"enabled_req_per_s\": {serve_on:.3}, \
         \"overhead_pct\": {serve_pct:.3}}}\n}}\n",
        mem = Histogram::MEMORY_BYTES,
        bound = MAX_QUANTILE_REL_ERROR,
    );
    std::fs::write("BENCH_obs.json", &out).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
