//! Regenerates Fig. 6: cyclone track and intensity forecasts at decreasing
//! lead times (paper: Hurricane Laura at 7/5/3 days before landfall).
//!
//! Truth positions come from the simulator's kinematic cyclone state (the
//! "best track"); member storms are located with guided (matched-low)
//! tracking around the best track, the standard verification practice.

use aeris_bench::*;
use aeris_evaluation::{track_cyclone_guided, CycloneTrack};
use aeris_tensor::Tensor;

fn main() {
    let scale = RunScale::from_env();
    let seed = 2020;
    let n_steps = 460;
    header("Fig 6: cyclone track & intensity by lead time");
    let scenario = standard_scenario();
    let genesis_hours = scenario.cyclones.last().unwrap().genesis_hours;
    let ds = build_dataset(seed, scenario.clone(), n_steps);

    let genesis_step = (genesis_hours / 6.0) as usize;
    let verify_steps = 24usize; // 6 days
    println!("test cyclone genesis at dataset step {genesis_step} (hour {genesis_hours})");

    // Best track: replay the truth simulator and read the kinematic cyclone
    // center each step.
    let mut sim = sim_at(seed, scenario.clone(), genesis_step);
    let mut guide: Vec<(f32, f32)> = Vec::with_capacity(verify_steps);
    let g = ds.grid;
    for _ in 0..verify_steps {
        sim.step();
        let cy = sim.cyclones()[scenario.cyclones.len() - 1];
        let r = (cy.row.round() as usize).min(g.nlat - 1);
        let c = cy.col.round() as usize % g.nlon;
        guide.push((g.lat_deg(r), g.lon_deg(c)));
    }

    // Truth track: matched lows on the recorded truth states.
    let truth_states: Vec<Tensor> =
        (1..=verify_steps).map(|k| ds.state(genesis_step + k).clone()).collect();
    let truth_track = track_cyclone_guided(&truth_states, g, &ds.vars, &guide, 900.0);
    println!("\ntruth (best-track-matched), 6-hourly from genesis:");
    for (k, p) in truth_track.points.iter().enumerate().step_by(4) {
        println!(
            "  day {:>4.1}: lat {:>6.1} lon {:>6.1}  mslp {:>7.1} hPa  max wind {:>5.1} m/s",
            (k + 1) as f64 / 4.0,
            p.lat,
            p.lon,
            p.mslp,
            p.max_wind
        );
    }
    println!("truth minimum central pressure: {:.1} hPa", truth_track.min_mslp());

    println!("\ntraining AERIS…");
    let aeris = train_aeris(&ds, &scale, seed);

    for lead_days in [7usize, 5, 3] {
        let i0 = genesis_step.saturating_sub(lead_days * 4).max(1);
        let steps = genesis_step + verify_steps - i0;
        let x0 = ds.state(i0).clone();
        let forc = forcing_provider(seed, ds.time(i0));
        let ens = aeris.ensemble(&x0, &forc, steps, scale.members, 600 + lead_days as u64);

        let offset = genesis_step - i0;
        let mut tracks: Vec<CycloneTrack> = Vec::new();
        for member in &ens.members {
            let states: Vec<Tensor> = (offset + 1..offset + 1 + verify_steps)
                .map(|k| member[k - 1].clone())
                .collect();
            tracks.push(track_cyclone_guided(&states, g, &ds.vars, &guide, 900.0));
        }
        let mean_err: f32 = tracks
            .iter()
            .map(|t| t.mean_track_error_km(&truth_track))
            .sum::<f32>()
            / tracks.len() as f32;
        let mean_min_mslp: f32 =
            tracks.iter().map(|t| t.min_mslp()).sum::<f32>() / tracks.len() as f32;
        let best_err = tracks
            .iter()
            .map(|t| t.mean_track_error_km(&truth_track))
            .fold(f32::INFINITY, f32::min);
        println!(
            "\nlead {lead_days} d: ensemble mean track error {mean_err:>7.0} km (best member {best_err:>6.0} km)"
        );
        println!(
            "          ensemble mean min MSLP {mean_min_mslp:>7.1} hPa vs truth {:>7.1} hPa",
            truth_track.min_mslp()
        );
    }
    println!("\nPaper shape: track errors shrink with lead time; the intensification");
    println!("(central pressure drop) is captured at the shorter leads.");
}
