//! Regenerates Fig. 5b: heatwave ensemble forecast over the event location
//! (paper: London, August 2020, lead > 1 week). Prints the truth T2m series,
//! the ensemble envelope, the closest member, and the exceedance fraction.

use aeris_bench::*;
use aeris_evaluation::heatwave::{exceedance_fraction, point_series};
use aeris_tensor::Tensor;

fn main() {
    let scale = RunScale::from_env();
    let seed = 2020;
    let n_steps = 460;
    header("Fig 5b: heatwave ensemble forecast at the event location");
    let scenario = standard_scenario();
    let hw = *scenario.heatwaves.last().unwrap();
    let ds = build_dataset(seed, scenario.clone(), n_steps);
    let onset_step = (hw.onset_hours / 6.0) as usize;
    let lead_steps = 8 * 4; // launch 8 days before onset
    let i0 = onset_step.saturating_sub(lead_steps);
    let horizon = lead_steps + (hw.duration_hours / 6.0) as usize + 8;
    println!("heatwave onset at step {onset_step}; forecast launched {lead_steps} steps earlier");

    println!("training AERIS…");
    let aeris = train_aeris(&ds, &scale, seed);

    let t2m = ds.vars.index_of("t2m").unwrap();
    let x0 = ds.state(i0).clone();
    let forc = forcing_provider(seed, ds.time(i0));
    let ens = aeris.ensemble(&x0, &forc, horizon, scale.members, 51);

    let truth_states: Vec<Tensor> =
        (1..=horizon).map(|k| ds.state(i0 + k).clone()).collect();
    let truth = point_series(&truth_states, ds.grid, hw.lat, hw.lon, t2m);
    let member_series: Vec<Vec<f32>> = ens
        .members
        .iter()
        .map(|m| point_series(m, ds.grid, hw.lat, hw.lon, t2m))
        .collect();

    // Closest member by point-series RMSE.
    let rmse_of = |s: &Vec<f32>| {
        (s.iter().zip(&truth).map(|(a, b)| ((a - b) * (a - b)) as f64).sum::<f64>()
            / truth.len() as f64)
            .sqrt()
    };
    let closest = member_series.iter().map(rmse_of).enumerate().fold(
        (0usize, f64::INFINITY),
        |acc, (i, e)| if e < acc.1 { (i, e) } else { acc },
    );

    println!("\nT2m at ({:.1}N, {:.1}E), daily:", hw.lat, hw.lon);
    println!("{:>6}{:>9}{:>9}{:>9}{:>9}{:>9}", "day", "truth", "ens-min", "ens-mean", "ens-max", "closest");
    for k in (3..horizon).step_by(4) {
        let vals: Vec<f32> = member_series.iter().map(|s| s[k]).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
        let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        println!(
            "{:>6.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}{:>9.1}",
            (k + 1) as f64 / 4.0,
            truth[k],
            min,
            mean,
            max,
            member_series[closest.0][k]
        );
    }

    // Exceedance: did the ensemble catch the anomalous warmth? Threshold =
    // pre-event truth level + 2 K, tested during the event window.
    let baseline = truth[..lead_steps.min(truth.len())].iter().sum::<f32>()
        / lead_steps.min(truth.len()) as f32;
    let t0 = lead_steps;
    let t1 = (lead_steps + (hw.duration_hours / 6.0) as usize).min(horizon);
    let truth_peak = truth[t0..t1].iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let frac = exceedance_fraction(&member_series, baseline + 2.0, t0, t1);
    println!("\npre-event baseline {baseline:.1} K; truth event peak {truth_peak:.1} K");
    println!(
        "fraction of members exceeding baseline+2K during the event: {:.0}%",
        frac * 100.0
    );
    println!("\nPaper shape: members capture the sharp rise then return to climatology,");
    println!("with the ensemble mean tracking the event at > 1 week lead.");
}
