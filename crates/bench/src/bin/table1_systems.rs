//! Regenerates Table I: system configurations used in the evaluation.

use aeris_perfmodel::{AURORA, LUMI};

fn main() {
    println!("Table I: System configuration for performance evaluations");
    println!("{:<34}{:>16}{:>16}", "", "Aurora", "LUMI");
    let rows: Vec<(&str, String, String)> = vec![
        ("GPU", AURORA.gpu.into(), LUMI.gpu.into()),
        (
            "GPUs (tiles) / node",
            format!("{}({})", AURORA.gpus_per_node, AURORA.tiles_per_node),
            format!("{}({})", LUMI.gpus_per_node, LUMI.tiles_per_node),
        ),
        ("GPU Memory (GB)", format!("{}", AURORA.gpu_memory_gb), format!("{}", LUMI.gpu_memory_gb)),
        (
            "GPU Memory BW (TB/s)",
            format!("{}", AURORA.gpu_mem_bw_tbs),
            format!("{}", LUMI.gpu_mem_bw_tbs),
        ),
        ("NICs / node", format!("{}", AURORA.nics_per_node), format!("{}", LUMI.nics_per_node)),
        (
            "Network BW / direction (GB/s)",
            format!("{}", AURORA.network_bw_gbs),
            format!("{}", LUMI.network_bw_gbs),
        ),
        (
            "Scale-up BW / direction (GB/s)",
            format!("{}", AURORA.scaleup_bw_gbs),
            format!("{}", LUMI.scaleup_bw_gbs),
        ),
        (
            "Peak BF16 TFLOPS / tile",
            format!("{}", AURORA.peak_bf16_tflops_per_tile),
            format!("{}", LUMI.peak_bf16_tflops_per_tile),
        ),
        ("Collective library", AURORA.ccl.into(), LUMI.ccl.into()),
        (
            "Total nodes (tiles) scaled",
            format!("{} ({})", AURORA.max_nodes, AURORA.tiles(AURORA.max_nodes)),
            format!("{} ({})", LUMI.max_nodes, LUMI.tiles(LUMI.max_nodes)),
        ),
    ];
    for (k, a, l) in rows {
        println!("{k:<34}{a:>16}{l:>16}");
    }
}
