//! Regenerates Fig. 4 (top): strong scaling of the 40B configuration by
//! gradient-accumulation steps (GBS 1960) and by window parallelism
//! (GBS 140), vs the paper's 81.6% and 100/87/64%.

use aeris_perfmodel::configs::config;
use aeris_perfmodel::{strong_scaling_gas, strong_scaling_wp, EffModel, AURORA};

fn main() {
    let eff = EffModel::default();
    let c = config("40B");

    println!("Strong scaling via GAS (GBS = 1960):");
    println!("{:>6}{:>8}{:>8}{:>14}{:>12}", "DP", "GAS", "nodes", "images/sec", "efficiency");
    let pts = strong_scaling_gas(c, &AURORA, 1960, &[2, 4, 7, 14], &eff);
    for p in &pts {
        let dp = p.prediction.dp;
        println!(
            "{:>6}{:>8}{:>8}{:>14.1}{:>12.3}",
            dp,
            1960 / dp,
            p.nodes,
            p.prediction.samples_per_s,
            p.efficiency
        );
    }
    println!("Paper: 81.6% strong-scaling efficiency; losses mainly from the pipeline bubble.");

    println!("\nStrong scaling via WP (GBS = 140, DP = 1):");
    println!("{:>6}{:>8}{:>14}{:>12}{:>12}", "WP", "nodes", "images/sec", "efficiency", "speedup");
    let pts = strong_scaling_wp(c, &AURORA, 140, &[36, 64, 144], &eff);
    let base = pts[0].prediction.samples_per_s;
    for (wp, p) in [36usize, 64, 144].iter().zip(&pts) {
        println!(
            "{:>6}{:>8}{:>14.1}{:>12.3}{:>12.2}",
            wp,
            p.nodes,
            p.prediction.samples_per_s,
            p.efficiency,
            p.prediction.samples_per_s / base
        );
    }
    println!("Paper: 100% / 87% / 64%; WP=144 is 4x the nodes of WP=36 for a 2.4x speedup.");
}
