//! Data-assimilation benchmark: what does observation guidance cost, and
//! what does it buy?
//!
//! Two measurements, emitted to `BENCH_assim.json`:
//!
//! 1. **Guided-step overhead** — ms per `forecast_step` with guidance off
//!    (plain sampler path) vs on (sparse nudge + exponential-integrator
//!    step), at several observation densities. The nudge touches only
//!    observed sites, so overhead should stay small and grow mildly with
//!    density.
//! 2. **RMSE vs density** — the `aeris_evaluation::analysis_quality` sweep:
//!    guided vs unguided ensemble-mean analysis RMSE as the station network
//!    densifies, at a fixed noise level.
//!
//! ```bash
//! cargo run --release -p aeris-bench --bin assim
//! ```

use aeris_assim::{nowcast_member, GuidanceSchedule, ObsOperator};
use aeris_bench::{header, toy_model_config, toy_vars};
use aeris_core::{AerisModel, Forecaster};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::{Grid, NormStats};
use aeris_evaluation::{analysis_quality, AssimEvalConfig};
use aeris_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Instant;

fn forecaster() -> Forecaster {
    let cfg = toy_model_config(&toy_vars());
    let channels = cfg.channels;
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Forecaster {
        model: AerisModel::new(cfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.0, second_order: true },
        ),
    }
}

/// Median seconds per call of `f` over `reps` timed calls (one warmup).
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let full = std::env::var("AERIS_FULL").map(|v| v == "1").unwrap_or(false);
    let reps = if full { 15 } else { 7 };
    let fc = forecaster();
    let cfg = &fc.model.cfg;
    let (tokens, channels) = (cfg.tokens(), cfg.channels);
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let mut rng = Rng::seed_from(41);
    let background = Arc::new(Tensor::randn(&[tokens, channels], &mut rng));
    let truth = background.add(&Tensor::randn(&[tokens, channels], &mut rng).scale(0.5));
    let forc = Tensor::zeros(&[tokens, 3]);

    // 1. guided-step overhead vs observation density.
    header("Guided-step overhead vs observation density");
    println!("{:<16}{:>12}{:>12}{:>12}", "stations", "plain ms", "guided ms", "overhead");
    let noise = 0.5f32;
    let base_op = ObsOperator::stations(&grid, 8, &[0, 1], &vec![noise; channels], 5);
    let base_obs = Arc::new(base_op.observe(&truth, 0.0, 6));
    let plain_ms = time_median(reps, || {
        let a = nowcast_member(
            &fc, &background, &forc, &base_obs, GuidanceSchedule::off(), 9, 0,
        );
        std::hint::black_box(&a);
    }) * 1e3;
    let mut overhead_rows = Vec::new();
    for n_stations in [8usize, 32, tokens / 2, tokens] {
        let op = ObsOperator::stations(&grid, n_stations, &[0, 1], &vec![noise; channels], 5);
        let obs = Arc::new(op.observe(&truth, 0.0, 6));
        let guided_ms = time_median(reps, || {
            let a = nowcast_member(
                &fc, &background, &forc, &obs, GuidanceSchedule::Constant(0.05), 9, 0,
            );
            std::hint::black_box(&a);
        }) * 1e3;
        let pct = (guided_ms - plain_ms) / plain_ms * 100.0;
        println!("{n_stations:<16}{plain_ms:>12.3}{guided_ms:>12.3}{pct:>+11.2}%");
        overhead_rows.push(format!(
            "{{\"stations\": {n_stations}, \"plain_ms\": {plain_ms:.4}, \
             \"guided_ms\": {guided_ms:.4}, \"overhead_pct\": {pct:.3}}}"
        ));
    }

    // 2. analysis RMSE vs density (fixed noise).
    header("Analysis RMSE vs observation density");
    let sweep = AssimEvalConfig {
        densities: vec![8, 32, tokens / 2, tokens],
        noise_levels: vec![0.3],
        channels_obs: vec![0, 1],
        schedule: GuidanceSchedule::Constant(0.05),
        n_members: if full { 4 } else { 2 },
        seed: 23,
    };
    let pts = analysis_quality(&fc, &grid, &background, &truth, &forc, &sweep);
    println!(
        "{:<16}{:>14}{:>14}{:>12}",
        "stations", "guided RMSE", "unguided RMSE", "ratio"
    );
    let mut rmse_rows = Vec::new();
    for p in &pts {
        println!(
            "{:<16}{:>14.4}{:>14.4}{:>12.3}",
            p.n_stations,
            p.guided_rmse,
            p.unguided_rmse,
            p.skill_ratio()
        );
        rmse_rows.push(format!(
            "{{\"stations\": {}, \"noise_std\": {:.3}, \"guided_rmse\": {:.5}, \
             \"unguided_rmse\": {:.5}, \"guided_spread\": {:.5}, \"unguided_spread\": {:.5}}}",
            p.n_stations,
            p.noise_std,
            p.guided_rmse,
            p.unguided_rmse,
            p.guided_spread,
            p.unguided_spread
        ));
    }

    let out = format!(
        "{{\n  \"guided_step_overhead\": [\n    {}\n  ],\n  \"rmse_vs_density\": [\n    {}\n  ]\n}}\n",
        overhead_rows.join(",\n    "),
        rmse_rows.join(",\n    "),
    );
    std::fs::write("BENCH_assim.json", &out).expect("write BENCH_assim.json");
    println!("wrote BENCH_assim.json");
}
