//! Demonstrates Fig. 2 quantitatively: the SWiPe communication pattern.
//! Runs the thread-rank runtime at several WP degrees and prints measured
//! per-rank traffic by class, validating M = b·s·h/SP/WP and the invariant
//! gradient-allreduce volume, plus activation memory and sliced I/O.

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_nn::AdamWConfig;
use aeris_swipe::data::StoreBackedSource;
use aeris_swipe::{CommClass, DistributedTrainer, RankCoords, SwipeConfig, SwipeTopology};
use aeris_tensor::{Rng, Tensor};

fn main() {
    let cfg = AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 11,
    };
    let mut rng = Rng::seed_from(5);
    let samples: Vec<TrainSample> = (0..4)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);

    println!("SWiPe measured traffic (1 step, GAS=2, PP=4, SP=2), per block-stage rank:");
    println!(
        "{:>4}{:>8}{:>14}{:>12}{:>14}{:>12}{:>16}",
        "WP", "ranks", "alltoall(B)", "p2p(B)", "allreduce(B)", "act(elems)", "input I/O(B)"
    );
    for wp_b in [1usize, 2, 4] {
        let topo = SwipeTopology::new(1, 4, 1, wp_b, 2);
        let swipe_cfg = SwipeConfig {
            topo,
            gas: 2,
            n_steps: 1,
            lr: 1e-3,
            seed: 9,
            adamw: AdamWConfig::default(),
            ..SwipeConfig::new(topo)
        };
        let sched = vec![vec![vec![0usize, 1]]];
        let source = StoreBackedSource::from_samples(
            &samples, cfg.window.0, cfg.window.1, cfg.grid_h, cfg.grid_w,
        );
        let reference = AerisModel::new(cfg.clone());
        let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");
        let block_rank = topo.rank_of(RankCoords { dp: 0, stage: 1, wp_row: 0, wp_col: 0, sp: 0 });
        println!(
            "{:>4}{:>8}{:>14}{:>12}{:>14}{:>12}{:>16}",
            wp_b,
            topo.world_size(),
            report.traffic.rank_total(block_rank, CommClass::AllToAll),
            report.traffic.rank_total(block_rank, CommClass::P2p),
            report.traffic.rank_total(block_rank, CommClass::AllReduce),
            report.max_activation_elems,
            source.prev.bytes_read() / (wp_b as u64 * 2), // per stage-0 rank
        );
    }
    println!("\nExpected (paper §V-A): alltoall and p2p per rank fall as 1/WP;");
    println!("gradient allreduce volume is unchanged; activation memory and");
    println!("per-rank sliced input I/O fall as 1/WP.");
}
