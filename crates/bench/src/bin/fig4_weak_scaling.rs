//! Regenerates Fig. 4 (bottom + 4b): weak scaling in images/sec and
//! sustained FLOPS as data parallelism grows at fixed model-parallel
//! settings.

use aeris_perfmodel::{weak_scaling, EffModel, AURORA, LUMI, PAPER_CONFIGS};

fn main() {
    let eff = EffModel::default();
    for c in &PAPER_CONFIGS {
        let machine = if c.name.ends_with("(L)") { &LUMI } else { &AURORA };
        let max_dp = c.dp.max(1);
        let mut dps = vec![1usize];
        while *dps.last().unwrap() * 2 <= max_dp {
            dps.push(dps.last().unwrap() * 2);
        }
        if *dps.last().unwrap() != max_dp {
            dps.push(max_dp);
        }
        let pts = weak_scaling(c, machine, &dps, &eff);
        println!("\n{} on {} (WP={}, PP={}, GAS={}):", c.name, machine.name, c.wp(), c.pp, c.gas);
        println!(
            "{:>8}{:>8}{:>14}{:>12}{:>12}",
            "DP", "nodes", "images/sec", "EF(sust)", "weak eff"
        );
        for (dp, p) in dps.iter().zip(&pts) {
            println!(
                "{:>8}{:>8}{:>14.1}{:>12.2}{:>12.3}",
                dp,
                p.nodes,
                p.prediction.samples_per_s,
                p.prediction.sustained_flops / 1e18,
                p.efficiency
            );
        }
    }
    println!("\nPaper: 40B maintains ~95% weak-scaling efficiency to 10,080 nodes, 10.21 EF sustained.");
}
