//! Elastic-recovery benchmark: what does surviving crashes cost?
//!
//! Three measurements, emitted to `BENCH_recovery.json`:
//!
//! 1. **Fault-hook overhead** — ms/step of the distributed trainer with no
//!    fault plan vs an installed-but-empty plan (hooks armed, nothing
//!    fires). This is the number the "<2% fault-hook overhead" contract is
//!    about.
//! 2. **Steps lost per crash** — a supervised run whose replicas all die
//!    mid-run: how many steps of work the restart re-executes, given the
//!    checkpoint cadence.
//! 3. **Re-shard cost** — wall time of the donor→rejoiner state transfer at
//!    an in-run rejoin boundary, from the traced Recovery spans.
//!
//! ```bash
//! cargo run --release -p aeris-bench --bin recovery
//! ```

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_obs::{SpanCategory, Tracer};
use aeris_swipe::data::InMemorySource;
use aeris_swipe::{
    supervise, CheckpointConfig, DistributedTrainer, FaultPlan, RecoveryConfig, SwipeConfig,
    SwipeTopology,
};
use aeris_tensor::{Rng, Tensor};
use std::time::Instant;

/// Median seconds per call of `f` over `reps` timed calls (one warmup).
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn toy_model() -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 3,
    }
}

struct Workbench {
    reference: AerisModel,
    source: InMemorySource,
    weights: Tensor,
    topo: SwipeTopology,
}

fn workbench() -> Workbench {
    let cfg = toy_model();
    let mut rng = Rng::seed_from(9);
    let samples: Vec<TrainSample> = (0..8)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
    let reference = AerisModel::new(cfg);
    Workbench {
        reference,
        source: InMemorySource { samples },
        weights,
        topo: SwipeTopology::new(2, 4, 1, 1, 1),
    }
}

fn sched(n_steps: usize, dp: usize) -> Vec<Vec<Vec<usize>>> {
    (0..n_steps).map(|s| (0..dp).map(|d| vec![(2 * s + d) % 8]).collect()).collect()
}

/// Median ms/step with the given fault plan installed.
fn bench_train(wb: &Workbench, faults: Option<FaultPlan>, n_steps: usize) -> f64 {
    let cfg = SwipeConfig { n_steps, faults, ..SwipeConfig::new(wb.topo) };
    let schedule = sched(n_steps, wb.topo.dp);
    let secs = time_median(15, || {
        let report =
            DistributedTrainer::train(&wb.reference, &cfg, &wb.source, &schedule, &wb.weights)
                .expect("bench run");
        std::hint::black_box(&report.losses);
    });
    secs * 1e3 / n_steps as f64
}

fn main() {
    println!("AERIS elastic-recovery benchmark");
    let wb = workbench();

    // 1. fault-hook overhead: no plan vs armed-but-empty plan.
    let n_steps = 4usize;
    let off = bench_train(&wb, None, n_steps);
    let on = bench_train(&wb, Some(FaultPlan::new()), n_steps);
    let hook_pct = (on - off) / off * 100.0;
    println!(
        "fault hooks: none {off:7.2} ms/step, armed {on:7.2} ms/step ({hook_pct:+.2}%)"
    );

    // 2. steps lost per crash: both replicas die at step 3; the supervisor
    //    resumes from the step-2 checkpoint (cadence 2) and re-runs one step.
    let dir = std::env::temp_dir().join(format!("aeris_bench_recovery_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let faulty = SwipeConfig {
        n_steps,
        faults: Some(FaultPlan::new().crash_rank(1, 3).crash_rank(5, 3)),
        ..SwipeConfig::new(wb.topo)
    };
    let rcfg = RecoveryConfig {
        max_restarts: 2,
        checkpoint: CheckpointConfig { dir: dir.clone(), every: 2 },
    };
    let t0 = Instant::now();
    let outcome = supervise(
        &wb.reference, &faulty, &wb.source, &sched(n_steps, wb.topo.dp), &wb.weights, &rcfg,
    )
    .expect("supervised run");
    let supervised_secs = t0.elapsed().as_secs_f64();
    let steps_per_crash = outcome.steps_lost as f64 / outcome.restarts.max(1) as f64;
    println!(
        "supervisor: {} restart(s), {} step(s) lost ({steps_per_crash:.1}/crash), {:.0} ms total",
        outcome.restarts,
        outcome.steps_lost,
        supervised_secs * 1e3
    );
    std::fs::remove_dir_all(&dir).ok();

    // 3. re-shard cost at an in-run rejoin boundary, from Recovery spans.
    let tracer = Tracer::enabled();
    let rejoin_cfg = SwipeConfig {
        n_steps,
        faults: Some(FaultPlan::new().crash_rank(5, 1).restart_rank(5, 2)),
        tracer: tracer.clone(),
        ..SwipeConfig::new(wb.topo)
    };
    DistributedTrainer::train(
        &wb.reference, &rejoin_cfg, &wb.source, &sched(n_steps, wb.topo.dp), &wb.weights,
    )
    .expect("rejoin run");
    let spans = tracer.snapshot_spans();
    let reshard_ms = |label: &str| {
        spans
            .iter()
            .filter(|s| s.category == SpanCategory::Recovery && s.label == label)
            .map(|s| s.dur_ns())
            .max()
            .unwrap_or(0) as f64
            / 1e6
    };
    // Sends/recvs run concurrently across ranks: the slowest span is the
    // wall-clock cost of the whole transfer.
    let send_ms = reshard_ms("reshard_send");
    let recv_ms = reshard_ms("reshard_recv");
    println!("re-shard: send {send_ms:.3} ms, recv {recv_ms:.3} ms (slowest rank)");

    let out = format!(
        "{{\n  \"fault_hooks\": {{\"none_ms_per_step\": {off:.3}, \"armed_ms_per_step\": {on:.3}, \
         \"overhead_pct\": {hook_pct:.3}}},\n  \
         \"supervisor\": {{\"restarts\": {}, \"steps_lost\": {}, \"steps_lost_per_crash\": {steps_per_crash:.3}, \
         \"wall_ms\": {:.3}}},\n  \
         \"reshard\": {{\"send_ms\": {send_ms:.4}, \"recv_ms\": {recv_ms:.4}}}\n}}\n",
        outcome.restarts,
        outcome.steps_lost,
        supervised_secs * 1e3,
    );
    std::fs::write("BENCH_recovery.json", &out).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}
