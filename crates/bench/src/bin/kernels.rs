//! Compute-substrate benchmark: GFLOP/s for the GEMM kernels and the fused
//! windowed-attention op, plus ms per training step, each at 1, 2, and N
//! worker threads (N = the machine's available parallelism). Emits
//! `BENCH_kernels.json` in the working directory so later changes have a perf
//! trajectory to regress against.
//!
//! Thread counts are switched in-process with `rayon::set_thread_override`
//! (equivalent to launching with `AERIS_THREADS=n`); the kernels are
//! bitwise-deterministic across counts, so every row measures identical work.
//!
//! Every timed repetition is recorded into an `aeris-obs` [`MetricSeries`]
//! registered on a shared [`Tracer`], so besides the best-of summary in
//! `BENCH_kernels.json` the full rep distributions export to
//! `BENCH_kernels.prom` in Prometheus text format — the same exporter path
//! the trainer and the serving engine use.

use aeris_autodiff::{Tape, WindowAttnPlan};
use aeris_core::{AerisConfig, AerisModel, TrainSample, Trainer, TrainerConfig};
use aeris_earthsim::Grid;
use aeris_nn::RopeTable;
use aeris_obs::{MetricSeries, Tracer};
use aeris_tensor::{
    matmul, matmul_bf16, matmul_nt, matmul_nt_bf16, matmul_tn, matmul_tn_bf16, Rng, Tensor,
};
use std::time::Instant;

/// Thread counts to sweep: 1, 2, and the machine width, deduplicated.
fn thread_counts() -> Vec<usize> {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, 2, n];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`reps` seconds per call of `f`, after one warmup call. Each timed
/// rep is also recorded (in milliseconds) into `series` for the Prometheus
/// export.
fn time_best(reps: usize, series: &MetricSeries, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let secs = t0.elapsed().as_secs_f64();
        series.record(secs * 1e3);
        best = best.min(secs);
    }
    best
}

struct GemmResult {
    name: &'static str,
    dims: (usize, usize, usize),
    /// Operand storage: `"f32"` or `"bf16"` (accumulation is always f32).
    dtype: &'static str,
    /// `(threads, gflops)` rows.
    rows: Vec<(usize, f64)>,
}

impl GemmResult {
    fn json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(t, gf)| format!("{{\"threads\": {t}, \"gflops\": {gf:.3}}}"))
            .collect();
        format!(
            "{{\"m\": {}, \"n\": {}, \"k\": {}, \"dtype\": \"{}\", \"rows\": [{}]}}",
            self.dims.0,
            self.dims.1,
            self.dims.2,
            self.dtype,
            rows.join(", ")
        )
    }
}

/// Sweep `kernel` (which must run one full GEMM of `dims` per call) over the
/// thread counts. Operand construction stays outside the closure so only the
/// multiply is timed; reps is scaled so tiny hot shapes still get stable
/// best-of numbers.
fn bench_gemm(
    tracer: &Tracer,
    name: &'static str,
    dims: (usize, usize, usize),
    dtype: &'static str,
    kernel: impl Fn(),
) -> GemmResult {
    let (m, n, k) = dims;
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let reps = if flops < 1e8 { 20 } else { 5 };
    let mut rows = Vec::new();
    for &t in &thread_counts() {
        rayon::set_thread_override(Some(t));
        let series = tracer.series(&format!("kernels_{name}_{t}t_ms"));
        let secs = time_best(reps, &series, &kernel);
        rows.push((t, flops / secs / 1e9));
    }
    rayon::set_thread_override(None);
    GemmResult { name, dims, dtype, rows }
}

fn main() {
    let mut rng = Rng::seed_from(42);
    let tracer = Tracer::default();
    println!("AERIS kernel benchmark — threads swept: {:?}", thread_counts());

    // --- GEMM kernels (sizes above the parallel threshold), f32 and bf16
    //     storage through the same packed microkernel ---
    let s = 256;
    let a = Tensor::randn(&[s, s], &mut rng);
    let b = Tensor::randn(&[s, s], &mut rng);
    let (ah, bh) = (a.to_bf16(), b.to_bf16());
    let gemms = vec![
        bench_gemm(&tracer, "matmul", (s, s, s), "f32", || {
            std::hint::black_box(matmul(&a, &b));
        }),
        bench_gemm(&tracer, "matmul_nt", (s, s, s), "f32", || {
            std::hint::black_box(matmul_nt(&a, &b));
        }),
        bench_gemm(&tracer, "matmul_tn", (s, s, s), "f32", || {
            std::hint::black_box(matmul_tn(&a, &b));
        }),
        bench_gemm(&tracer, "matmul_bf16", (s, s, s), "bf16", || {
            std::hint::black_box(matmul_bf16(&ah, &bh));
        }),
        bench_gemm(&tracer, "matmul_nt_bf16", (s, s, s), "bf16", || {
            std::hint::black_box(matmul_nt_bf16(&ah, &bh));
        }),
        bench_gemm(&tracer, "matmul_tn_bf16", (s, s, s), "bf16", || {
            std::hint::black_box(matmul_tn_bf16(&ah, &bh));
        }),
    ];
    for g in &gemms {
        let cells: Vec<String> =
            g.rows.iter().map(|(t, gf)| format!("{t}T {gf:7.2}")).collect();
        println!("{:<16} {}x{}x{}  GFLOP/s: {}", g.name, g.dims.0, g.dims.1, g.dims.2, cells.join("  "));
    }

    // --- model hot shapes (toy_default geometry: dim 64, 4 heads × head_dim
    //     16, ffn 128, 8×8 windows over a 32×64 grid → 2048 tokens, window
    //     length 64): the projection / attention-score / MLP GEMMs a training
    //     step actually issues ---
    let (tokens_hot, dim_hot, hd_hot, ffn_hot, wlen_hot) = (2048usize, 64usize, 16usize, 128usize, 64usize);
    let x_hot = Tensor::randn(&[tokens_hot, dim_hot], &mut rng);
    let w_proj = Tensor::randn(&[dim_hot, dim_hot], &mut rng);
    let q_win = Tensor::randn(&[wlen_hot, hd_hot], &mut rng);
    let k_win = Tensor::randn(&[wlen_hot, hd_hot], &mut rng);
    let w_up = Tensor::randn(&[dim_hot, ffn_hot], &mut rng);
    let h_hot = Tensor::randn(&[tokens_hot, ffn_hot], &mut rng);
    let w_down = Tensor::randn(&[ffn_hot, dim_hot], &mut rng);
    let hot_shapes = vec![
        bench_gemm(&tracer, "attn_proj", (tokens_hot, dim_hot, dim_hot), "f32", || {
            std::hint::black_box(matmul(&x_hot, &w_proj));
        }),
        bench_gemm(&tracer, "attn_scores_nt", (wlen_hot, wlen_hot, hd_hot), "f32", || {
            std::hint::black_box(matmul_nt(&q_win, &k_win));
        }),
        bench_gemm(&tracer, "mlp_up", (tokens_hot, ffn_hot, dim_hot), "f32", || {
            std::hint::black_box(matmul(&x_hot, &w_up));
        }),
        bench_gemm(&tracer, "mlp_down", (tokens_hot, dim_hot, ffn_hot), "f32", || {
            std::hint::black_box(matmul(&h_hot, &w_down));
        }),
    ];
    for g in &hot_shapes {
        let cells: Vec<String> =
            g.rows.iter().map(|(t, gf)| format!("{t}T {gf:7.2}")).collect();
        println!("{:<16} {}x{}x{}  GFLOP/s: {}", g.name, g.dims.0, g.dims.1, g.dims.2, cells.join("  "));
    }

    // --- fused window attention (toy_default geometry: 32×64 grid, 8×8
    //     windows, dim 64, 4 heads) ---
    let (n_windows, wlen, n_heads, head_dim) = (32, 64, 4, 16);
    let dim = n_heads * head_dim;
    let tokens = n_windows * wlen;
    let rope = RopeTable::new(8, 8, head_dim, 0, 0);
    let plan =
        WindowAttnPlan::new(n_windows, wlen, n_heads, head_dim, rope.cos.clone(), rope.sin.clone());
    let x = Tensor::randn(&[tokens, dim], &mut rng);
    let ws: Vec<Tensor> = (0..4)
        .map(|_| Tensor::randn(&[dim, dim], &mut rng).scale(1.0 / (dim as f32).sqrt()))
        .collect();
    // 4 projection GEMMs (8·T·dim²) + scores and weighted sum (4·T·wlen·dim).
    let attn_flops =
        8.0 * tokens as f64 * (dim * dim) as f64 + 4.0 * tokens as f64 * (wlen * dim) as f64;
    let mut attn_rows = Vec::new();
    for &t in &thread_counts() {
        rayon::set_thread_override(Some(t));
        let series = tracer.series(&format!("kernels_window_attn_{t}t_ms"));
        let secs = time_best(5, &series, || {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let wv: Vec<_> = ws.iter().map(|w| tape.constant(w.clone())).collect();
            std::hint::black_box(tape.window_attention(xv, wv[0], wv[1], wv[2], wv[3], &plan));
        });
        attn_rows.push((t, attn_flops / secs / 1e9));
    }
    rayon::set_thread_override(None);
    let cells: Vec<String> = attn_rows.iter().map(|(t, gf)| format!("{t}T {gf:7.2}")).collect();
    println!("{:<12} {n_windows}w×{wlen}×{dim}   GFLOP/s: {}", "window_attn", cells.join("  "));

    // --- full training step (forward + backward + AdamW), toy_default model ---
    let channels = 8;
    let cfg = AerisConfig::toy_default(channels);
    let step_tokens = cfg.tokens();
    let mut step_rows = Vec::new();
    for &t in &thread_counts() {
        rayon::set_thread_override(Some(t));
        let mut model = AerisModel::new(cfg.clone());
        let mut trainer = Trainer::new(
            &model,
            Grid::new(cfg.grid_h, cfg.grid_w),
            &vec![1.0; channels],
            TrainerConfig::paper_scaled(10_000, 2),
        );
        let samples: Vec<TrainSample> = (0..2)
            .map(|_| TrainSample {
                x_prev: Tensor::randn(&[step_tokens, channels], &mut rng),
                residual: Tensor::randn(&[step_tokens, channels], &mut rng),
                forcings: Tensor::randn(&[step_tokens, cfg.forcing_channels], &mut rng),
            })
            .collect();
        let batch: Vec<&TrainSample> = samples.iter().collect();
        let series = tracer.series(&format!("kernels_train_step_{t}t_ms"));
        let secs = time_best(3, &series, || {
            std::hint::black_box(trainer.train_step(&mut model, &batch));
        });
        step_rows.push((t, secs * 1e3));
    }
    rayon::set_thread_override(None);
    let cells: Vec<String> = step_rows.iter().map(|(t, ms)| format!("{t}T {ms:8.1}ms")).collect();
    println!("{:<12} {step_tokens} tokens, batch 2: {}", "train_step", cells.join("  "));
    let speedup = step_rows[0].1 / step_rows.last().unwrap().1;
    println!(
        "train_step speedup at {} threads vs 1: {speedup:.2}x",
        step_rows.last().unwrap().0
    );

    // --- JSON report ---
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n  \"thread_counts\": {:?},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        thread_counts()
    ));
    out.push_str("  \"gemm_gflops\": {\n");
    for (i, g) in gemms.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            g.name,
            g.json(),
            if i + 1 < gemms.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"hot_shapes\": {\n");
    for (i, g) in hot_shapes.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            g.name,
            g.json(),
            if i + 1 < hot_shapes.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    let rows: Vec<String> =
        attn_rows.iter().map(|(t, gf)| format!("{{\"threads\": {t}, \"gflops\": {gf:.3}}}")).collect();
    out.push_str(&format!(
        "  \"window_attention\": {{\"n_windows\": {n_windows}, \"window_len\": {wlen}, \"n_heads\": {n_heads}, \"head_dim\": {head_dim}, \"rows\": [{}]}},\n",
        rows.join(", ")
    ));
    let rows: Vec<String> =
        step_rows.iter().map(|(t, ms)| format!("{{\"threads\": {t}, \"ms\": {ms:.2}}}")).collect();
    out.push_str(&format!(
        "  \"training_step\": {{\"config\": \"toy_default({channels})\", \"tokens\": {step_tokens}, \"batch\": 2, \"rows\": [{}], \"speedup_max_vs_1\": {speedup:.3}}}\n",
        rows.join(", ")
    ));
    out.push_str("}\n");
    std::fs::write("BENCH_kernels.json", &out).expect("write BENCH_kernels.json");
    std::fs::write("BENCH_kernels.prom", tracer.prometheus_text())
        .expect("write BENCH_kernels.prom");
    println!("wrote BENCH_kernels.json and BENCH_kernels.prom");
}
