//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md for the experiment index).
//!
//! Every binary honors `AERIS_FULL=1` for a longer, higher-fidelity run;
//! the default "quick" settings finish in minutes on a laptop while
//! preserving the qualitative shapes (who wins, where crossovers fall).

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

use aeris_core::{
    prepare_samples, AerisConfig, AerisModel, Forecaster, Trainer, TrainerConfig,
};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::{Dataset, Scenario, ToyParams, VariableSet};
use aeris_nn::LrSchedule;

/// Scale knobs for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Training images for learned models.
    pub train_images: u64,
    /// Ensemble members.
    pub members: usize,
    /// Initial conditions for skill curves.
    pub initial_conditions: usize,
    /// Sampler solver steps.
    pub sampler_steps: usize,
}

impl RunScale {
    /// Read from the environment: quick by default, `AERIS_FULL=1` for the
    /// full-fidelity run.
    pub fn from_env() -> Self {
        if std::env::var("AERIS_FULL").map(|v| v == "1").unwrap_or(false) {
            RunScale { train_images: 6000, members: 16, initial_conditions: 6, sampler_steps: 10 }
        } else {
            RunScale { train_images: 1600, members: 5, initial_conditions: 2, sampler_steps: 6 }
        }
    }
}

/// The standard toy experiment setup: 16×32 grid, Z/T/U/V/Q on
/// {850, 700, 500} hPa (20 channels), 4-block pixel-level Swin.
pub fn toy_vars() -> VariableSet {
    VariableSet::with_levels(&[850, 700, 500])
}

/// Simulator parameters for the experiment grid.
pub fn toy_sim_params(seed: u64, scenario: Scenario) -> ToyParams {
    ToyParams { nlat: 16, nlon: 32, seed, scenario, ..Default::default() }
}

/// Model config matched to the toy grid.
pub fn toy_model_config(vars: &VariableSet) -> AerisConfig {
    AerisConfig {
        grid_h: 16,
        grid_w: 32,
        channels: vars.len(),
        forcing_channels: 3,
        dim: 48,
        n_heads: 4,
        ffn: 96,
        n_layers: 2,
        blocks_per_layer: 2,
        window: (4, 4),
        time_feat_dim: 32,
        cond_dim: 48,
        pos_amp: 0.1,
        seed: 0,
    }
}

/// Generate the standard train/val/test dataset (chronological splits,
/// §VI-B protocol in miniature).
pub fn build_dataset(seed: u64, scenario: Scenario, n_steps: usize) -> Dataset {
    Dataset::generate(toy_sim_params(seed, scenario), &toy_vars(), n_steps, 60, 0.8, 0.1)
}

/// Train an AERIS forecaster on the dataset's training split and return the
/// EMA inference model.
pub fn train_aeris(ds: &Dataset, scale: &RunScale, seed: u64) -> Forecaster {
    let vars = &ds.vars;
    let cfg = AerisConfig { seed, ..toy_model_config(vars) };
    let mut model = AerisModel::new(cfg);
    let tcfg = TrainerConfig {
        schedule: LrSchedule {
            peak: 2e-3,
            warmup: scale.train_images / 10,
            decay: scale.train_images / 5,
            total: scale.train_images,
        },
        batch: 2,
        ema_halflife: scale.train_images as f64 / 8.0,
        ..TrainerConfig::paper_scaled(scale.train_images, 2)
    };
    let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), tcfg);
    let samples = prepare_samples(ds, ds.split_ranges().0);
    trainer.fit(&mut model, &samples, scale.train_images);
    let ema = trainer.ema_model(&model);
    Forecaster {
        model: ema,
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: scale.sampler_steps, churn: 0.1, second_order: true },
        ),
    }
}

/// Format a row of floats for the report tables.
pub fn fmt_row(label: &str, values: &[f64], width: usize, prec: usize) -> String {
    let mut s = format!("{label:<16}");
    for v in values {
        s.push_str(&format!("{v:>width$.prec$}"));
    }
    s
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

use aeris_earthsim::{CycloneSeed, HeatwaveSeed, ToyAtmosphere};

/// The standard experiment scenario: events in the training window (so the
/// learned models see examples) and a held-out cyclone + heatwave in the test
/// window, under a decaying warm ENSO (the 2020-like setting of the paper's
/// case studies).
pub fn standard_scenario() -> Scenario {
    // Storm genesis points sit in open tropical ocean for this seed's
    // procedural continents (central Pacific; the 300E Atlantic analog is
    // land at 16x32 for seed 2020).
    Scenario {
        cyclones: vec![
            CycloneSeed { lat: 16.0, lon: 190.0, ..CycloneSeed::laura_like(10.0 * 24.0) },
            CycloneSeed { lat: 16.0, lon: 190.0, ..CycloneSeed::laura_like(40.0 * 24.0) },
            CycloneSeed { lat: -14.0, lon: 80.0, ..CycloneSeed::laura_like(60.0 * 24.0) },
            // Held-out test cyclone.
            CycloneSeed { lat: 16.0, lon: 190.0, ..CycloneSeed::laura_like(95.0 * 24.0) },
        ],
        heatwaves: vec![
            HeatwaveSeed::europe_like(25.0 * 24.0),
            HeatwaveSeed::europe_like(70.0 * 24.0),
            // Held-out test heatwave.
            HeatwaveSeed::europe_like(100.0 * 24.0),
        ],
        enso_init: Some((0.9, 1.1)),
    }
}

/// Recreate the truth simulator at dataset step `i` (dataset generation spins
/// up 60 steps and then records; this replays the identical trajectory).
pub fn sim_at(seed: u64, scenario: Scenario, step: usize) -> ToyAtmosphere {
    let mut sim = ToyAtmosphere::new(toy_sim_params(seed, scenario));
    sim.spinup(60);
    for _ in 0..step {
        sim.step();
    }
    sim
}

/// Forcing provider closure for rollouts starting at dataset step `i0`.
pub fn forcing_provider(
    seed: u64,
    i0_hours: f64,
) -> impl Fn(usize) -> aeris_tensor::Tensor + Sync {
    let grid = aeris_earthsim::Grid::new(16, 32);
    let clim = aeris_earthsim::Climate::new(grid, seed ^ 0xEA57);
    move |k: usize| {
        aeris_earthsim::forcings_at(&clim, (i0_hours + k as f64 * 6.0) / 24.0)
    }
}

/// The Climate matching `toy_sim_params(seed, ..)`.
pub fn toy_climate(seed: u64) -> aeris_earthsim::Climate {
    aeris_earthsim::Climate::new(aeris_earthsim::Grid::new(16, 32), seed ^ 0xEA57)
}

/// Train the deterministic (GraphCast-class) baseline.
pub fn train_deterministic(
    ds: &Dataset,
    scale: &RunScale,
    seed: u64,
) -> aeris_baselines::DeterministicForecaster {
    let cfg = AerisConfig { seed: seed ^ 0xD, ..toy_model_config(&ds.vars) };
    let mut f = aeris_baselines::DeterministicForecaster::new(
        AerisModel::new(cfg),
        ds.stats.clone(),
        ds.res_stats.clone(),
    );
    let samples = prepare_samples(ds, ds.split_ranges().0);
    let weights =
        aeris_diffusion::loss_weights(&ds.grid.token_lat_weights(), &ds.vars.kappa());
    let epochs = (scale.train_images as usize / samples.len()).max(1);
    f.fit(&samples, &weights, 2, epochs, 2e-3, seed);
    f
}

/// Train the GenCast-analog (EDM) baseline.
pub fn train_gencast(ds: &Dataset, scale: &RunScale, seed: u64) -> aeris_baselines::GenCastAnalog {
    let cfg = AerisConfig { seed: seed ^ 0xE, ..toy_model_config(&ds.vars) };
    let mut g = aeris_baselines::GenCastAnalog::new(
        AerisModel::new(cfg),
        ds.stats.clone(),
        ds.res_stats.clone(),
    );
    g.n_sample_steps = scale.sampler_steps;
    let samples = prepare_samples(ds, ds.split_ranges().0);
    let weights =
        aeris_diffusion::loss_weights(&ds.grid.token_lat_weights(), &ds.vars.kappa());
    let epochs = (scale.train_images as usize / samples.len()).max(1);
    g.fit(&samples, &weights, 2, epochs, 2e-3, seed);
    g
}
