//! Criterion benchmarks of the toy-ERA5 substrate: a 6-hour step, rendering,
//! and windowed store I/O.

use aeris_earthsim::store::{ChunkedStore, StoreLayout};
use aeris_earthsim::{ToyAtmosphere, ToyParams, VariableSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut sim = ToyAtmosphere::new(ToyParams { nlat: 32, nlon: 64, ..Default::default() });
    sim.spinup(10);
    c.bench_function("toy_atmosphere_step_32x64", |b| b.iter(|| sim.step()));
    let vars = VariableSet::default_toy();
    c.bench_function("render_25ch_32x64", |b| b.iter(|| black_box(sim.render(&vars))));
}

fn bench_store(c: &mut Criterion) {
    let vars = VariableSet::default_toy();
    let mut sim = ToyAtmosphere::new(ToyParams { nlat: 32, nlon: 64, ..Default::default() });
    sim.spinup(5);
    let snap = sim.render(&vars);
    let layout = StoreLayout::new(32, 64, vars.len(), 8, 8);
    let mut store = ChunkedStore::in_memory(layout);
    store.append_snapshot(&snap).unwrap();
    c.bench_function("store_read_window_8x8x25", |b| {
        b.iter(|| black_box(store.read_window(0, 1, 3).unwrap()))
    });
}

criterion_group!(benches, bench_sim, bench_store);
criterion_main!(benches);
