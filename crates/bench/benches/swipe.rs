//! Criterion benchmarks of the SWiPe runtime: collective primitives and a
//! full distributed training step across thread ranks.

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_nn::AdamWConfig;
use aeris_swipe::data::InMemorySource;
use aeris_swipe::{CommClass, DistributedTrainer, FaultPlan, SwipeConfig, SwipeTopology, World};
use aeris_tensor::{Rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("allreduce_8ranks_4k", |b| {
        b.iter(|| {
            let world = World::new(8);
            let group: Vec<usize> = (0..8).collect();
            std::thread::scope(|s| {
                for r in 0..8 {
                    let mut comm = world.communicator(r);
                    let g = group.clone();
                    s.spawn(move || {
                        let v = Tensor::full(&[4096], r as f32);
                        black_box(comm.allreduce_sum(&g, &v).unwrap());
                    });
                }
            });
        })
    });
    c.bench_function("alltoall_4ranks_4x1k", |b| {
        b.iter(|| {
            let world = World::new(4);
            let group: Vec<usize> = (0..4).collect();
            std::thread::scope(|s| {
                for r in 0..4 {
                    let mut comm = world.communicator(r);
                    let g = group.clone();
                    s.spawn(move || {
                        let chunks: Vec<Tensor> =
                            (0..4).map(|j| Tensor::full(&[1024], j as f32)).collect();
                        black_box(comm.alltoall(&g, chunks).unwrap());
                    });
                }
            });
        })
    });
}

/// Fault-hook overhead: the same allreduce loop against a world with no
/// fault plan (hooks dormant) and a world carrying an *empty* plan (every
/// hook consulted, nothing injected). The two should be within noise of each
/// other — the robustness layer must be free when unused.
fn bench_fault_hook_overhead(c: &mut Criterion) {
    let mut run = |name: &str, plan: Option<FaultPlan>| {
        c.bench_function(name, |b| {
            b.iter(|| {
                let world = match &plan {
                    Some(p) => World::with_faults(8, p.clone()),
                    None => World::new(8),
                };
                let group: Vec<usize> = (0..8).collect();
                std::thread::scope(|s| {
                    for r in 0..8 {
                        let mut comm = world.communicator(r);
                        let g = group.clone();
                        s.spawn(move || {
                            let v = Tensor::full(&[4096], r as f32);
                            for _ in 0..4 {
                                black_box(comm.allreduce_sum(&g, &v).unwrap());
                            }
                        });
                    }
                });
            })
        });
    };
    run("allreduce_8ranks_4k_x4_no_plan", None);
    run("allreduce_8ranks_4k_x4_empty_plan", Some(FaultPlan::new()));
}

fn bench_distributed_step(c: &mut Criterion) {
    let cfg = AerisConfig::test_tiny();
    let mut rng = Rng::seed_from(1);
    let samples: Vec<TrainSample> = (0..2)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
    let reference = AerisModel::new(cfg);
    c.bench_function("swipe_step_pp4_wp2_sp2", |b| {
        b.iter(|| {
            let topo = SwipeTopology::new(1, 4, 1, 2, 2);
            let scfg = SwipeConfig {
                topo,
                gas: 2,
                n_steps: 1,
                lr: 1e-3,
                seed: 7,
                adamw: AdamWConfig::default(),
                ..SwipeConfig::new(topo)
            };
            let source = InMemorySource { samples: samples.clone() };
            let sched = vec![vec![vec![0usize, 1]]];
            let report =
                DistributedTrainer::train(&reference, &scfg, &source, &sched, &weights).expect("fault-free run");
            black_box(report.traffic.total(CommClass::AllToAll))
        })
    });
}

criterion_group!(benches, bench_collectives, bench_fault_hook_overhead, bench_distributed_step);
criterion_main!(benches);
