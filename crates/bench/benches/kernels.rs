//! Criterion microbenchmarks of the compute substrate: the kernels whose
//! efficiency the analytical performance model parameterizes.

use aeris_tensor::{matmul, matmul_nt, Rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_function(format!("{n}x{n}x{n}"), |bch| {
            bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
        });
    }
    // The attention-score shape: [tokens, hd] x [tokens, hd]^T.
    let mut rng = Rng::seed_from(2);
    let q = Tensor::randn(&[64, 16], &mut rng);
    let k = Tensor::randn(&[64, 16], &mut rng);
    group.bench_function("scores_qk_64x16", |bch| {
        bch.iter(|| black_box(matmul_nt(black_box(&q), black_box(&k))))
    });
    group.finish();
}

fn bench_rowwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let x = Tensor::randn(&[512, 64], &mut rng);
    c.bench_function("softmax_rows_512x64", |b| {
        b.iter(|| black_box(black_box(&x).softmax_rows()))
    });
    c.bench_function("bf16_round_512x64", |b| b.iter(|| black_box(black_box(&x).to_bf16())));
}

fn bench_fft(c: &mut Criterion) {
    let field: Vec<f32> = (0..32 * 64).map(|i| (i as f32 * 0.37).sin()).collect();
    c.bench_function("fft2_32x64", |b| {
        b.iter(|| black_box(aeris_tensor::fft::fft2_forward(black_box(&field), 32, 64)))
    });
}

criterion_group!(benches, bench_matmul, bench_rowwise, bench_fft);
criterion_main!(benches);
