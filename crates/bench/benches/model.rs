//! Criterion benchmarks of the AERIS model: forward pass, a full training
//! step, one sampler solve — plus the architecture ablations DESIGN.md calls
//! out (shifted vs unshifted attention, 1st- vs 2nd-order solver).

use aeris_core::{AerisConfig, AerisModel, TrainSample, Trainer, TrainerConfig};
use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris_earthsim::Grid;
use aeris_nn::LrSchedule;
use aeris_tensor::{Rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn tiny() -> AerisModel {
    AerisModel::new(AerisConfig::test_tiny())
}

fn bench_forward(c: &mut Criterion) {
    let m = tiny();
    let mut rng = Rng::seed_from(1);
    let x_t = Tensor::randn(&[128, 4], &mut rng);
    let prev = Tensor::randn(&[128, 4], &mut rng);
    let forc = Tensor::randn(&[128, 3], &mut rng);
    c.bench_function("aeris_forward_8x16_d16", |b| {
        b.iter(|| black_box(m.velocity(black_box(&x_t), &prev, &forc, 0.7)))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let mut model = tiny();
    let grid = Grid::new(8, 16);
    let mut rng = Rng::seed_from(2);
    let sample = TrainSample {
        x_prev: Tensor::randn(&[128, 4], &mut rng),
        residual: Tensor::randn(&[128, 4], &mut rng),
        forcings: Tensor::randn(&[128, 3], &mut rng),
    };
    let cfg = TrainerConfig {
        schedule: LrSchedule { peak: 1e-3, warmup: 1, decay: 1, total: 1_000_000 },
        batch: 1,
        ema_halflife: 1000.0,
        ..TrainerConfig::paper_scaled(1_000_000, 1)
    };
    let mut trainer = Trainer::new(&model, grid, &[1.0; 4], cfg);
    c.bench_function("aeris_train_step_fwd_bwd_opt", |b| {
        b.iter(|| black_box(trainer.train_step(&mut model, &[&sample])))
    });
}

/// Ablation: solver order. 2S costs 2 network evals per step but halves the
/// step count needed for the same accuracy (see sampler tests).
fn bench_sampler_order(c: &mut Criterion) {
    let m = tiny();
    let mut rng = Rng::seed_from(3);
    let prev = Tensor::randn(&[128, 4], &mut rng);
    let forc = Tensor::randn(&[128, 3], &mut rng);
    let mut group = c.benchmark_group("sampler_order");
    for (label, second) in [("first_order_10", false), ("second_order_10", true)] {
        let sampler = TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 10, churn: 0.1, second_order: second },
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut vel = |x: &Tensor, t: f32| m.velocity(x, &prev, &forc, t);
                let mut r = Rng::seed_from(4);
                black_box(sampler.sample(&[128, 4], &mut vel, &mut r))
            })
        });
    }
    group.finish();
}

/// Ablation: attention with and without the cyclic window shift (the shift
/// adds only gather permutations — its cost should be marginal, which is the
/// architectural argument for shifted windows over global attention).
fn bench_shift_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_shift");
    for (label, layers) in [("with_shift", 2usize), ("no_shift_single", 1)] {
        let cfg = AerisConfig {
            n_layers: layers,
            blocks_per_layer: 1,
            ..AerisConfig::test_tiny()
        };
        let m = AerisModel::new(cfg);
        let mut rng = Rng::seed_from(5);
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let prev = Tensor::randn(&[128, 4], &mut rng);
        let forc = Tensor::randn(&[128, 3], &mut rng);
        group.bench_function(label, |b| {
            b.iter(|| black_box(m.velocity(black_box(&x_t), &prev, &forc, 0.5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_train_step, bench_sampler_order, bench_shift_ablation);
criterion_main!(benches);
