//! The AERIS model configurations of Table II.
//!
//! Layer counts are not printed in the paper; they follow from the stage
//! structure `PP = L + 2` (§VII-A) with two transformer blocks per Swin layer,
//! which reproduces the named parameter counts from first principles (e.g.
//! 36 blocks at dim 6144 / FFN 40960 → 40.7B; 48 blocks at dim 7680 →
//! 79.3B, matching the text's "79B").
//!
//! Table II lists WP = 16 (4×4) for the 40B row while quoting 720 nodes; the
//! text and Table III use WP = 36 (6×6) for the large 40B runs
//! (36 × 20 = 720). Both variants are exposed; the headline runs use
//! `wp_large`.

/// One Table II row.
#[derive(Clone, Copy, Debug)]
pub struct AerisPerfConfig {
    pub name: &'static str,
    /// Published parameter-count label (billions).
    pub params_label_b: f64,
    /// Base window-parallel grid (A, B) from the WP column.
    pub wp_base: (usize, usize),
    /// Large-run window-parallel grid used in §VII-A / Table III.
    pub wp_large: (usize, usize),
    /// Pipeline stages.
    pub pp: usize,
    /// Gradient accumulation steps.
    pub gas: usize,
    /// Hidden dimension.
    pub dim: usize,
    pub heads: usize,
    /// SwiGLU hidden width.
    pub ffn: usize,
    /// Transformer blocks (2 per Swin layer, L = PP − 2).
    pub blocks: usize,
    /// Attention window (tokens per side); 6h model uses 30×30, 24h 60×60.
    pub window: usize,
    /// Table III run: node count.
    pub nodes: usize,
    /// Table III run: data-parallel degree.
    pub dp: usize,
    /// Sequence length in tokens (ERA5: 720×1440 at patch 1×1). A field
    /// rather than a global so toy-scale runs (tests, the MFU report for
    /// thread-rank trainer traces) can be predicted with the same model.
    pub seq_tokens: usize,
    /// Prognostic channels.
    pub channels: usize,
}

impl AerisPerfConfig {
    /// Swin layers L = PP − 2 (I/O + embedding stages separated).
    pub fn layers(&self) -> usize {
        self.pp - 2
    }

    /// WP degree of the large run.
    pub fn wp(&self) -> usize {
        self.wp_large.0 * self.wp_large.1
    }

    /// Nodes per model instance = WP × PP.
    pub fn nodes_per_instance(&self) -> usize {
        self.wp() * self.pp
    }

    /// Global batch size = DP × GAS (microbatch 1 per instance).
    pub fn gbs(&self) -> usize {
        self.dp * self.gas
    }
}

/// ERA5 resolution: 720 × 1440 pixels at patch size 1×1.
pub const SEQ_TOKENS: usize = 720 * 1440;
/// Prognostic channels (§VI-B): 5 surface + 5 upper-air × 13 levels.
pub const CHANNELS: usize = 70;

/// The five published configurations (Tables II & III).
pub const PAPER_CONFIGS: [AerisPerfConfig; 5] = [
    AerisPerfConfig {
        name: "1.3B",
        params_label_b: 1.3,
        wp_base: (2, 2),
        wp_large: (2, 2),
        pp: 12,
        gas: 60,
        dim: 1536,
        heads: 12,
        ffn: 9216,
        blocks: 20,
        window: 60,
        nodes: 1920,
        dp: 40,
        seq_tokens: SEQ_TOKENS,
        channels: CHANNELS,
    },
    AerisPerfConfig {
        name: "13B",
        params_label_b: 13.0,
        wp_base: (4, 4),
        wp_large: (4, 4),
        pp: 16,
        gas: 48,
        dim: 4608,
        heads: 36,
        ffn: 25600,
        blocks: 28,
        window: 60,
        nodes: 7680,
        dp: 30,
        seq_tokens: SEQ_TOKENS,
        channels: CHANNELS,
    },
    AerisPerfConfig {
        name: "40B",
        params_label_b: 40.0,
        wp_base: (4, 4),
        wp_large: (6, 6),
        pp: 20,
        gas: 140,
        dim: 6144,
        heads: 48,
        ffn: 40960,
        blocks: 36,
        window: 60,
        nodes: 10_080,
        dp: 14,
        seq_tokens: SEQ_TOKENS,
        channels: CHANNELS,
    },
    AerisPerfConfig {
        name: "80B",
        params_label_b: 80.0,
        wp_base: (6, 6),
        wp_large: (8, 8),
        pp: 26,
        gas: 52,
        dim: 7680,
        heads: 60,
        ffn: 46080,
        blocks: 48,
        window: 60,
        nodes: 8320,
        dp: 5,
        seq_tokens: SEQ_TOKENS,
        channels: CHANNELS,
    },
    AerisPerfConfig {
        name: "26B(L)",
        params_label_b: 26.0,
        wp_base: (6, 6),
        wp_large: (6, 6),
        pp: 14,
        gas: 70,
        dim: 6144,
        heads: 48,
        ffn: 32768,
        blocks: 24,
        window: 60,
        nodes: 1008,
        dp: 2,
        seq_tokens: SEQ_TOKENS,
        channels: CHANNELS,
    },
];

/// Look up a config by name.
pub fn config(name: &str) -> &'static AerisPerfConfig {
    PAPER_CONFIGS
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown config {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_node_counts_match_table() {
        // Table II / Table III consistency: nodes = DP × WP × PP.
        for c in &PAPER_CONFIGS {
            assert_eq!(
                c.nodes,
                c.dp * c.nodes_per_instance(),
                "{}: {} vs dp {} × instance {}",
                c.name,
                c.nodes,
                c.dp,
                c.nodes_per_instance()
            );
        }
    }

    #[test]
    fn gbs_matches_table_iii() {
        let expect = [2400usize, 1440, 1960, 260, 140];
        for (c, &g) in PAPER_CONFIGS.iter().zip(&expect) {
            assert_eq!(c.gbs(), g, "{}", c.name);
        }
    }

    #[test]
    fn blocks_are_two_per_layer() {
        for c in &PAPER_CONFIGS {
            assert_eq!(c.blocks, 2 * c.layers(), "{}", c.name);
        }
    }

    #[test]
    fn full_system_run_is_40b_at_10080_nodes() {
        let c = config("40B");
        assert_eq!(c.nodes, 10_080);
        assert_eq!(c.wp(), 36);
        assert_eq!(c.nodes_per_instance(), 720);
    }
}
