//! System configurations (Table I of the paper).

/// Hardware constants of one system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: &'static str,
    pub gpu: &'static str,
    /// GPUs per node (packages).
    pub gpus_per_node: usize,
    /// Compute tiles per node (the scheduling unit; Aurora GPUs have 2).
    pub tiles_per_node: usize,
    /// HBM per GPU (GB).
    pub gpu_memory_gb: f64,
    /// HBM bandwidth per GPU (TB/s).
    pub gpu_mem_bw_tbs: f64,
    /// NICs per node.
    pub nics_per_node: usize,
    /// Injection bandwidth per node per direction (GB/s).
    pub network_bw_gbs: f64,
    /// Intra-node (scale-up) bandwidth per direction (GB/s).
    pub scaleup_bw_gbs: f64,
    /// Peak BF16 throughput per *tile* (TFLOPS).
    pub peak_bf16_tflops_per_tile: f64,
    /// Peak FP32 throughput per tile (TFLOPS).
    pub peak_fp32_tflops_per_tile: f64,
    /// Collective library name.
    pub ccl: &'static str,
    /// Largest node count used in the paper's runs.
    pub max_nodes: usize,
}

/// Aurora (ALCF): Intel Data Center Max 1550, 6 GPUs = 12 tiles per node.
/// Peak 458 TFLOPS BF16 per GPU → 229 per tile.
pub const AURORA: MachineSpec = MachineSpec {
    name: "Aurora",
    gpu: "Intel Max 1550",
    gpus_per_node: 6,
    tiles_per_node: 12,
    gpu_memory_gb: 128.0,
    gpu_mem_bw_tbs: 2.0,
    nics_per_node: 8,
    network_bw_gbs: 200.0,
    scaleup_bw_gbs: 28.0,
    peak_bf16_tflops_per_tile: 229.0,
    peak_fp32_tflops_per_tile: 22.5,
    ccl: "oneCCL",
    max_nodes: 10_080,
};

/// LUMI (CSC): AMD MI250X, 4 GPUs = 8 GCDs per node. Peak 383 TFLOPS BF16
/// per GPU → 191.5 per GCD.
pub const LUMI: MachineSpec = MachineSpec {
    name: "LUMI",
    gpu: "AMD MI250X",
    gpus_per_node: 4,
    tiles_per_node: 8,
    gpu_memory_gb: 128.0,
    gpu_mem_bw_tbs: 3.2,
    nics_per_node: 4,
    network_bw_gbs: 100.0,
    scaleup_bw_gbs: 50.0,
    peak_bf16_tflops_per_tile: 191.5,
    peak_fp32_tflops_per_tile: 47.85,
    ccl: "RCCL",
    max_nodes: 1_008,
};

impl MachineSpec {
    /// Total tiles at a node count.
    pub fn tiles(&self, nodes: usize) -> usize {
        nodes * self.tiles_per_node
    }

    /// Aggregate peak BF16 FLOPS at a node count (FLOP/s).
    pub fn peak_flops(&self, nodes: usize) -> f64 {
        self.tiles(nodes) as f64 * self.peak_bf16_tflops_per_tile * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aurora_full_system_scale_matches_paper() {
        // 10,080 nodes = 120,960 GPU tiles (paper abstract).
        assert_eq!(AURORA.tiles(10_080), 120_960);
    }

    #[test]
    fn aurora_peak_is_consistent_with_gpu_rating() {
        // 458 TFLOPS per GPU, 2 tiles per GPU.
        let per_gpu = AURORA.peak_bf16_tflops_per_tile * 2.0;
        assert!((per_gpu - 458.0).abs() < 1.0);
    }

    #[test]
    fn lumi_scale() {
        assert_eq!(LUMI.tiles(1_008), 8_064);
        let per_gpu = LUMI.peak_bf16_tflops_per_tile * 2.0;
        assert!((per_gpu - 383.0).abs() < 1.0);
    }

    #[test]
    fn full_system_peak_exceeds_measured_sustained() {
        // Sanity: 10.21 EF sustained must be below peak.
        assert!(AURORA.peak_flops(10_080) > 10.21e18);
    }
}
