//! Weak- and strong-scaling sweeps (Figure 4).

use crate::configs::AerisPerfConfig;
use crate::machine::MachineSpec;
use crate::throughput::{predict, EffModel, Prediction};

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    pub nodes: usize,
    pub prediction: Prediction,
    /// Efficiency relative to the first point of the sweep (per-node
    /// throughput ratio).
    pub efficiency: f64,
}

/// Weak scaling: grow data parallelism at fixed (WP, PP, GAS); model-parallel
/// settings and per-replica batch stay fixed, as in Fig. 4 bottom.
pub fn weak_scaling(
    cfg: &AerisPerfConfig,
    machine: &MachineSpec,
    dp_values: &[usize],
    eff: &EffModel,
) -> Vec<ScalePoint> {
    assert!(!dp_values.is_empty());
    let mut out = Vec::with_capacity(dp_values.len());
    let mut base_per_node = 0.0f64;
    for (i, &dp) in dp_values.iter().enumerate() {
        let p = predict(cfg, machine, cfg.wp(), dp, cfg.gas, eff);
        let per_node = p.samples_per_s / p.nodes as f64;
        if i == 0 {
            base_per_node = per_node;
        }
        out.push(ScalePoint { nodes: p.nodes, prediction: p, efficiency: per_node / base_per_node });
    }
    out
}

/// Strong scaling via gradient-accumulation steps (Fig. 4 top, "GAS"):
/// global batch fixed at `gbs`; nodes grow by raising DP while GAS shrinks.
pub fn strong_scaling_gas(
    cfg: &AerisPerfConfig,
    machine: &MachineSpec,
    gbs: usize,
    dp_values: &[usize],
    eff: &EffModel,
) -> Vec<ScalePoint> {
    let mut out = Vec::with_capacity(dp_values.len());
    let mut base: Option<(usize, f64)> = None; // (nodes, samples/s)
    for &dp in dp_values {
        assert_eq!(gbs % dp, 0, "GBS must divide by DP");
        let gas = gbs / dp;
        let p = predict(cfg, machine, cfg.wp(), dp, gas, eff);
        let (n0, s0) = *base.get_or_insert((p.nodes, p.samples_per_s));
        let ideal = s0 * p.nodes as f64 / n0 as f64;
        out.push(ScalePoint { nodes: p.nodes, prediction: p, efficiency: p.samples_per_s / ideal });
    }
    out
}

/// Strong scaling via window parallelism (Fig. 4 top, "WP"): batch fixed at
/// `gas` (DP = 1); nodes grow with the WP degree.
pub fn strong_scaling_wp(
    cfg: &AerisPerfConfig,
    machine: &MachineSpec,
    gas: usize,
    wp_values: &[usize],
    eff: &EffModel,
) -> Vec<ScalePoint> {
    let mut out = Vec::with_capacity(wp_values.len());
    let mut base: Option<(usize, f64)> = None;
    for &wp in wp_values {
        let p = predict(cfg, machine, wp, 1, gas, eff);
        let (n0, s0) = *base.get_or_insert((p.nodes, p.samples_per_s));
        let ideal = s0 * p.nodes as f64 / n0 as f64;
        out.push(ScalePoint { nodes: p.nodes, prediction: p, efficiency: p.samples_per_s / ideal });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::config;
    use crate::machine::AURORA;

    #[test]
    fn weak_scaling_is_near_linear() {
        // Paper: 95% weak-scaling efficiency for 40B out to 10,080 nodes.
        let pts = weak_scaling(config("40B"), &AURORA, &[1, 2, 4, 8, 14], &EffModel::default());
        let last = pts.last().unwrap();
        assert_eq!(last.nodes, 10_080);
        assert!(
            last.efficiency > 0.93,
            "weak scaling efficiency {:.3} (paper: 0.95)",
            last.efficiency
        );
        // Throughput grows monotonically with nodes.
        for w in pts.windows(2) {
            assert!(w[1].prediction.samples_per_s > w[0].prediction.samples_per_s);
        }
    }

    #[test]
    fn gas_strong_scaling_matches_published_efficiency() {
        // Paper: 81.6% strong scaling for the 40B model at GBS 1960, losses
        // "mainly from the increasing pipeline bubble".
        let pts =
            strong_scaling_gas(config("40B"), &AURORA, 1960, &[2, 4, 7, 14], &EffModel::default());
        let last = pts.last().unwrap();
        assert!(
            (0.75..0.92).contains(&last.efficiency),
            "GAS strong scaling {:.3}, paper 0.816",
            last.efficiency
        );
    }

    #[test]
    fn wp_strong_scaling_rolloff_matches_paper() {
        // Paper: WP 36 → 64 → 144 at batch 140 gives 100% / 87% / 64%.
        let pts =
            strong_scaling_wp(config("40B"), &AURORA, 140, &[36, 64, 144], &EffModel::default());
        assert!((pts[0].efficiency - 1.0).abs() < 1e-9);
        assert!(
            (0.77..0.97).contains(&pts[1].efficiency),
            "WP=64 efficiency {:.3}, paper 0.87",
            pts[1].efficiency
        );
        assert!(
            (0.5..0.78).contains(&pts[2].efficiency),
            "WP=144 efficiency {:.3}, paper 0.64",
            pts[2].efficiency
        );
        // The extreme case: 4× more nodes, ~2.4× speedup.
        let speedup =
            pts[2].prediction.samples_per_s / pts[0].prediction.samples_per_s;
        assert!((2.0..3.1).contains(&speedup), "WP 36→144 speedup {speedup:.2}, paper 2.4");
    }

    #[test]
    fn bubble_drives_gas_losses() {
        // With GAS high the bubble is negligible; efficiency near 1.
        let pts = strong_scaling_gas(config("40B"), &AURORA, 1960, &[2, 4], &EffModel::default());
        assert!(pts[1].efficiency > 0.93);
    }
}
