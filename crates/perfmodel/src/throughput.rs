//! The timing model: kernel efficiency, pipeline bubble, communication and
//! optimizer costs → sustained/peak FLOPS, MFU, samples/s (Table III).

use crate::configs::AerisPerfConfig;
use crate::flops::{forward_flops_per_sample, params_count, train_flops_per_sample};
use crate::machine::MachineSpec;

/// Kernel-efficiency model: achievable fraction of tile peak as a function of
/// problem shape. Three constants, calibrated once against the 40B Table III
/// row and then *fixed* for every other prediction in the repo:
///
/// `eff = eff_max · d/(d + dim_half) · x/(x + tokens_half)`
///
/// where `d` is the hidden dim (GEMM size → kernel efficiency) and `x` the
/// tokens per tile per microbatch (occupancy / saturation, the effect behind
/// the paper's WP strong-scaling rolloff at WP = 144).
#[derive(Clone, Copy, Debug)]
pub struct EffModel {
    pub eff_max: f64,
    pub dim_half: f64,
    pub tokens_half: f64,
    /// Effective fraction of nominal bandwidth an intra-node collective
    /// achieves.
    pub ccl_eff: f64,
    /// Effective fraction of injection bandwidth the FP32 gradient
    /// allreduce + ZeRO allgather achieve at scale (latency, stragglers,
    /// cross-group contention — the paper attributes the peak-vs-sustained
    /// gap to exactly this plus the optimizer step).
    pub grad_bw_eff: f64,
}

impl Default for EffModel {
    fn default() -> Self {
        EffModel {
            eff_max: 0.88,
            dim_half: 2500.0,
            tokens_half: 600.0,
            ccl_eff: 0.5,
            grad_bw_eff: 0.05,
        }
    }
}

/// A throughput prediction for one run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    pub nodes: usize,
    pub dp: usize,
    pub gbs: usize,
    /// Seconds per optimizer step.
    pub step_time_s: f64,
    /// Seconds spent in the pipelined forward/backward (the "peak" window).
    pub pipeline_time_s: f64,
    pub samples_per_s: f64,
    /// Sustained FLOP/s (whole step).
    pub sustained_flops: f64,
    /// Peak FLOP/s (pipeline window only, §VI-D).
    pub peak_flops: f64,
    /// Sustained TFLOPS per tile.
    pub tf_per_tile: f64,
    /// Model FLOPS utilization (vs BF16 tile peak).
    pub mfu: f64,
}

/// Predict throughput for `cfg` on `machine` with the given data parallelism.
/// `wp` is the window-parallel degree (A×B); SP is pinned to the node width.
pub fn predict(
    cfg: &AerisPerfConfig,
    machine: &MachineSpec,
    wp: usize,
    dp: usize,
    gas: usize,
    eff: &EffModel,
) -> Prediction {
    let sp = machine.tiles_per_node;
    let nodes = dp * wp * cfg.pp;
    let tiles = machine.tiles(nodes);

    // Shape-dependent kernel efficiency.
    let x = cfg.seq_tokens as f64 / (wp * sp) as f64; // tokens per tile per microbatch
    let kernel_eff = eff.eff_max
        * (cfg.dim as f64 / (cfg.dim as f64 + eff.dim_half))
        * (x / (x + eff.tokens_half));

    // Per-microbatch, per-stage compute (fwd + bwd ≈ 3× fwd), per tile.
    let stage_fwd_flops = forward_flops_per_sample(cfg) / cfg.layers() as f64;
    let per_tile_fwd = stage_fwd_flops / (wp * sp) as f64;
    let t_f = per_tile_fwd / (machine.peak_bf16_tflops_per_tile * 1e12 * kernel_eff);
    let t_b = 2.0 * t_f;

    // Ulysses all-to-all: ≈ 4 shipped copies of the tile's activation slice
    // per microbatch (QKV out/in + attention out/in), BF16, intra-node.
    let act_bytes = x * cfg.dim as f64 * 2.0;
    let t_a2a = 4.0 * act_bytes / (machine.scaleup_bw_gbs * 1e9 * eff.ccl_eff);

    // Pipeline send/recv is CPU-offloaded and overlapped on Aurora (§VI-C);
    // on LUMI the overlap failed, so it is exposed.
    let t_p2p = if machine.name == "Aurora" {
        0.0
    } else {
        2.0 * act_bytes / (machine.network_bw_gbs * 1e9 / sp as f64 * eff.ccl_eff)
    };

    let t_slot = t_f + t_b + t_a2a + t_p2p;
    let pipeline_time = (gas + cfg.pp - 1) as f64 * t_slot;

    // Gradient allreduce (ring volume ≈ 2×params) + ZeRO-1 param allgather
    // (1×params) over the network, per stage, FP32.
    let p_stage = params_count(cfg) / cfg.pp as f64;
    let grad_bytes = 3.0 * p_stage * 4.0;
    let t_sync = grad_bytes / (machine.network_bw_gbs * 1e9 * eff.grad_bw_eff);
    // Optimizer step: ~10 memory sweeps over the local shard.
    let shard = p_stage / (dp * wp * sp) as f64;
    let tile_mem_bw = machine.gpu_mem_bw_tbs * 1e12 / 2.0;
    let t_opt = 10.0 * 4.0 * shard / tile_mem_bw;

    let step_time = pipeline_time + t_sync + t_opt;
    let gbs = dp * gas;
    let step_flops = gbs as f64 * train_flops_per_sample(cfg);
    let sustained = step_flops / step_time;
    let peak = step_flops / pipeline_time;
    Prediction {
        nodes,
        dp,
        gbs,
        step_time_s: step_time,
        pipeline_time_s: pipeline_time,
        samples_per_s: gbs as f64 / step_time,
        sustained_flops: sustained,
        peak_flops: peak,
        tf_per_tile: sustained / tiles as f64 / 1e12,
        mfu: sustained / machine.peak_flops(nodes),
    }
}

/// Predict the Table III row for a named config (published node count / DP).
pub fn predict_table3(cfg: &AerisPerfConfig, machine: &MachineSpec, eff: &EffModel) -> Prediction {
    predict(cfg, machine, cfg.wp(), cfg.dp, cfg.gas, eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{config, PAPER_CONFIGS};
    use crate::machine::{AURORA, LUMI};

    fn table3_targets() -> [(&'static str, f64, f64, f64); 5] {
        // (name, MFU %, EF sustained, EF peak)
        [
            ("1.3B", 21.6, 1.1, 1.2),
            ("13B", 28.8, 5.8, 6.4),
            ("40B", 38.4, 10.21, 11.21),
            ("80B", 24.0, 5.27, 6.1),
            ("26B(L)", 34.8, 0.54, 0.62),
        ]
    }

    #[test]
    fn table3_sustained_flops_within_tolerance() {
        let eff = EffModel::default();
        for (name, _mfu, ef_s, _ef_p) in table3_targets() {
            let cfg = config(name);
            let machine = if name.ends_with("(L)") { &LUMI } else { &AURORA };
            let p = predict_table3(cfg, machine, &eff);
            let model_ef = p.sustained_flops / 1e18;
            let rel = (model_ef - ef_s) / ef_s;
            assert!(
                rel.abs() < 0.35,
                "{name}: model {model_ef:.2} EF vs paper {ef_s} EF ({:+.0}%)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn flagship_40b_run_is_tight() {
        let p = predict_table3(config("40B"), &AURORA, &EffModel::default());
        let ef = p.sustained_flops / 1e18;
        assert!((ef - 10.21).abs() / 10.21 < 0.15, "model {ef:.2} EF vs 10.21");
        assert!((p.mfu - 0.384).abs() < 0.08, "model MFU {:.3} vs 0.384", p.mfu);
        // ~50 samples/s at full scale (paper §VII-A).
        assert!((p.samples_per_s - 50.0).abs() < 15.0, "{} samples/s", p.samples_per_s);
        assert_eq!(p.nodes, 10_080);
    }

    #[test]
    fn peak_exceeds_sustained_by_the_sync_gap() {
        let eff = EffModel::default();
        for c in &PAPER_CONFIGS {
            let machine = if c.name.ends_with("(L)") { &LUMI } else { &AURORA };
            let p = predict_table3(c, machine, &eff);
            assert!(p.peak_flops > p.sustained_flops, "{}", c.name);
            let ratio = p.peak_flops / p.sustained_flops;
            assert!(ratio < 1.35, "{}: unrealistic sync gap {ratio}", c.name);
        }
    }

    #[test]
    fn mfu_ordering_matches_paper() {
        // 40B is the most efficient; 1.3B the least (small kernels).
        let eff = EffModel::default();
        let mfus: Vec<f64> = ["1.3B", "13B", "40B", "80B"]
            .iter()
            .map(|n| predict_table3(config(n), &AURORA, &eff).mfu)
            .collect();
        assert!(mfus[2] > mfus[1] && mfus[2] > mfus[3], "40B must lead: {mfus:?}");
        assert!(mfus[0] < mfus[2], "1.3B must trail 40B");
    }

    #[test]
    fn training_time_estimate_matches_paper() {
        // "At this pace, it would take approximately 15 hours to complete
        // training for 3M samples" (40B at full scale).
        let p = predict_table3(config("40B"), &AURORA, &EffModel::default());
        let hours = 3.0e6 / p.samples_per_s / 3600.0;
        assert!((10.0..25.0).contains(&hours), "model predicts {hours:.1} h, paper ~15 h");
    }
}
