//! Analytical performance model for AERIS training at supercomputer scale.
//!
//! The paper measures ExaFLOPS on Aurora with an analytical FLOPs model plus
//! end-to-end timers (§VI-D). Reproducing the *measurements* requires the
//! machine; this crate reproduces the *model*: hardware constants from
//! Table I, the Table II model configurations with a first-principles
//! parameter/FLOPs count, a communication and pipeline-bubble cost model, and
//! the throughput/efficiency sweeps behind Table III and Figure 4.
//!
//! The model is calibrated once (three kernel-efficiency constants, see
//! [`throughput::EffModel`]) and then asked to reproduce every published
//! number; `EXPERIMENTS.md` records model-vs-paper for each.

pub mod configs;
pub mod flops;
pub mod machine;
pub mod scaling;
pub mod throughput;

pub use configs::{AerisPerfConfig, PAPER_CONFIGS};
pub use flops::{params_count, train_flops_per_sample};
pub use machine::{MachineSpec, AURORA, LUMI};
pub use scaling::{strong_scaling_gas, strong_scaling_wp, weak_scaling};
pub use throughput::{predict, EffModel, Prediction};
