//! Analytical parameter and FLOP counts (§VI-D; after the Megatron-style
//! transformer model of the authors' prior work, adapted to the windowed
//! Swin diffusion transformer).

use crate::configs::AerisPerfConfig;

/// Parameters of one transformer block: QKVO projections `4d²`, fused SwiGLU
/// `3·d·f`, the AdaLN modulation head `d·6d`, two RMSNorm gains, biases.
pub fn block_params(dim: usize, ffn: usize) -> f64 {
    let d = dim as f64;
    let f = ffn as f64;
    4.0 * d * d + 3.0 * d * f + 6.0 * d * d + 6.0 * d + 2.0 * d
}

/// Total model parameters.
pub fn params_count(cfg: &AerisPerfConfig) -> f64 {
    let d = cfg.dim as f64;
    let in_ch = (2 * cfg.channels + 3) as f64; // [x_t, x_{i-1}, forcings]
    let embed = in_ch * d + d;
    let decode = d * cfg.channels as f64 + cfg.channels as f64;
    let time = d * d + d; // shared conditioner trunk
    cfg.blocks as f64 * block_params(cfg.dim, cfg.ffn) + embed + decode + time
}

/// Forward FLOPs per sample (`cfg.seq_tokens` tokens): projections `8·s·d²`,
/// window attention `4·s·w·d` (scores + AV with window size `w`), SwiGLU
/// `6·s·d·f`.
pub fn forward_flops_per_sample(cfg: &AerisPerfConfig) -> f64 {
    let s = cfg.seq_tokens as f64;
    let d = cfg.dim as f64;
    let f = cfg.ffn as f64;
    let w = (cfg.window * cfg.window) as f64;
    let per_block = s * (8.0 * d * d + 4.0 * w * d + 6.0 * d * f);
    let embed_decode = 2.0 * s * d * ((2 * cfg.channels + 3) as f64 + cfg.channels as f64);
    cfg.blocks as f64 * per_block + embed_decode
}

/// Training FLOPs per sample: forward + backward ≈ 3× forward (no activation
/// checkpointing — the paper highlights that WP removes the need for it,
/// avoiding the extra ~1/3 recompute).
pub fn train_flops_per_sample(cfg: &AerisPerfConfig) -> f64 {
    3.0 * forward_flops_per_sample(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{config, PAPER_CONFIGS};

    /// The derived parameter counts must land near the published labels.
    /// (The 13B config is the outlier at +21%; layer/FFN details for that row
    /// are under-specified in the paper — see DESIGN.md.)
    #[test]
    fn params_match_labels() {
        for c in &PAPER_CONFIGS {
            let p = params_count(c) / 1e9;
            let rel = (p - c.params_label_b) / c.params_label_b;
            assert!(
                rel.abs() < 0.25,
                "{}: derived {p:.2}B vs label {}B",
                c.name,
                c.params_label_b
            );
        }
        // The flagship runs must be tight.
        let p40 = params_count(config("40B")) / 1e9;
        assert!((p40 - 40.0).abs() < 1.5, "40B derived {p40:.2}B");
        let p80 = params_count(config("80B")) / 1e9;
        assert!((79.3 - p80).abs() < 1.0, "80B derived {p80:.2}B (text says 79B)");
    }

    /// Cross-check the headline: 40B at 50 samples/s must give ≈ 10 EF.
    #[test]
    fn headline_flops_consistency() {
        let c = config("40B");
        let ef = train_flops_per_sample(c) * 50.0 / 1e18;
        assert!(
            (9.0..12.5).contains(&ef),
            "40B @ 50 samples/s gives {ef:.2} EF, paper sustains 10.21"
        );
    }

    /// FLOPs ratio between 40B and 1.3B ≈ 31.5× (paper: "40B … is 31.5×
    /// larger" in compute terms at equal tokens).
    #[test]
    fn model_size_ratio() {
        let f40 = train_flops_per_sample(config("40B"));
        let f13 = train_flops_per_sample(config("1.3B"));
        let ratio = f40 / f13;
        assert!((25.0..40.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn window_term_is_minor_but_present() {
        let c = config("40B");
        let with = forward_flops_per_sample(c);
        let mut no_win = *c;
        no_win.window = 1;
        let without = forward_flops_per_sample(&no_win);
        assert!(with > without);
        assert!((with - without) / with < 0.1, "attention term should be <10% at this dim");
    }
}
