//! # aeris-obs — observability for the AERIS runtimes
//!
//! Four pieces, layered:
//!
//! - [`tracer`]: the low-overhead, thread-shared span tracer. One [`Tracer`]
//!   handle is cloned into every rank thread / serving worker; a span site is
//!   `let _g = tracer.span(SpanCategory::Forward, rank).step(s).micro(m);`
//!   and costs one relaxed atomic load when tracing is disabled.
//! - [`metrics`]: [`MetricSeries`], thread-shared scalar distributions with a
//!   lazily-sorted percentile cache and a one-lock [`MetricSeries::summary`].
//! - exporters: [`chrome`] (Chrome-trace / Perfetto JSON of the per-rank
//!   pipeline timeline) and [`prometheus`] (text exposition of span totals,
//!   counters, and series summaries), backed by [`json`], a dependency-free
//!   parser the repo's tests use to validate every JSON artifact they emit.
//! - [`report`]: per-step [`StepBreakdown`]s and the measured-vs-modeled
//!   [`MfuReport`], including the exact M = b·s·h/SP/WP byte-law check
//!   against the runtime's traffic counters.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod report;
pub mod tracer;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use json::JsonValue;
pub use metrics::{MetricSeries, MetricSummary};
pub use prometheus::prometheus_text;
pub use report::{
    mfu_report, step_breakdowns, CommBytes, LawCheck, MessageLaw, MfuInputs, MfuReport,
    StepBreakdown,
};
pub use tracer::{verify_balanced, SpanCategory, SpanGuard, SpanRecord, Tracer};
