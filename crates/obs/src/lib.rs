//! # aeris-obs — observability for the AERIS runtimes
//!
//! Four pieces, layered:
//!
//! - [`tracer`]: the low-overhead, thread-shared span tracer. One [`Tracer`]
//!   handle is cloned into every rank thread / serving worker; a span site is
//!   `let _g = tracer.span(SpanCategory::Forward, rank).step(s).micro(m);`
//!   and costs one relaxed atomic load when tracing is disabled.
//! - [`metrics`]: [`MetricSeries`], thread-shared scalar distributions
//!   backed by [`histogram`] — a lock-free sharded log-linear histogram
//!   with bounded (~16 KiB) memory, exact count/sum/min/max, and
//!   deterministic quantile estimates with a documented relative-error
//!   bound.
//! - [`slo`]: latency/availability objectives over ring-buffer sample
//!   windows with Google-SRE multi-window burn-rate alerting
//!   ([`SloVerdict::Ok`]/[`SloVerdict::Warn`]/[`SloVerdict::Page`]).
//! - [`status`]: the [`StatusReport`] introspection snapshot (queue depths,
//!   wait quantiles, quota balances, cache occupancy, SLO state) rendered
//!   as a text dashboard or exported as Prometheus gauges.
//! - exporters: [`chrome`] (Chrome-trace / Perfetto JSON of the per-rank
//!   pipeline timeline) and [`prometheus`] (text exposition of span totals,
//!   counters, gauges, series summaries, and histogram buckets — plus
//!   [`prometheus::parse_text`] for round-trip tests), backed by [`json`],
//!   a dependency-free parser the repo's tests use to validate every JSON
//!   artifact they emit.
//! - [`report`]: per-step [`StepBreakdown`]s and the measured-vs-modeled
//!   [`MfuReport`], including the exact M = b·s·h/SP/WP byte-law check
//!   against the runtime's traffic counters.

pub mod chrome;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod report;
pub mod slo;
pub mod status;
pub mod tracer;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use histogram::Histogram;
pub use json::JsonValue;
pub use metrics::{MetricSeries, MetricSummary};
pub use prometheus::{escape_label, parse_text, prometheus_text, PromSample};
pub use report::{
    mfu_report, step_breakdowns, CommBytes, LawCheck, MessageLaw, MfuInputs, MfuReport,
    StepBreakdown,
};
pub use slo::{SloConfig, SloState, SloTracker, SloVerdict};
pub use status::{CacheStatus, StatusReport, TenantStatus, TierStatus};
pub use tracer::{verify_balanced, SpanCategory, SpanGuard, SpanRecord, Tracer};
