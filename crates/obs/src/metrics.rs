//! Thread-shared scalar metric series with cheap distribution queries.
//!
//! [`MetricSeries`] records scalar samples (latencies, batch sizes, queue
//! depths, per-step millisecond timings, …) from any number of threads and
//! answers count/mean/max/percentile queries. Percentiles run off a
//! **lazily-sorted cache**: recording appends and marks the cache dirty; the
//! first distribution query after a write sorts once, and every further
//! query until the next write is O(1) — no per-query clone-and-sort.
//! [`MetricSeries::summary`] computes the whole count/mean/p50/p95/p99/max
//! block under a single lock acquisition, which is what the Prometheus
//! exporter uses.

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Default)]
struct Samples {
    /// Samples in record order.
    values: Vec<f64>,
    /// Sorted copy of `values`, rebuilt lazily when `dirty`.
    sorted: Vec<f64>,
    dirty: bool,
    /// Running sum (mean in O(1)).
    sum: f64,
    /// Running maximum.
    max: f64,
}

impl Samples {
    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.values);
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("metric samples must not be NaN"));
            self.dirty = false;
        }
    }

    /// Nearest-rank percentile over the (sorted) samples.
    fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.sorted.len() as f64 - 1.0)).round() as usize;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }
}

/// A thread-shared series of scalar metric samples. Cloning shares the
/// underlying series.
#[derive(Clone, Default)]
pub struct MetricSeries {
    samples: Arc<Mutex<Samples>>,
}

/// The standard distribution block of one series, computed in a single lock
/// acquisition by [`MetricSeries::summary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSummary {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

impl MetricSeries {
    pub fn new() -> Self {
        MetricSeries::default()
    }

    /// Append one sample.
    pub fn record(&self, value: f64) {
        let mut s = self.samples.lock();
        s.values.push(value);
        s.sum += value;
        if s.values.len() == 1 || value > s.max {
            s.max = value;
        }
        s.dirty = true;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.lock().values.len()
    }

    /// Arithmetic mean, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        let s = self.samples.lock();
        if s.values.is_empty() {
            return None;
        }
        Some(s.sum / s.values.len() as f64)
    }

    /// Largest sample, or `None` with no samples.
    pub fn max(&self) -> Option<f64> {
        let s = self.samples.lock();
        if s.values.is_empty() {
            return None;
        }
        Some(s.max)
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) by the nearest-rank method, or
    /// `None` with no samples. Served from the lazily-sorted cache: only the
    /// first query after a write pays a sort.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.samples.lock().percentile(p)
    }

    /// count/mean/p50/p95/p99/max in one lock acquisition, or `None` with no
    /// samples.
    pub fn summary(&self) -> Option<MetricSummary> {
        let mut s = self.samples.lock();
        if s.values.is_empty() {
            return None;
        }
        s.ensure_sorted();
        let n = s.sorted.len();
        let at = |p: f64| {
            let rank = ((p / 100.0) * (n as f64 - 1.0)).round() as usize;
            s.sorted[rank.min(n - 1)]
        };
        Some(MetricSummary {
            count: n,
            mean: s.sum / n as f64,
            p50: at(50.0),
            p95: at(95.0),
            p99: at(99.0),
            max: s.max,
        })
    }

    /// Copy out the raw samples in record order.
    pub fn snapshot(&self) -> Vec<f64> {
        self.samples.lock().values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_queries() {
        let m = MetricSeries::new();
        assert!(m.mean().is_none() && m.percentile(50.0).is_none() && m.max().is_none());
        assert!(m.summary().is_none());
        for v in [5.0, 1.0, 9.0, 3.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean().unwrap() - 4.5).abs() < 1e-12);
        assert_eq!(m.max().unwrap(), 9.0);
        assert_eq!(m.percentile(0.0).unwrap(), 1.0);
        assert_eq!(m.percentile(100.0).unwrap(), 9.0);
        let med = m.percentile(50.0).unwrap();
        assert!(med == 3.0 || med == 5.0, "median {med}");
        // Shared across clones.
        let m2 = m.clone();
        m2.record(2.0);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn sorted_cache_tracks_interleaved_writes() {
        let m = MetricSeries::new();
        m.record(10.0);
        assert_eq!(m.percentile(50.0).unwrap(), 10.0);
        // A write after a query must invalidate the cache.
        m.record(1.0);
        m.record(2.0);
        assert_eq!(m.percentile(0.0).unwrap(), 1.0);
        assert_eq!(m.percentile(100.0).unwrap(), 10.0);
        // Record order is preserved regardless of the sorted cache.
        assert_eq!(m.snapshot(), vec![10.0, 1.0, 2.0]);
    }

    #[test]
    fn summary_matches_individual_queries() {
        let m = MetricSeries::new();
        for v in 0..100 {
            m.record(v as f64);
        }
        let s = m.summary().unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - m.mean().unwrap()).abs() < 1e-12);
        assert_eq!(s.p50, m.percentile(50.0).unwrap());
        assert_eq!(s.p95, m.percentile(95.0).unwrap());
        assert_eq!(s.p99, m.percentile(99.0).unwrap());
        assert_eq!(s.max, 99.0);
        assert!(!format!("{s}").is_empty());
    }
}
