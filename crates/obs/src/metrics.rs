//! Thread-shared scalar metric series with bounded memory and lock-free
//! recording.
//!
//! [`MetricSeries`] records scalar samples (latencies, batch sizes, queue
//! depths, per-step millisecond timings, …) from any number of threads and
//! answers count/mean/max/percentile queries. Since the v2 migration the
//! storage is a [`Histogram`] — a lock-free sharded log-linear bucket array
//! with a fixed ~16 KiB footprint — instead of an ever-growing
//! mutex-guarded `Vec<f64>`:
//!
//! - `record()` is lock-free (one atomic bucket increment plus CAS-loop
//!   sum/min/max updates) and safe on the serve hot path;
//! - `count`/`mean`/`max` and the `p ≤ 0` / `p ≥ 100` percentiles are
//!   exact; interior percentiles are deterministic estimates within
//!   [`MAX_QUANTILE_REL_ERROR`](crate::histogram::MAX_QUANTILE_REL_ERROR)
//!   (3.125%) of the exact nearest-rank answer;
//! - memory no longer grows with sample count.
//!
//! Tests that need the *raw* samples opt into a bounded reservoir with
//! [`MetricSeries::with_reservoir`]: the last `capacity` samples are kept in
//! record order and returned by [`MetricSeries::snapshot`]. The default
//! series keeps no raw samples and `snapshot()` returns an empty vector.

use crate::histogram::Histogram;
use parking_lot::Mutex;
use std::sync::Arc;

/// Bounded ring of raw samples in record order (the exact-sample escape
/// hatch; opt-in via [`MetricSeries::with_reservoir`]).
struct Reservoir {
    cap: usize,
    values: Vec<f64>,
    /// Index of the oldest retained sample once the ring has wrapped.
    start: usize,
}

impl Reservoir {
    fn push(&mut self, value: f64) {
        if self.values.len() < self.cap {
            self.values.push(value);
        } else {
            self.values[self.start] = value;
            self.start = (self.start + 1) % self.cap;
        }
    }

    fn snapshot(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.values.len());
        out.extend_from_slice(&self.values[self.start..]);
        out.extend_from_slice(&self.values[..self.start]);
        out
    }
}

struct SeriesInner {
    hist: Histogram,
    reservoir: Option<Mutex<Reservoir>>,
}

/// A thread-shared series of scalar metric samples. Cloning shares the
/// underlying series.
#[derive(Clone)]
pub struct MetricSeries {
    inner: Arc<SeriesInner>,
}

impl Default for MetricSeries {
    fn default() -> Self {
        MetricSeries::new()
    }
}

/// The standard distribution block of one series, computed in a single
/// histogram merge pass by [`MetricSeries::summary`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSummary {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

impl MetricSeries {
    /// Histogram-only series: bounded memory, lock-free record, no raw
    /// samples retained.
    pub fn new() -> Self {
        MetricSeries { inner: Arc::new(SeriesInner { hist: Histogram::new(), reservoir: None }) }
    }

    /// A series that additionally retains the last `capacity` raw samples in
    /// record order (returned by [`MetricSeries::snapshot`]) — the bounded
    /// escape hatch for exact-sample tests. Distribution queries still run
    /// off the histogram.
    pub fn with_reservoir(capacity: usize) -> Self {
        MetricSeries {
            inner: Arc::new(SeriesInner {
                hist: Histogram::new(),
                reservoir: Some(Mutex::new(Reservoir {
                    cap: capacity.max(1),
                    values: Vec::new(),
                    start: 0,
                })),
            }),
        }
    }

    /// Append one sample. Lock-free on the default series; non-finite
    /// samples are ignored.
    pub fn record(&self, value: f64) {
        self.inner.hist.record(value);
        if let Some(r) = &self.inner.reservoir {
            if value.is_finite() {
                r.lock().push(value);
            }
        }
    }

    /// The shared histogram backing this series (bucket iteration for the
    /// Prometheus exporter, cross-series merging).
    pub fn histogram(&self) -> &Histogram {
        &self.inner.hist
    }

    /// Exact number of samples recorded.
    pub fn count(&self) -> usize {
        self.inner.hist.count() as usize
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.inner.hist.sum()
    }

    /// Exact arithmetic mean, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        self.inner.hist.mean()
    }

    /// Exact smallest sample, or `None` with no samples.
    pub fn min(&self) -> Option<f64> {
        self.inner.hist.min()
    }

    /// Exact largest sample, or `None` with no samples.
    pub fn max(&self) -> Option<f64> {
        self.inner.hist.max()
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100), or `None` with no samples.
    /// `p ≤ 0` / `p ≥ 100` are the exact min/max; interior percentiles are
    /// histogram estimates within the documented relative-error bound of
    /// the nearest-rank answer.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.inner.hist.percentile(p)
    }

    /// count/mean/p50/p95/p99/max in one histogram merge pass, or `None`
    /// with no samples.
    pub fn summary(&self) -> Option<MetricSummary> {
        let qs = self.inner.hist.percentiles(&[50.0, 95.0, 99.0])?;
        Some(MetricSummary {
            count: self.count(),
            mean: self.mean().unwrap_or(0.0),
            p50: qs[0],
            p95: qs[1],
            p99: qs[2],
            max: self.max().unwrap_or(0.0),
        })
    }

    /// The retained raw samples in record order: the last
    /// `capacity` samples for a [`MetricSeries::with_reservoir`] series,
    /// empty for the default histogram-only series.
    pub fn snapshot(&self) -> Vec<f64> {
        match &self.inner.reservoir {
            Some(r) => r.lock().snapshot(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::MAX_QUANTILE_REL_ERROR;

    #[test]
    fn distribution_queries() {
        let m = MetricSeries::new();
        assert!(m.mean().is_none() && m.percentile(50.0).is_none() && m.max().is_none());
        assert!(m.summary().is_none());
        for v in [5.0, 1.0, 9.0, 3.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean().unwrap() - 4.5).abs() < 1e-12);
        assert_eq!(m.max().unwrap(), 9.0);
        assert_eq!(m.min().unwrap(), 1.0);
        assert_eq!(m.percentile(0.0).unwrap(), 1.0);
        assert_eq!(m.percentile(100.0).unwrap(), 9.0);
        // Nearest-rank median of [1,3,5,9] is 5; the histogram answers
        // within its documented relative-error bound.
        let med = m.percentile(50.0).unwrap();
        assert!((med - 5.0).abs() <= 5.0 * MAX_QUANTILE_REL_ERROR, "median {med}");
        // Shared across clones.
        let m2 = m.clone();
        m2.record(2.0);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn reservoir_keeps_record_order_and_is_bounded() {
        let m = MetricSeries::with_reservoir(3);
        m.record(10.0);
        assert_eq!(m.percentile(50.0).unwrap(), 10.0, "single sample is exact");
        m.record(1.0);
        m.record(2.0);
        assert_eq!(m.percentile(0.0).unwrap(), 1.0);
        assert_eq!(m.percentile(100.0).unwrap(), 10.0);
        // Record order is preserved in the reservoir.
        assert_eq!(m.snapshot(), vec![10.0, 1.0, 2.0]);
        // The ring keeps only the last `capacity` samples...
        m.record(7.0);
        assert_eq!(m.snapshot(), vec![1.0, 2.0, 7.0]);
        // ...while the histogram still counts everything.
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn default_series_retains_no_raw_samples() {
        let m = MetricSeries::new();
        for v in 0..1000 {
            m.record(v as f64);
        }
        assert!(m.snapshot().is_empty());
        assert_eq!(m.count(), 1000);
    }

    #[test]
    fn summary_matches_individual_queries() {
        let m = MetricSeries::new();
        for v in 0..100 {
            m.record(v as f64);
        }
        let s = m.summary().unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - m.mean().unwrap()).abs() < 1e-12);
        assert_eq!(s.p50, m.percentile(50.0).unwrap());
        assert_eq!(s.p95, m.percentile(95.0).unwrap());
        assert_eq!(s.p99, m.percentile(99.0).unwrap());
        assert_eq!(s.max, 99.0);
        assert!(!format!("{s}").is_empty());
        // Estimates stay within the documented bound of the exact answers.
        assert!((s.p50 - 50.0).abs() <= 50.0 * MAX_QUANTILE_REL_ERROR + 1e-9);
        assert!((s.p95 - 94.0).abs() <= 94.0 * MAX_QUANTILE_REL_ERROR + 1e-9);
    }

    #[test]
    fn sum_is_exact() {
        let m = MetricSeries::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.record(v);
        }
        assert_eq!(m.sum(), 10.0);
    }
}
