//! Service-level objectives with multi-window burn-rate alerting.
//!
//! An SLO here is "at least `target` of recent requests are *good*", where
//! good means completed within [`SloConfig::latency_ms`] (a shed, timeout,
//! or over-objective completion is *bad*). The tracker keeps outcomes in a
//! bounded ring buffer and evaluates Google-SRE-style **multi-window burn
//! rates**:
//!
//! ```text
//! burn(window) = bad_fraction(window) / (1 - target)
//! ```
//!
//! A burn rate of 1 consumes the error budget exactly at the sustainable
//! rate; 10 consumes it 10× too fast. The verdict requires *both* a short
//! and a long window over threshold — the long window proves the burn is
//! sustained (no paging on a single blip), the short window proves it is
//! still happening (alert resets quickly once the system recovers):
//!
//! - [`SloVerdict::Page`]: both windows ≥ [`SloConfig::page_burn`];
//! - [`SloVerdict::Warn`]: both windows ≥ [`SloConfig::warn_burn`];
//! - [`SloVerdict::Ok`] otherwise.
//!
//! Windows are **sample-count** windows, not wall-clock, so a synthetic
//! outcome stream produces bit-identical verdict flips at the same sample
//! indices on every run — the serve tests rely on that determinism.

use parking_lot::Mutex;
use std::sync::Arc;

/// One service-level objective: a latency threshold, a good-fraction
/// target, and the alerting windows/thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// A request is *good* iff it completes within this many milliseconds.
    pub latency_ms: f64,
    /// Required good fraction (e.g. 0.99 ⇒ 1% error budget).
    pub target: f64,
    /// Short (recent) window length in samples.
    pub short_window: usize,
    /// Long (sustained) window length in samples; also the ring capacity.
    pub long_window: usize,
    /// Burn-rate threshold for [`SloVerdict::Warn`].
    pub warn_burn: f64,
    /// Burn-rate threshold for [`SloVerdict::Page`].
    pub page_burn: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_ms: 1000.0,
            target: 0.99,
            short_window: 60,
            long_window: 600,
            warn_burn: 1.0,
            page_burn: 6.0,
        }
    }
}

/// The alert state of one objective, worst first when ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloVerdict {
    Ok,
    Warn,
    Page,
}

impl SloVerdict {
    pub fn name(self) -> &'static str {
        match self {
            SloVerdict::Ok => "ok",
            SloVerdict::Warn => "warn",
            SloVerdict::Page => "page",
        }
    }

    /// Numeric severity (0 = ok, 1 = warn, 2 = page) for gauge export.
    pub fn severity(self) -> u8 {
        match self {
            SloVerdict::Ok => 0,
            SloVerdict::Warn => 1,
            SloVerdict::Page => 2,
        }
    }
}

impl std::fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time snapshot of one objective's state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloState {
    pub verdict: SloVerdict,
    /// Burn rate over the short window (0 when no samples yet).
    pub short_burn: f64,
    /// Burn rate over the long window (0 when no samples yet).
    pub long_burn: f64,
    /// Fraction of the long-window error budget still unconsumed, in [0, 1].
    pub budget_remaining: f64,
    /// Lifetime good / total outcome counts.
    pub good_total: u64,
    pub total: u64,
}

impl SloState {
    /// The state of an objective that has seen no traffic.
    pub fn empty() -> Self {
        SloState {
            verdict: SloVerdict::Ok,
            short_burn: 0.0,
            long_burn: 0.0,
            budget_remaining: 1.0,
            good_total: 0,
            total: 0,
        }
    }
}

impl std::fmt::Display for SloState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} burn(short)={:.2} burn(long)={:.2} budget={:.0}% good={}/{}",
            self.verdict,
            self.short_burn,
            self.long_burn,
            self.budget_remaining * 100.0,
            self.good_total,
            self.total
        )
    }
}

struct Ring {
    /// Outcome ring, `cap` slots: `true` = good.
    buf: Vec<bool>,
    cap: usize,
    next: usize,
    len: usize,
    good_total: u64,
    total: u64,
}

impl Ring {
    /// Count bad outcomes among the last `window` samples.
    fn bad_in_last(&self, window: usize) -> (usize, usize) {
        let k = window.min(self.len);
        let mut bad = 0;
        for i in 0..k {
            // Walk backwards from the most recent write.
            let idx = (self.next + self.cap - 1 - i) % self.cap;
            if !self.buf[idx] {
                bad += 1;
            }
        }
        (bad, k)
    }
}

struct TrackerInner {
    cfg: SloConfig,
    ring: Mutex<Ring>,
}

/// Thread-shared tracker for one objective. Cloning shares state.
#[derive(Clone)]
pub struct SloTracker {
    inner: Arc<TrackerInner>,
}

impl SloTracker {
    pub fn new(cfg: SloConfig) -> Self {
        let cap = cfg.long_window.max(cfg.short_window).max(1);
        SloTracker {
            inner: Arc::new(TrackerInner {
                cfg,
                ring: Mutex::new(Ring {
                    buf: Vec::with_capacity(cap),
                    cap,
                    next: 0,
                    len: 0,
                    good_total: 0,
                    total: 0,
                }),
            }),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.inner.cfg
    }

    /// Record one outcome directly (`true` = within objective).
    pub fn observe(&self, good: bool) {
        let mut r = self.inner.ring.lock();
        let cap = r.cap;
        if r.buf.len() < cap {
            r.buf.push(good);
        } else {
            let at = r.next;
            r.buf[at] = good;
        }
        r.next = (r.next + 1) % cap;
        r.len = (r.len + 1).min(cap);
        r.total += 1;
        if good {
            r.good_total += 1;
        }
    }

    /// Record a completed request's latency; good iff within the objective.
    pub fn observe_latency(&self, latency_ms: f64) {
        self.observe(latency_ms <= self.inner.cfg.latency_ms);
    }

    /// Burn rate over the last `window` outcomes: bad fraction divided by
    /// the error budget. Infinite when the target leaves no budget and a
    /// bad outcome occurred.
    fn burn(&self, bad: usize, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let budget = 1.0 - self.inner.cfg.target;
        let bad_frac = bad as f64 / k as f64;
        if budget <= 0.0 {
            if bad > 0 {
                return f64::INFINITY;
            }
            return 0.0;
        }
        bad_frac / budget
    }

    /// Evaluate both windows and produce the current snapshot.
    pub fn state(&self) -> SloState {
        let cfg = &self.inner.cfg;
        let r = self.inner.ring.lock();
        let (short_bad, short_k) = r.bad_in_last(cfg.short_window);
        let (long_bad, long_k) = r.bad_in_last(cfg.long_window);
        let short_burn = self.burn(short_bad, short_k);
        let long_burn = self.burn(long_bad, long_k);
        let verdict = if short_k > 0 && short_burn >= cfg.page_burn && long_burn >= cfg.page_burn
        {
            SloVerdict::Page
        } else if short_k > 0 && short_burn >= cfg.warn_burn && long_burn >= cfg.warn_burn {
            SloVerdict::Warn
        } else {
            SloVerdict::Ok
        };
        // Budget over the *full* long window (unseen samples count as good),
        // so a freshly started tracker reports a full budget.
        let allowed_bad = (1.0 - cfg.target) * cfg.long_window.max(1) as f64;
        let budget_remaining = if allowed_bad > 0.0 {
            (1.0 - long_bad as f64 / allowed_bad).clamp(0.0, 1.0)
        } else if long_bad > 0 {
            0.0
        } else {
            1.0
        };
        SloState {
            verdict,
            short_burn,
            long_burn,
            budget_remaining,
            good_total: r.good_total,
            total: r.total,
        }
    }

    /// Shorthand for `state().verdict`.
    pub fn verdict(&self) -> SloVerdict {
        self.state().verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(target: f64, short: usize, long: usize, warn: f64, page: f64) -> SloConfig {
        SloConfig {
            latency_ms: 100.0,
            target,
            short_window: short,
            long_window: long,
            warn_burn: warn,
            page_burn: page,
        }
    }

    #[test]
    fn empty_tracker_is_ok_with_full_budget() {
        let t = SloTracker::new(SloConfig::default());
        let s = t.state();
        assert_eq!(s.verdict, SloVerdict::Ok);
        assert_eq!(s.budget_remaining, 1.0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        // target 0.9 => 10% budget. 1 bad in 10 => burn 1.0.
        let t = SloTracker::new(cfg(0.9, 10, 10, 2.0, 5.0));
        for i in 0..10 {
            t.observe(i != 0);
        }
        let s = t.state();
        assert!((s.long_burn - 1.0).abs() < 1e-12, "{}", s.long_burn);
        assert_eq!(s.verdict, SloVerdict::Ok);
    }

    #[test]
    fn verdict_flips_ok_warn_page_at_expected_samples() {
        // Budget 50%; short window 4, long window 12; warn at burn 1,
        // page at burn 1.8 (short window all-bad burn = 2).
        let t = SloTracker::new(cfg(0.5, 4, 12, 1.0, 1.8));
        // 12 good outcomes: everything healthy.
        for _ in 0..12 {
            t.observe_latency(10.0);
            assert_eq!(t.verdict(), SloVerdict::Ok);
        }
        // Bad outcomes (over-latency). Short window (4) saturates quickly;
        // the long window (12) lags and gates the escalation:
        //   after k bad: short burn = min(k,4)/4 / 0.5, long = k/12 / 0.5.
        // Warn needs both >= 1  => short: k >= 2, long: k >= 6.
        // Page needs both >= 1.8 => short: k >= 4 (burn 2), long: k >= 11.
        let mut verdicts = Vec::new();
        for _ in 0..12 {
            t.observe_latency(500.0);
            verdicts.push(t.verdict());
        }
        let expect: Vec<SloVerdict> = (1..=12)
            .map(|k| {
                if k >= 11 {
                    SloVerdict::Page
                } else if k >= 6 {
                    SloVerdict::Warn
                } else {
                    SloVerdict::Ok
                }
            })
            .collect();
        assert_eq!(verdicts, expect);
    }

    #[test]
    fn recovery_resets_the_short_window_first() {
        let t = SloTracker::new(cfg(0.5, 2, 8, 1.0, 1.9));
        for _ in 0..8 {
            t.observe(false);
        }
        assert_eq!(t.verdict(), SloVerdict::Page);
        // Two good samples clear the short window: page (and warn) end even
        // though the long window is still mostly bad.
        t.observe(true);
        t.observe(true);
        assert_eq!(t.verdict(), SloVerdict::Ok);
        let s = t.state();
        assert!(s.long_burn > 1.0, "long window still burning: {}", s.long_burn);
    }

    #[test]
    fn zero_budget_target_pages_on_any_error() {
        let t = SloTracker::new(cfg(1.0, 2, 4, 1.0, 2.0));
        t.observe(true);
        assert_eq!(t.verdict(), SloVerdict::Ok);
        t.observe(false);
        let s = t.state();
        assert!(s.short_burn.is_infinite());
        assert_eq!(s.verdict, SloVerdict::Page);
        assert_eq!(s.budget_remaining, 0.0);
    }

    #[test]
    fn budget_remaining_counts_down_over_the_long_window() {
        // Budget 25% of a 8-sample window => 2 allowed bad.
        let t = SloTracker::new(cfg(0.75, 4, 8, 10.0, 20.0));
        for _ in 0..8 {
            t.observe(true);
        }
        assert_eq!(t.state().budget_remaining, 1.0);
        t.observe(false);
        assert!((t.state().budget_remaining - 0.5).abs() < 1e-12);
        t.observe(false);
        assert_eq!(t.state().budget_remaining, 0.0);
    }

    #[test]
    fn clones_share_state() {
        let t = SloTracker::new(SloConfig::default());
        let t2 = t.clone();
        t2.observe(true);
        assert_eq!(t.state().total, 1);
    }
}
