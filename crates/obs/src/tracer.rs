//! The span tracer: a thread-shared, low-overhead record of what each actor
//! (rank thread, serving worker) did and when.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled is free.** Every span site costs exactly one relaxed atomic
//!    load when tracing is off (`BENCH_obs.json` and the tier-1 overhead test
//!    keep this honest at < 2% of a training step).
//! 2. **Deterministic assertions.** Wall-clock timestamps are monotonic but
//!    not reproducible, so every span also carries *logical* coordinates: a
//!    global begin/end sequence number plus optional step/microbatch tags.
//!    Tests assert on counts, categories, tags, and begin/end balance — never
//!    on durations.
//! 3. **Thread-shared.** One [`Tracer`] handle is cloned into every rank
//!    thread; recording appends under a short mutex hold (spans are only
//!    recorded while enabled, so the lock is never touched on the fast path).
//!
//! A span is opened with [`Tracer::span`] and closed when the returned
//! [`SpanGuard`] drops — including on early returns and error unwinds, which
//! is what keeps begin/end pairs balanced under injected faults.

use crate::metrics::MetricSeries;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a span measures. The taxonomy mirrors the paper's step decomposition
/// (compute, Ulysses all-to-all, pipeline P2P, collectives, bubble) plus the
/// serving-engine stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCategory {
    /// Forward computation of one microbatch on one stage.
    Forward,
    /// Backward computation of one microbatch on one stage.
    Backward,
    /// Pipeline point-to-point send/recv (activations, gradients, shift
    /// exchange between stage layouts).
    P2p,
    /// Ulysses / window-parallel all-to-all.
    AllToAll,
    /// Gradient allreduce.
    AllReduce,
    /// ZeRO-1 parameter allgather.
    AllGather,
    /// Control / parameter broadcast.
    Broadcast,
    /// ZeRO-1 owner update + parameter redistribution.
    OptimizerStep,
    /// Time blocked waiting on the pipeline (warm-up / cool-down idle —
    /// the schedule's bubble, directly visible per rank in the timeline).
    Bubble,
    /// Serving: forming a shape-compatible batch from the task pool.
    BatchAssembly,
    /// Serving: rollout-cache prefix lookup.
    CacheLookup,
    /// Serving: request validation + admission control.
    Admission,
    /// Coordinated checkpoint write.
    Checkpoint,
    /// A parked data-parallel replica waiting out a fault window (opens at
    /// retirement, closes at rejoin — balanced pairs prove every retired
    /// replica that was scheduled to return actually did).
    Outage,
    /// Elastic recovery work: supervisor restart attempts and the rejoin
    /// state re-shard (donor send / rejoiner receive).
    Recovery,
}

impl SpanCategory {
    /// All categories, in display order.
    pub const ALL: [SpanCategory; 15] = [
        SpanCategory::Forward,
        SpanCategory::Backward,
        SpanCategory::P2p,
        SpanCategory::AllToAll,
        SpanCategory::AllReduce,
        SpanCategory::AllGather,
        SpanCategory::Broadcast,
        SpanCategory::OptimizerStep,
        SpanCategory::Bubble,
        SpanCategory::BatchAssembly,
        SpanCategory::CacheLookup,
        SpanCategory::Admission,
        SpanCategory::Checkpoint,
        SpanCategory::Outage,
        SpanCategory::Recovery,
    ];

    /// Stable lowercase name (Prometheus label / Chrome-trace category).
    pub fn name(self) -> &'static str {
        match self {
            SpanCategory::Forward => "forward",
            SpanCategory::Backward => "backward",
            SpanCategory::P2p => "p2p",
            SpanCategory::AllToAll => "alltoall",
            SpanCategory::AllReduce => "allreduce",
            SpanCategory::AllGather => "allgather",
            SpanCategory::Broadcast => "broadcast",
            SpanCategory::OptimizerStep => "optimizer_step",
            SpanCategory::Bubble => "bubble",
            SpanCategory::BatchAssembly => "batch_assembly",
            SpanCategory::CacheLookup => "cache_lookup",
            SpanCategory::Admission => "admission",
            SpanCategory::Checkpoint => "checkpoint",
            SpanCategory::Outage => "outage",
            SpanCategory::Recovery => "recovery",
        }
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub category: SpanCategory,
    /// Site label (defaults to the category name).
    pub label: &'static str,
    /// The actor (rank thread / serving worker) that executed the span.
    pub actor: usize,
    /// Logical training step / request id, when the site tagged one.
    pub step: Option<u64>,
    /// Microbatch / ensemble-member index, when the site tagged one.
    pub micro: Option<u64>,
    /// Monotonic begin, nanoseconds since the tracer's epoch.
    pub begin_ns: u64,
    /// Monotonic end, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// Global logical order at open (deterministic modulo thread
    /// interleaving; unique per span).
    pub seq_begin: u64,
    /// Global logical order at close.
    pub seq_end: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

struct TracerInner {
    enabled: AtomicBool,
    epoch: Instant,
    seq: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    /// Named metric series registered for export. Recording through a series
    /// is *not* gated by `enabled` — they are the ops surface (latency, batch
    /// size, …) and stay live in production; only span/counter sites are
    /// subject to the one-atomic-load budget.
    series: Mutex<Vec<(String, MetricSeries)>>,
    /// Last-write-wins gauges (status snapshot export). Like series, gauges
    /// are the always-on ops surface and are not gated by `enabled`.
    gauges: Mutex<BTreeMap<String, f64>>,
}

/// A cloneable, thread-shared span tracer. `Tracer::default()` is disabled;
/// a disabled tracer's span sites cost one relaxed atomic load.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(false)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.span_count())
            .finish()
    }
}

impl Tracer {
    pub fn new(enabled: bool) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                series: Mutex::new(Vec::new()),
                gauges: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        Tracer::new(true)
    }

    /// A disabled tracer (span sites cost one atomic load).
    pub fn disabled() -> Self {
        Tracer::new(false)
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording at runtime (shared across all clones).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Open a span. The span closes (and is recorded) when the returned
    /// guard drops; tag it with [`SpanGuard::step`] / [`SpanGuard::micro`].
    ///
    /// Disabled fast path: one relaxed atomic load, no allocation, no lock.
    #[inline]
    pub fn span(&self, category: SpanCategory, actor: usize) -> SpanGuard {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return SpanGuard::noop();
        }
        self.begin_span(category, actor)
    }

    #[cold]
    fn begin_span(&self, category: SpanCategory, actor: usize) -> SpanGuard {
        let seq_begin = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            inner: Some(Arc::clone(&self.inner)),
            category,
            label: category.name(),
            actor,
            step: None,
            micro: None,
            begin_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            seq_begin,
        }
    }

    /// Bump a named counter. Disabled fast path: one relaxed atomic load.
    #[inline]
    pub fn incr(&self, name: &str, by: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        *self.inner.counters.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Bump a named counter regardless of the enabled flag. For rare
    /// operational events (recovery restarts, steps lost) that must stay
    /// visible in production where span tracing is off.
    pub fn incr_always(&self, name: &str, by: u64) {
        *self.inner.counters.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Set a last-write-wins gauge (always on, like series). Rendered as a
    /// Prometheus `gauge` family by [`Tracer::prometheus_text`].
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.gauges.lock().insert(name.to_string(), value);
    }

    /// Snapshot of the named gauges.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.inner.gauges.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Get-or-register a named metric series. The returned handle is shared:
    /// recording through it feeds the tracer's Prometheus export. Series
    /// record regardless of the enabled flag (they are the always-on ops
    /// surface).
    pub fn series(&self, name: &str) -> MetricSeries {
        let mut reg = self.inner.series.lock();
        if let Some((_, s)) = reg.iter().find(|(n, _)| n == name) {
            return s.clone();
        }
        let s = MetricSeries::new();
        reg.push((name.to_string(), s.clone()));
        s
    }

    /// Number of completed spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().len()
    }

    /// Copy out all completed spans (ordered by completion time).
    pub fn snapshot_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// Drain all completed spans, leaving the tracer empty.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.inner.spans.lock())
    }

    /// Snapshot of the named counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.counters.lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Snapshot of the registered metric series handles.
    pub fn series_list(&self) -> Vec<(String, MetricSeries)> {
        self.inner.series.lock().clone()
    }

    /// Export completed spans as Chrome-trace JSON (open in Perfetto or
    /// `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        crate::chrome::chrome_trace_json(&self.snapshot_spans())
    }

    /// Export span totals, counters, gauges, and metric-series
    /// summaries + histogram buckets in the Prometheus text exposition
    /// format.
    pub fn prometheus_text(&self) -> String {
        crate::prometheus::prometheus_text(
            &self.snapshot_spans(),
            &self.counters(),
            &self.gauges(),
            &self.series_list(),
        )
    }
}

/// An open span; recording happens when it drops (also on unwind/early
/// return, which keeps begin/end pairs balanced under faults).
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    /// `None` for the disabled-tracer no-op guard.
    inner: Option<Arc<TracerInner>>,
    category: SpanCategory,
    label: &'static str,
    actor: usize,
    step: Option<u64>,
    micro: Option<u64>,
    begin_ns: u64,
    seq_begin: u64,
}

impl SpanGuard {
    fn noop() -> Self {
        SpanGuard {
            inner: None,
            category: SpanCategory::Forward,
            label: "",
            actor: 0,
            step: None,
            micro: None,
            begin_ns: 0,
            seq_begin: 0,
        }
    }

    /// Tag the span with a logical step (or request id).
    pub fn step(mut self, step: u64) -> Self {
        if self.inner.is_some() {
            self.step = Some(step);
        }
        self
    }

    /// Tag the span with a microbatch / member index.
    pub fn micro(mut self, micro: u64) -> Self {
        if self.inner.is_some() {
            self.micro = Some(micro);
        }
        self
    }

    /// Override the site label (defaults to the category name).
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let end_ns = inner.epoch.elapsed().as_nanos() as u64;
        let seq_end = inner.seq.fetch_add(1, Ordering::Relaxed);
        inner.spans.lock().push(SpanRecord {
            category: self.category,
            label: self.label,
            actor: self.actor,
            step: self.step,
            micro: self.micro,
            begin_ns: self.begin_ns,
            end_ns,
            seq_begin: self.seq_begin,
            seq_end,
        });
    }
}

/// Verify per-actor begin/end balance and stack discipline: replaying every
/// actor's spans in logical-sequence order, each close must match the most
/// recently opened span, and nothing may stay open. Holds by construction
/// (guards close on drop, even through `?` returns and unwinds); the
/// property tests check it stays true under induced faults.
pub fn verify_balanced(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    // Per actor: interleave begin/end events by global sequence number.
    let mut events: HashMap<usize, Vec<(u64, bool, usize)>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.seq_end <= s.seq_begin {
            return Err(format!("span {i}: seq_end {} <= seq_begin {}", s.seq_end, s.seq_begin));
        }
        let e = events.entry(s.actor).or_default();
        e.push((s.seq_begin, true, i));
        e.push((s.seq_end, false, i));
    }
    for (actor, mut evs) in events {
        evs.sort_unstable_by_key(|&(seq, _, _)| seq);
        let mut stack: Vec<usize> = Vec::new();
        for (seq, is_begin, i) in evs {
            if is_begin {
                stack.push(i);
            } else {
                match stack.pop() {
                    Some(top) if top == i => {}
                    Some(top) => {
                        return Err(format!(
                            "actor {actor}: span {i} ({}) closed at seq {seq} while span {top} \
                             ({}) was innermost — interleaved, not nested",
                            spans[i].label, spans[top].label
                        ));
                    }
                    None => return Err(format!("actor {actor}: close without open at seq {seq}")),
                }
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("actor {actor}: span {open} ({}) never closed", spans[open].label));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _g = t.span(SpanCategory::Forward, 0).step(1).micro(2);
        }
        t.incr("x", 3);
        assert_eq!(t.span_count(), 0);
        assert!(t.counters().is_empty());
    }

    #[test]
    fn spans_record_on_drop_with_tags() {
        let t = Tracer::enabled();
        {
            let _outer = t.span(SpanCategory::Forward, 3).step(7).micro(1);
            let _inner = t.span(SpanCategory::AllToAll, 3).step(7);
        }
        let spans = t.snapshot_spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].category, SpanCategory::AllToAll);
        assert_eq!(spans[1].category, SpanCategory::Forward);
        assert_eq!(spans[1].step, Some(7));
        assert_eq!(spans[1].micro, Some(1));
        assert_eq!(spans[1].actor, 3);
        assert!(spans[1].seq_begin < spans[0].seq_begin);
        verify_balanced(&spans).expect("proper nesting");
    }

    #[test]
    fn early_return_still_closes_spans() {
        let t = Tracer::enabled();
        fn failing(t: &Tracer) -> Result<(), ()> {
            let _g = t.span(SpanCategory::Backward, 0);
            Err(())
        }
        assert!(failing(&t).is_err());
        assert_eq!(t.span_count(), 1);
        verify_balanced(&t.snapshot_spans()).expect("balanced after early return");
    }

    #[test]
    fn verify_balanced_rejects_interleaving() {
        // Hand-built interleaved (not nested) spans on one actor:
        // a opens, b opens, a closes, b closes.
        let bad = vec![
            SpanRecord {
                category: SpanCategory::Forward,
                label: "a",
                actor: 0,
                step: None,
                micro: None,
                begin_ns: 0,
                end_ns: 2,
                seq_begin: 0,
                seq_end: 2,
            },
            SpanRecord {
                category: SpanCategory::Backward,
                label: "b",
                actor: 0,
                step: None,
                micro: None,
                begin_ns: 1,
                end_ns: 3,
                seq_begin: 1,
                seq_end: 3,
            },
        ];
        assert!(verify_balanced(&bad).is_err());
    }

    #[test]
    fn counters_and_series_share_state_across_clones() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t.incr("hits", 1);
        t2.incr("hits", 2);
        assert_eq!(t.counters(), vec![("hits".to_string(), 3)]);
        let s = t.series("latency");
        s.record(5.0);
        assert_eq!(t2.series("latency").count(), 1);
        // Series stay live even when disabled (ops surface).
        t.set_enabled(false);
        t2.series("latency").record(6.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn runtime_toggle_gates_span_sites() {
        let t = Tracer::disabled();
        {
            let _g = t.span(SpanCategory::Forward, 0);
        }
        t.set_enabled(true);
        {
            let _g = t.span(SpanCategory::Forward, 0);
        }
        assert_eq!(t.span_count(), 1);
    }
}
