//! Live engine introspection: one [`StatusReport`] snapshot of everything
//! an operator needs to answer "is serving healthy *right now*".
//!
//! The report is plain data — the serve engine (which can see the
//! scheduler, quota table, replica pools, cache, and SLO trackers) fills it
//! in; this module only defines the shape, the text dashboard rendering
//! ([`std::fmt::Display`]), and the Prometheus gauge export
//! ([`StatusReport::export_gauges`] pushes every numeric field into the
//! tracer's gauge registry, from where the existing
//! [`prometheus_text`](crate::prometheus::prometheus_text) path renders it).

use crate::metrics::MetricSummary;
use crate::slo::SloState;
use crate::tracer::Tracer;

/// One serving tier's scheduling and SLO state.
#[derive(Clone, Debug, Default)]
pub struct TierStatus {
    pub name: String,
    /// Entries waiting in the dispatch queue right now.
    pub queue_depth: usize,
    /// EDF/WFQ queue-wait distribution (enqueue → dispatch), milliseconds.
    pub queue_wait_ms: Option<MetricSummary>,
    /// WFQ virtual-time lag distribution (how far behind the fair-share
    /// frontier tasks were when dispatched).
    pub wfq_lag: Option<MetricSummary>,
    /// EWMA service-time estimate (ms per work unit), `None` until warm.
    pub est_ms_per_unit: Option<f64>,
    /// Samples the estimator has absorbed.
    pub est_samples: u64,
    /// Model replicas backing the tier.
    pub replicas: usize,
    /// Worker threads dispatching for the tier.
    pub workers: usize,
    pub admitted: u64,
    pub completed: u64,
    pub shed: u64,
    /// Live SLO state, when the engine has an objective configured.
    pub slo: Option<SloState>,
}

/// One tenant's admission and quota state.
#[derive(Clone, Debug, Default)]
pub struct TenantStatus {
    pub name: String,
    /// Current token-bucket balance, `None` for unlimited tenants.
    pub quota_tokens: Option<f64>,
    pub submitted: u64,
    pub completed: u64,
    pub shed: u64,
    pub quota_denied: u64,
    pub rejected: u64,
    pub slo: Option<SloState>,
}

/// Rollout-cache occupancy and effectiveness.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStatus {
    pub hits: u64,
    pub misses: u64,
    pub hit_rate: f64,
    pub bytes: u64,
    pub budget_bytes: u64,
    pub entries: u64,
    pub evictions: u64,
}

/// A single point-in-time introspection snapshot of a serving engine.
#[derive(Clone, Debug, Default)]
pub struct StatusReport {
    pub tiers: Vec<TierStatus>,
    pub tenants: Vec<TenantStatus>,
    pub cache: Option<CacheStatus>,
    /// Requests admitted but not yet terminal.
    pub in_flight: u64,
    /// Named counters worth surfacing (swipe recovery/restart counters,
    /// cache hit counters, …) — typically a filtered tracer counter list.
    pub counters: Vec<(String, u64)>,
}

fn fmt_summary(s: &Option<MetricSummary>) -> String {
    match s {
        Some(m) if m.count > 0 => {
            format!("p50={:.2} p99={:.2} max={:.2} (n={})", m.p50, m.p99, m.max, m.count)
        }
        _ => "-".to_string(),
    }
}

impl std::fmt::Display for StatusReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== engine status ==")?;
        writeln!(f, "in-flight: {}", self.in_flight)?;
        for t in &self.tiers {
            writeln!(
                f,
                "tier {:<8} depth={:<3} admitted={} completed={} shed={} replicas={} workers={}",
                t.name, t.queue_depth, t.admitted, t.completed, t.shed, t.replicas, t.workers
            )?;
            writeln!(f, "  queue wait ms: {}", fmt_summary(&t.queue_wait_ms))?;
            writeln!(f, "  wfq lag:       {}", fmt_summary(&t.wfq_lag))?;
            match t.est_ms_per_unit {
                Some(ms) => {
                    writeln!(f, "  est: {ms:.3} ms/unit (n={})", t.est_samples)?;
                }
                None => writeln!(f, "  est: warming (n={})", t.est_samples)?,
            }
            if let Some(slo) = &t.slo {
                writeln!(f, "  slo: {slo}")?;
            }
        }
        for t in &self.tenants {
            write!(
                f,
                "tenant {:<12} submitted={} completed={} shed={} quota_denied={} rejected={}",
                t.name, t.submitted, t.completed, t.shed, t.quota_denied, t.rejected
            )?;
            match t.quota_tokens {
                Some(tok) => writeln!(f, " tokens={tok:.1}")?,
                None => writeln!(f, " tokens=unlimited")?,
            }
            if let Some(slo) = &t.slo {
                writeln!(f, "  slo: {slo}")?;
            }
        }
        if let Some(c) = &self.cache {
            writeln!(
                f,
                "cache: hit_rate={:.1}% entries={} bytes={}/{} evictions={}",
                c.hit_rate * 100.0,
                c.entries,
                c.bytes,
                c.budget_bytes,
                c.evictions
            )?;
        }
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        Ok(())
    }
}

impl StatusReport {
    /// Push every numeric field as a gauge into `tracer`'s gauge registry;
    /// the next [`Tracer::prometheus_text`] render then exposes the whole
    /// snapshot through the existing Prometheus path.
    pub fn export_gauges(&self, tracer: &Tracer) {
        tracer.set_gauge("status_in_flight", self.in_flight as f64);
        for t in &self.tiers {
            let g = |k: &str, v: f64| tracer.set_gauge(&format!("status_{}_{k}", t.name), v);
            g("queue_depth", t.queue_depth as f64);
            g("admitted", t.admitted as f64);
            g("completed", t.completed as f64);
            g("shed", t.shed as f64);
            g("replicas", t.replicas as f64);
            if let Some(w) = &t.queue_wait_ms {
                g("queue_wait_p99_ms", w.p99);
            }
            if let Some(l) = &t.wfq_lag {
                g("wfq_lag_p99", l.p99);
            }
            if let Some(ms) = t.est_ms_per_unit {
                g("est_ms_per_unit", ms);
            }
            if let Some(slo) = &t.slo {
                g("slo_severity", slo.verdict.severity() as f64);
                g("slo_long_burn", slo.long_burn);
                g("slo_budget_remaining", slo.budget_remaining);
            }
        }
        for t in &self.tenants {
            if let Some(tok) = t.quota_tokens {
                tracer.set_gauge(&format!("status_tenant_{}_tokens", t.name), tok);
            }
        }
        if let Some(c) = &self.cache {
            tracer.set_gauge("status_cache_hit_rate", c.hit_rate);
            tracer.set_gauge("status_cache_bytes", c.bytes as f64);
            tracer.set_gauge("status_cache_entries", c.entries as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{SloState, SloVerdict};

    fn sample_report() -> StatusReport {
        StatusReport {
            tiers: vec![TierStatus {
                name: "fast".into(),
                queue_depth: 3,
                queue_wait_ms: Some(MetricSummary {
                    count: 10,
                    mean: 1.0,
                    p50: 0.9,
                    p95: 2.0,
                    p99: 2.5,
                    max: 3.0,
                }),
                wfq_lag: None,
                est_ms_per_unit: Some(1.25),
                est_samples: 42,
                replicas: 2,
                workers: 2,
                admitted: 100,
                completed: 95,
                shed: 2,
                slo: Some(SloState {
                    verdict: SloVerdict::Warn,
                    short_burn: 1.5,
                    long_burn: 1.2,
                    budget_remaining: 0.4,
                    good_total: 90,
                    total: 97,
                }),
            }],
            tenants: vec![TenantStatus {
                name: "ops".into(),
                quota_tokens: Some(17.5),
                submitted: 50,
                completed: 48,
                shed: 1,
                quota_denied: 1,
                rejected: 0,
                slo: None,
            }],
            cache: Some(CacheStatus {
                hits: 70,
                misses: 30,
                hit_rate: 0.7,
                bytes: 1024,
                budget_bytes: 4096,
                entries: 5,
                evictions: 1,
            }),
            in_flight: 3,
            counters: vec![("swipe_restarts".into(), 2)],
        }
    }

    #[test]
    fn dashboard_renders_every_section() {
        let text = sample_report().to_string();
        for needle in [
            "engine status",
            "tier fast",
            "queue wait ms: p50=0.90",
            "est: 1.250 ms/unit",
            "slo: warn",
            "tenant ops",
            "tokens=17.5",
            "cache: hit_rate=70.0%",
            "counter swipe_restarts = 2",
            "in-flight: 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn gauges_flow_through_the_prometheus_path() {
        let tracer = Tracer::enabled();
        sample_report().export_gauges(&tracer);
        let prom = tracer.prometheus_text();
        for needle in [
            "aeris_status_in_flight 3",
            "aeris_status_fast_queue_depth 3",
            "aeris_status_fast_slo_severity 1",
            "aeris_status_fast_slo_budget_remaining 0.4",
            "aeris_status_tenant_ops_tokens 17.5",
            "aeris_status_cache_hit_rate 0.7",
            "# TYPE aeris_status_in_flight gauge",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    }
}
