//! Prometheus text-exposition export (and a round-trip parser).
//!
//! Renders five families from one tracer snapshot:
//!
//! - `aeris_spans_total{category=...}` / `aeris_span_seconds_total{category=...}`
//!   — span counts and cumulative durations per category;
//! - `aeris_<counter>_total` — the tracer's named counters;
//! - `aeris_<gauge>` — last-write-wins gauges (the status-snapshot export);
//! - per registered [`MetricSeries`]: a `summary`-style block with
//!   `_count`, `_sum`, and `{quantile="0.5|0.95|0.99"}` sample lines, plus a
//!   full `aeris_<name>_hist` histogram family — cumulative
//!   `_bucket{le="..."}` lines straight from the series' log-linear bucket
//!   array, with exact `_sum`/`_count`.
//!
//! Output is deterministic (categories in declaration order, counters,
//! gauges, and series sorted by name) so tests can assert on exact lines.
//! [`parse_text`] parses the same format back into samples — the round-trip
//! test surface for everything above.

use crate::metrics::MetricSeries;
use crate::tracer::{SpanCategory, SpanRecord};

/// Sanitize a user-supplied name into a Prometheus metric name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`, everything else mapped to `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label *value* for the text exposition format: backslash, double
/// quote, and newline get backslash-escaped.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other), // covers \\ and \"
            None => out.push('\\'),
        }
    }
    out
}

/// One parsed exposition line: `name{labels...} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parse Prometheus text exposition back into samples. `#` comment/TYPE
/// lines and blanks are skipped; label values are unescaped. Errors carry
/// the offending line.
pub fn parse_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("{what}: {line:?}");
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line.rfind('}').ok_or_else(|| err("unterminated label set"))?;
                (&line[..brace], Some((&line[brace + 1..close], &line[close + 1..])))
            }
            None => (line.split_whitespace().next().unwrap_or(""), None),
        };
        let (labels, value_str) = match rest {
            Some((label_str, tail)) => {
                let mut labels = Vec::new();
                let mut s = label_str;
                while !s.is_empty() {
                    let eq = s.find('=').ok_or_else(|| err("label missing '='"))?;
                    let key = s[..eq].trim().to_string();
                    let after = &s[eq + 1..];
                    if !after.starts_with('"') {
                        return Err(err("label value missing opening quote"));
                    }
                    // Find the closing unescaped quote.
                    let mut end = None;
                    let bytes = after.as_bytes();
                    let mut i = 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                end = Some(i);
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    let end = end.ok_or_else(|| err("label value missing closing quote"))?;
                    labels.push((key, unescape_label(&after[1..end])));
                    s = after[end + 1..].trim_start_matches(',').trim_start();
                }
                (labels, tail.trim())
            }
            None => {
                let mut parts = line.split_whitespace();
                parts.next();
                (Vec::new(), parts.next().unwrap_or(""))
            }
        };
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| err("bad sample value"))?,
        };
        out.push(PromSample { name: name_part.trim().to_string(), labels, value });
    }
    Ok(out)
}

fn fmt_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{le}")
    }
}

/// Render the Prometheus text format for a tracer snapshot.
pub fn prometheus_text(
    spans: &[SpanRecord],
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    series: &[(String, MetricSeries)],
) -> String {
    let mut out = String::new();

    // Span totals per category.
    out.push_str("# TYPE aeris_spans_total counter\n");
    let mut any = false;
    for cat in SpanCategory::ALL {
        let n = spans.iter().filter(|s| s.category == cat).count();
        if n > 0 {
            out.push_str(&format!(
                "aeris_spans_total{{category=\"{}\"}} {n}\n",
                escape_label(cat.name())
            ));
            any = true;
        }
    }
    if !any {
        out.push_str("aeris_spans_total 0\n");
    }
    out.push_str("# TYPE aeris_span_seconds_total counter\n");
    for cat in SpanCategory::ALL {
        let ns: u64 = spans.iter().filter(|s| s.category == cat).map(|s| s.dur_ns()).sum();
        if spans.iter().any(|s| s.category == cat) {
            out.push_str(&format!(
                "aeris_span_seconds_total{{category=\"{}\"}} {:.9}\n",
                escape_label(cat.name()),
                ns as f64 / 1e9
            ));
        }
    }

    // Named counters (BTreeMap order upstream; sort defensively anyway).
    let mut counters: Vec<_> = counters.to_vec();
    counters.sort();
    for (name, v) in &counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE aeris_{name}_total counter\naeris_{name}_total {v}\n"));
    }

    // Gauges.
    let mut gauges: Vec<_> = gauges.to_vec();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, v) in &gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE aeris_{name} gauge\naeris_{name} {v}\n"));
    }

    // Metric series: summary block + histogram family.
    let mut series: Vec<_> = series.to_vec();
    series.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, s) in &series {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE aeris_{name} summary\n"));
        match s.summary() {
            Some(sum) => {
                out.push_str(&format!(
                    "aeris_{name}{{quantile=\"0.5\"}} {}\naeris_{name}{{quantile=\"0.95\"}} {}\n\
                     aeris_{name}{{quantile=\"0.99\"}} {}\naeris_{name}_count {}\n\
                     aeris_{name}_sum {}\n",
                    sum.p50,
                    sum.p95,
                    sum.p99,
                    sum.count,
                    s.sum()
                ));
            }
            None => {
                out.push_str(&format!("aeris_{name}_count 0\naeris_{name}_sum 0\n"));
            }
        }
        // The log-linear bucket array as a native histogram family (named
        // `_hist` so it cannot collide with the summary family above).
        let count = s.count();
        out.push_str(&format!("# TYPE aeris_{name}_hist histogram\n"));
        for (le, cum) in s.histogram().cumulative_buckets() {
            out.push_str(&format!(
                "aeris_{name}_hist_bucket{{le=\"{}\"}} {cum}\n",
                fmt_le(le)
            ));
        }
        out.push_str(&format!(
            "aeris_{name}_hist_bucket{{le=\"+Inf\"}} {count}\naeris_{name}_hist_sum {}\n\
             aeris_{name}_hist_count {count}\n",
            s.sum()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanCategory, Tracer};

    #[test]
    fn renders_spans_counters_and_series() {
        let t = Tracer::enabled();
        {
            let _f = t.span(SpanCategory::Forward, 0);
        }
        {
            let _f = t.span(SpanCategory::Forward, 1);
        }
        t.incr("cache hits", 5);
        let s = t.series("latency_ms");
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        let text = t.prometheus_text();
        assert!(text.contains("aeris_spans_total{category=\"forward\"} 2"));
        assert!(text.contains("aeris_cache_hits_total 5"), "{text}");
        assert!(text.contains("aeris_latency_ms_count 4"));
        assert!(text.contains("aeris_latency_ms_sum 10"));
        assert!(text.contains("aeris_latency_ms{quantile=\"0.5\"}"));
        // The histogram family rides along with exact sum/count.
        assert!(text.contains("# TYPE aeris_latency_ms_hist histogram"));
        assert!(text.contains("aeris_latency_ms_hist_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("aeris_latency_ms_hist_sum 10"));
        assert!(text.contains("aeris_latency_ms_hist_count 4"));
    }

    #[test]
    fn empty_tracer_renders_zero_totals() {
        let t = Tracer::enabled();
        let text = t.prometheus_text();
        assert!(text.contains("aeris_spans_total 0"));
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("p2p/bytes sent"), "p2p_bytes_sent");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn escapes_and_unescapes_label_values() {
        let raw = "tenant \"a\\b\"\nline2";
        let escaped = escape_label(raw);
        assert_eq!(escaped, "tenant \\\"a\\\\b\\\"\\nline2");
        assert_eq!(unescape_label(&escaped), raw);
        // Round trip through a full exposition line.
        let line = format!("aeris_x{{tenant=\"{escaped}\",tier=\"fast\"}} 1.5");
        let parsed = parse_text(&line).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "aeris_x");
        assert_eq!(parsed[0].label("tenant"), Some(raw));
        assert_eq!(parsed[0].label("tier"), Some("fast"));
        assert_eq!(parsed[0].value, 1.5);
    }

    #[test]
    fn parser_round_trips_histogram_bucket_lines() {
        let t = Tracer::disabled();
        let s = t.series("wait_ms");
        for v in [0.5, 1.0, 2.0, 4.0, 8.0, 100.0] {
            s.record(v);
        }
        let text = t.prometheus_text();
        let samples = parse_text(&text).unwrap();
        let buckets: Vec<_> =
            samples.iter().filter(|p| p.name == "aeris_wait_ms_hist_bucket").collect();
        assert!(buckets.len() >= 2, "expected bucket lines in:\n{text}");
        // Cumulative counts are monotone in `le`, and the +Inf bucket equals
        // the _count line.
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "non-monotone cumulative counts");
            prev = b.value;
        }
        let inf = buckets.iter().find(|b| b.label("le") == Some("+Inf")).expect("+Inf bucket");
        assert_eq!(inf.value, 6.0);
        let count = samples.iter().find(|p| p.name == "aeris_wait_ms_hist_count").unwrap();
        assert_eq!(count.value, 6.0);
        let sum = samples.iter().find(|p| p.name == "aeris_wait_ms_hist_sum").unwrap();
        assert_eq!(sum.value, 115.5);
        // And the `le` bounds themselves parse as ascending numbers.
        let les: Vec<f64> = buckets
            .iter()
            .map(|b| match b.label("le").unwrap() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            })
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "les not ascending: {les:?}");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_text("aeris_x{unterminated 1").is_err());
        assert!(parse_text("aeris_x{k=\"v} 1").is_err());
        assert!(parse_text("aeris_x notanumber").is_err());
        // +Inf/-Inf are accepted as values.
        assert_eq!(parse_text("x +Inf").unwrap()[0].value, f64::INFINITY);
    }

    #[test]
    fn gauges_render_sorted_with_type_lines() {
        let t = Tracer::disabled();
        t.set_gauge("zeta", 2.0);
        t.set_gauge("alpha", 1.0);
        let text = t.prometheus_text();
        let a = text.find("aeris_alpha 1").expect("alpha gauge");
        let z = text.find("aeris_zeta 2").expect("zeta gauge");
        assert!(a < z, "gauges must render sorted by name");
        assert!(text.contains("# TYPE aeris_alpha gauge"));
    }
}
