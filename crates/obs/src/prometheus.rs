//! Prometheus text-exposition export.
//!
//! Renders three families from one tracer snapshot:
//!
//! - `aeris_spans_total{category=...}` / `aeris_span_seconds_total{category=...}`
//!   — span counts and cumulative durations per category;
//! - `aeris_<counter>_total` — the tracer's named counters;
//! - per registered [`MetricSeries`]: a `summary`-style block with
//!   `_count`, `_sum`, and `{quantile="0.5|0.95|0.99"}` sample lines, all
//!   computed in one lock acquisition via [`MetricSeries::summary`].
//!
//! Output is deterministic (categories in declaration order, counters and
//! series sorted by name) so tests can assert on exact lines.

use crate::metrics::MetricSeries;
use crate::tracer::{SpanCategory, SpanRecord};

/// Sanitize a user-supplied name into a Prometheus metric name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`, everything else mapped to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render the Prometheus text format for a tracer snapshot.
pub fn prometheus_text(
    spans: &[SpanRecord],
    counters: &[(String, u64)],
    series: &[(String, MetricSeries)],
) -> String {
    let mut out = String::new();

    // Span totals per category.
    out.push_str("# TYPE aeris_spans_total counter\n");
    let mut any = false;
    for cat in SpanCategory::ALL {
        let n = spans.iter().filter(|s| s.category == cat).count();
        if n > 0 {
            out.push_str(&format!("aeris_spans_total{{category=\"{}\"}} {n}\n", cat.name()));
            any = true;
        }
    }
    if !any {
        out.push_str("aeris_spans_total 0\n");
    }
    out.push_str("# TYPE aeris_span_seconds_total counter\n");
    for cat in SpanCategory::ALL {
        let ns: u64 = spans.iter().filter(|s| s.category == cat).map(|s| s.dur_ns()).sum();
        if spans.iter().any(|s| s.category == cat) {
            out.push_str(&format!(
                "aeris_span_seconds_total{{category=\"{}\"}} {:.9}\n",
                cat.name(),
                ns as f64 / 1e9
            ));
        }
    }

    // Named counters (BTreeMap order upstream; sort defensively anyway).
    let mut counters: Vec<_> = counters.to_vec();
    counters.sort();
    for (name, v) in &counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE aeris_{name}_total counter\naeris_{name}_total {v}\n"));
    }

    // Metric-series summaries.
    let mut series: Vec<_> = series.to_vec();
    series.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, s) in &series {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE aeris_{name} summary\n"));
        match s.summary() {
            Some(sum) => {
                out.push_str(&format!(
                    "aeris_{name}{{quantile=\"0.5\"}} {}\naeris_{name}{{quantile=\"0.95\"}} {}\n\
                     aeris_{name}{{quantile=\"0.99\"}} {}\naeris_{name}_count {}\n\
                     aeris_{name}_sum {}\n",
                    sum.p50,
                    sum.p95,
                    sum.p99,
                    sum.count,
                    sum.mean * sum.count as f64
                ));
            }
            None => {
                out.push_str(&format!("aeris_{name}_count 0\naeris_{name}_sum 0\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanCategory, Tracer};

    #[test]
    fn renders_spans_counters_and_series() {
        let t = Tracer::enabled();
        {
            let _f = t.span(SpanCategory::Forward, 0);
        }
        {
            let _f = t.span(SpanCategory::Forward, 1);
        }
        t.incr("cache hits", 5);
        let s = t.series("latency_ms");
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        let text = t.prometheus_text();
        assert!(text.contains("aeris_spans_total{category=\"forward\"} 2"));
        assert!(text.contains("aeris_cache_hits_total 5"), "{text}");
        assert!(text.contains("aeris_latency_ms_count 4"));
        assert!(text.contains("aeris_latency_ms_sum 10"));
        assert!(text.contains("aeris_latency_ms{quantile=\"0.5\"}"));
    }

    #[test]
    fn empty_tracer_renders_zero_totals() {
        let t = Tracer::enabled();
        let text = t.prometheus_text();
        assert!(text.contains("aeris_spans_total 0"));
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("p2p/bytes sent"), "p2p_bytes_sent");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }
}
