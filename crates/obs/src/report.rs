//! The measured-vs-modeled step report.
//!
//! Aggregates a recorded trace into per-step [`StepBreakdown`]s (wall time
//! plus cumulative per-category span seconds), derives a measured MFU, and
//! prints it side by side with a [`Prediction`] from `aeris-perfmodel` for
//! the same configuration — the reproduction of the paper's Table III
//! methodology, where the analytical model is checked against what the run
//! actually did.
//!
//! The report also carries the paper's **message-size law**
//! `M = b·s·h / SP / WP` (§VI-C): [`MessageLaw`] computes both `M` and the
//! exact all-to-all byte total the SWiPe runtime must produce for a given
//! topology, and [`LawCheck`] compares it against the measured per-class
//! traffic — as an *exact* integer equality, not a tolerance.

use crate::tracer::{SpanCategory, SpanRecord};
pub use aeris_perfmodel::throughput::Prediction;

/// Measured communication volume per class, in bytes. A plain carrier struct
/// so runtimes (e.g. `swipe::comm::Traffic`) can hand their totals to the
/// report without `aeris-obs` depending on them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommBytes {
    pub p2p: u64,
    pub alltoall: u64,
    pub allreduce: u64,
    pub allgather: u64,
    pub broadcast: u64,
}

impl CommBytes {
    pub fn total(&self) -> u64 {
        self.p2p + self.alltoall + self.allreduce + self.allgather + self.broadcast
    }
}

/// One training step, aggregated from its spans.
#[derive(Clone, Debug)]
pub struct StepBreakdown {
    pub step: u64,
    /// Wall-clock span of the step: latest end − earliest begin over all
    /// spans tagged with this step, across all ranks.
    pub wall_s: f64,
    /// Cumulative busy seconds and span count per category, summed over
    /// ranks (so a category can exceed `wall_s` when ranks overlap).
    pub by_category: Vec<(SpanCategory, f64, usize)>,
}

impl StepBreakdown {
    /// Cumulative seconds in one category.
    pub fn seconds(&self, cat: SpanCategory) -> f64 {
        self.by_category.iter().find(|(c, _, _)| *c == cat).map_or(0.0, |(_, s, _)| *s)
    }

    /// Span count in one category.
    pub fn count(&self, cat: SpanCategory) -> usize {
        self.by_category.iter().find(|(c, _, _)| *c == cat).map_or(0, |(_, _, n)| *n)
    }
}

/// Group step-tagged spans into per-step breakdowns, ordered by step.
/// Untagged spans are ignored.
pub fn step_breakdowns(spans: &[SpanRecord]) -> Vec<StepBreakdown> {
    use std::collections::BTreeMap;
    let mut steps: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if let Some(step) = s.step {
            steps.entry(step).or_default().push(s);
        }
    }
    steps
        .into_iter()
        .map(|(step, spans)| {
            let begin = spans.iter().map(|s| s.begin_ns).min().unwrap_or(0);
            let end = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
            let mut by_category = Vec::new();
            for cat in SpanCategory::ALL {
                let matching: Vec<_> = spans.iter().filter(|s| s.category == cat).collect();
                if !matching.is_empty() {
                    let secs: f64 =
                        matching.iter().map(|s| s.dur_ns() as f64 / 1e9).sum();
                    by_category.push((cat, secs, matching.len()));
                }
            }
            StepBreakdown { step, wall_s: (end - begin) as f64 / 1e9, by_category }
        })
        .collect()
}

/// The paper's message-size law for one topology: `M = b·s·h / SP / WP`
/// elements per all-to-all message (b = 1 microbatch per instance), plus the
/// exact byte total the SWiPe runtime's Ulysses exchanges must record.
#[derive(Clone, Copy, Debug)]
pub struct MessageLaw {
    /// Sequence length s (tokens).
    pub tokens: u64,
    /// Hidden dim h.
    pub dim: u64,
    /// Sequence-parallel degree.
    pub sp: u64,
    /// Window-parallel degree (A×B).
    pub wp: u64,
    /// Data-parallel degree.
    pub dp: u64,
    /// Microbatches per step (gradient accumulation).
    pub gas: u64,
    /// Transformer blocks executing Ulysses all-to-alls.
    pub blocks: u64,
    /// Optimizer steps traced.
    pub steps: u64,
}

impl MessageLaw {
    /// `M` in elements: tokens·dim / SP / WP.
    pub fn m_elems(&self) -> u64 {
        self.tokens * self.dim / (self.sp * self.wp)
    }

    /// `M` in bytes (f32 activations in this reproduction).
    pub fn m_bytes(&self) -> u64 {
        4 * self.m_elems()
    }

    /// Exact all-to-all bytes the whole run must record. Per block, per
    /// microbatch, each of the SP ranks in each of the WP groups ships its
    /// `rows×cols` slice (rows = tokens/(WP·SP), cols = dim/SP) to the
    /// `SP−1` peers **eight** times — QKV scatter (×3) + attention-output
    /// gather (×1) forward, and the mirrored gather (×1) + scatter (×3)
    /// backward — with the rank's own chunk staying local. Equivalently
    /// `8 · M_bytes · (SP−1)/SP` per block-microbatch summed over the
    /// WP·SP ranks of one instance, times blocks · DP · GAS · steps.
    pub fn expected_alltoall_bytes(&self) -> u64 {
        let rows = self.tokens / (self.wp * self.sp);
        let cols = self.dim / self.sp;
        8 * rows * cols * (self.sp - 1) * 4 * self.blocks * self.wp * self.sp * self.dp * self.gas
            * self.steps
    }

    /// Check the law against measured traffic: exact integer equality.
    pub fn check(&self, measured_alltoall_bytes: u64) -> LawCheck {
        LawCheck {
            m_bytes: self.m_bytes(),
            expected_alltoall_bytes: self.expected_alltoall_bytes(),
            measured_alltoall_bytes,
            exact: self.expected_alltoall_bytes() == measured_alltoall_bytes,
        }
    }
}

/// Outcome of checking M = b·s·h/SP/WP against the byte counters.
#[derive(Clone, Copy, Debug)]
pub struct LawCheck {
    /// M per message, bytes.
    pub m_bytes: u64,
    /// Bytes the law predicts for the whole traced run.
    pub expected_alltoall_bytes: u64,
    /// Bytes the runtime's `Traffic` counters recorded.
    pub measured_alltoall_bytes: u64,
    /// Exact equality (no tolerance).
    pub exact: bool,
}

/// Everything the report needs.
pub struct MfuInputs<'a> {
    /// The recorded trace (step-tagged spans drive the breakdowns).
    pub spans: &'a [SpanRecord],
    /// Measured per-class communication bytes for the traced run.
    pub comm: CommBytes,
    /// Message-size law for the topology, when checking it.
    pub law: Option<MessageLaw>,
    /// Model FLOPs per optimizer step (all microbatches, fwd+bwd).
    pub flops_per_step: f64,
    /// Ranks in the run.
    pub ranks: usize,
    /// Peak FLOP/s of one rank's hardware share (for measured MFU).
    pub peak_flops_per_rank: f64,
    /// The analytical model's prediction for the same configuration.
    pub predicted: Option<Prediction>,
}

/// The assembled measured-vs-modeled report. `Display` prints the
/// side-by-side table.
#[derive(Clone, Debug)]
pub struct MfuReport {
    pub steps: Vec<StepBreakdown>,
    /// Mean measured wall seconds per step.
    pub measured_step_s: f64,
    /// Measured sustained FLOP/s.
    pub measured_flops: f64,
    /// Measured MFU vs `ranks × peak_flops_per_rank`.
    pub measured_mfu: f64,
    pub comm: CommBytes,
    pub law: Option<LawCheck>,
    pub predicted: Option<Prediction>,
}

/// Build the report from a trace.
pub fn mfu_report(inputs: &MfuInputs<'_>) -> MfuReport {
    let steps = step_breakdowns(inputs.spans);
    let measured_step_s = if steps.is_empty() {
        0.0
    } else {
        steps.iter().map(|s| s.wall_s).sum::<f64>() / steps.len() as f64
    };
    let measured_flops =
        if measured_step_s > 0.0 { inputs.flops_per_step / measured_step_s } else { 0.0 };
    let peak = inputs.ranks as f64 * inputs.peak_flops_per_rank;
    let measured_mfu = if peak > 0.0 { measured_flops / peak } else { 0.0 };
    MfuReport {
        steps,
        measured_step_s,
        measured_flops,
        measured_mfu,
        comm: inputs.comm,
        law: inputs.law.map(|l| l.check(inputs.comm.alltoall)),
        predicted: inputs.predicted,
    }
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

impl std::fmt::Display for MfuReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== AERIS step report: measured vs modeled ==")?;
        writeln!(f, "steps traced: {}", self.steps.len())?;
        // Per-category busy seconds averaged over steps.
        if !self.steps.is_empty() {
            writeln!(f, "-- mean busy seconds per step (summed over ranks) --")?;
            for cat in SpanCategory::ALL {
                let tot: f64 = self.steps.iter().map(|s| s.seconds(cat)).sum();
                let n: usize = self.steps.iter().map(|s| s.count(cat)).sum();
                if n > 0 {
                    writeln!(
                        f,
                        "  {:<15} {:>10.6} s  ({} spans)",
                        cat.name(),
                        tot / self.steps.len() as f64,
                        n
                    )?;
                }
            }
        }
        writeln!(f, "-- communication bytes (measured) --")?;
        writeln!(f, "  p2p        {:>14}", human_bytes(self.comm.p2p))?;
        writeln!(f, "  alltoall   {:>14}", human_bytes(self.comm.alltoall))?;
        writeln!(f, "  allreduce  {:>14}", human_bytes(self.comm.allreduce))?;
        writeln!(f, "  allgather  {:>14}", human_bytes(self.comm.allgather))?;
        writeln!(f, "  broadcast  {:>14}", human_bytes(self.comm.broadcast))?;
        if let Some(law) = &self.law {
            writeln!(f, "-- message-size law M = b·s·h/SP/WP --")?;
            writeln!(f, "  M per message        {:>14}", human_bytes(law.m_bytes))?;
            writeln!(
                f,
                "  alltoall expected    {:>14}  ({} B)",
                human_bytes(law.expected_alltoall_bytes),
                law.expected_alltoall_bytes
            )?;
            writeln!(
                f,
                "  alltoall measured    {:>14}  ({} B)",
                human_bytes(law.measured_alltoall_bytes),
                law.measured_alltoall_bytes
            )?;
            writeln!(f, "  exact match          {:>14}", if law.exact { "PASS" } else { "FAIL" })?;
        }
        writeln!(f, "-- step time / MFU --")?;
        match &self.predicted {
            Some(p) => {
                writeln!(f, "  {:<22} {:>14} {:>14}", "", "measured", "modeled")?;
                writeln!(
                    f,
                    "  {:<22} {:>12.6} s {:>12.6} s",
                    "step time", self.measured_step_s, p.step_time_s
                )?;
                writeln!(
                    f,
                    "  {:<22} {:>11.3e} {:>13.3e}",
                    "sustained FLOP/s", self.measured_flops, p.sustained_flops
                )?;
                writeln!(
                    f,
                    "  {:<22} {:>13.2}% {:>13.2}%",
                    "MFU",
                    100.0 * self.measured_mfu,
                    100.0 * p.mfu
                )?;
            }
            None => {
                writeln!(f, "  step time  {:>12.6} s", self.measured_step_s)?;
                writeln!(f, "  MFU        {:>12.2}%", 100.0 * self.measured_mfu)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanCategory, Tracer};

    #[test]
    fn message_law_small_topology() {
        // tokens=64, dim=8, sp=2, wp=2, dp=1, gas=2, blocks=2, steps=3.
        let law = MessageLaw { tokens: 64, dim: 8, sp: 2, wp: 2, dp: 1, gas: 2, blocks: 2, steps: 3 };
        assert_eq!(law.m_elems(), 64 * 8 / 4);
        assert_eq!(law.m_bytes(), 512);
        // rows=16, cols=4 → 8·16·4·1·4 = 2048 per rank-microbatch-block,
        // × blocks(2)·wp(2)·sp(2)·dp(1)·gas(2)·steps(3) = 48 → 98304.
        assert_eq!(law.expected_alltoall_bytes(), 98_304);
        assert!(law.check(98_304).exact);
        assert!(!law.check(98_303).exact);
    }

    #[test]
    fn breakdowns_group_by_step_and_category() {
        let t = Tracer::enabled();
        for step in 0..2u64 {
            for micro in 0..2u64 {
                let _f = t.span(SpanCategory::Forward, 0).step(step).micro(micro);
                let _a = t.span(SpanCategory::AllToAll, 0).step(step).micro(micro);
            }
            let _o = t.span(SpanCategory::OptimizerStep, 0).step(step);
        }
        // An untagged span must be ignored.
        {
            let _x = t.span(SpanCategory::Broadcast, 0);
        }
        let spans = t.snapshot_spans();
        let steps = step_breakdowns(&spans);
        assert_eq!(steps.len(), 2);
        for b in &steps {
            assert_eq!(b.count(SpanCategory::Forward), 2);
            assert_eq!(b.count(SpanCategory::AllToAll), 2);
            assert_eq!(b.count(SpanCategory::OptimizerStep), 1);
            assert_eq!(b.count(SpanCategory::Broadcast), 0);
            assert!(b.wall_s >= b.seconds(SpanCategory::OptimizerStep));
        }
    }

    #[test]
    fn report_renders_with_and_without_prediction() {
        let t = Tracer::enabled();
        {
            let _f = t.span(SpanCategory::Forward, 0).step(0);
        }
        let spans = t.snapshot_spans();
        let comm = CommBytes { alltoall: 98_304, ..Default::default() };
        let law =
            MessageLaw { tokens: 64, dim: 8, sp: 2, wp: 2, dp: 1, gas: 2, blocks: 2, steps: 3 };
        let report = mfu_report(&MfuInputs {
            spans: &spans,
            comm,
            law: Some(law),
            flops_per_step: 1e9,
            ranks: 4,
            peak_flops_per_rank: 1e12,
            predicted: None,
        });
        assert_eq!(report.steps.len(), 1);
        assert!(report.law.unwrap().exact);
        assert!(report.measured_mfu > 0.0);
        let text = format!("{report}");
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("step time"));
    }
}
