//! Chrome Trace Event Format export.
//!
//! Emits the completed spans as `"X"` (complete) events — `ts`/`dur` in
//! microseconds, one `tid` per actor — inside a `{"traceEvents": [...]}`
//! object. The file loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, rendering the per-rank pipeline timeline: the 1F1B
//! schedule, the Ulysses all-to-alls inside each slot, and the warm-up /
//! cool-down bubbles, exactly the view the paper's Fig. 3 draws by hand.

use crate::json::{self, JsonValue};
use crate::tracer::SpanRecord;

/// Serialize spans to Chrome-trace JSON. Deterministic given the spans:
/// events appear in completion order, keys in a fixed order.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // ts/dur in µs with ns precision kept as fractional digits.
        let ts_us = s.begin_ns as f64 / 1e3;
        let dur_us = s.dur_ns() as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"pid\":0,\"tid\":{},\"args\":{{",
            s.label,
            s.category.name(),
            s.actor
        ));
        let mut first = true;
        let mut arg = |out: &mut String, key: &str, val: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{key}\":{val}"));
        };
        if let Some(step) = s.step {
            arg(&mut out, "step", step.to_string());
        }
        if let Some(micro) = s.micro {
            arg(&mut out, "micro", micro.to_string());
        }
        arg(&mut out, "seq_begin", s.seq_begin.to_string());
        arg(&mut out, "seq_end", s.seq_end.to_string());
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal structural validation of a Chrome-trace JSON document: parses the
/// JSON (full syntax via [`crate::json`], no external deps), requires a
/// top-level object with a `traceEvents` array of objects each carrying the
/// mandatory `ph`/`ts`/`pid`/`tid`/`name` keys, and returns the event count.
pub fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let v = json::parse(doc)?;
    if v.as_object().is_none() {
        return Err("top level is not an object".into());
    }
    let Some(events) = v.get("traceEvents").and_then(JsonValue::as_array) else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {i} is not an object"));
        }
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing \"{key}\""));
            }
        }
        match ev.get("ph").and_then(JsonValue::as_str) {
            Some("X") => {
                if ev.get("dur").is_none() {
                    return Err(format!("complete event {i} missing \"dur\""));
                }
            }
            Some(_) => {}
            None => return Err(format!("event {i}: \"ph\" is not a string")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanCategory, Tracer};

    #[test]
    fn export_roundtrips_through_validator() {
        let t = Tracer::enabled();
        {
            let _f = t.span(SpanCategory::Forward, 0).step(3).micro(1);
            let _a = t.span(SpanCategory::AllToAll, 0).step(3).micro(1);
        }
        {
            let _b = t.span(SpanCategory::Bubble, 1).step(3);
        }
        let doc = t.chrome_trace();
        let n = validate_chrome_trace(&doc).expect("valid chrome trace");
        assert_eq!(n, 3);
        assert!(doc.contains("\"cat\":\"alltoall\""));
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("\"step\":3"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
    }
}
