//! Chrome Trace Event Format export.
//!
//! Emits the completed spans as `"X"` (complete) events — `ts`/`dur` in
//! microseconds, one `tid` per actor — inside a `{"traceEvents": [...]}`
//! object. The file loads directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, rendering the per-rank pipeline timeline: the 1F1B
//! schedule, the Ulysses all-to-alls inside each slot, and the warm-up /
//! cool-down bubbles, exactly the view the paper's Fig. 3 draws by hand.

use crate::tracer::SpanRecord;

/// Serialize spans to Chrome-trace JSON. Deterministic given the spans:
/// events appear in completion order, keys in a fixed order.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // ts/dur in µs with ns precision kept as fractional digits.
        let ts_us = s.begin_ns as f64 / 1e3;
        let dur_us = s.dur_ns() as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"pid\":0,\"tid\":{},\"args\":{{",
            s.label,
            s.category.name(),
            s.actor
        ));
        let mut first = true;
        let mut arg = |out: &mut String, key: &str, val: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{key}\":{val}"));
        };
        if let Some(step) = s.step {
            arg(&mut out, "step", step.to_string());
        }
        if let Some(micro) = s.micro {
            arg(&mut out, "micro", micro.to_string());
        }
        arg(&mut out, "seq_begin", s.seq_begin.to_string());
        arg(&mut out, "seq_end", s.seq_end.to_string());
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal structural validation of a Chrome-trace JSON document: parses the
/// JSON (full syntax, no external deps), requires a top-level object with a
/// `traceEvents` array of objects each carrying the mandatory `ph`/`ts`/
/// `pid`/`tid`/`name` keys, and returns the event count.
pub fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let mut p = Parser { bytes: doc.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    let Json::Object(top) = v else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Array(events)) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        return Err("missing traceEvents array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if !fields.iter().any(|(k, _)| k == key) {
                return Err(format!("event {i} missing \"{key}\""));
            }
        }
        match fields.iter().find(|(k, _)| k == "ph").map(|(_, v)| v) {
            Some(Json::String(ph)) if ph == "X" => {
                if !fields.iter().any(|(k, _)| k == "dur") {
                    return Err(format!("complete event {i} missing \"dur\""));
                }
            }
            Some(Json::String(_)) => {}
            _ => return Err(format!("event {i}: \"ph\" is not a string")),
        }
    }
    Ok(events.len())
}

/// Just enough JSON to validate our own exporter output.
enum Json {
    Null,
    Bool,
    Number,
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!("expected '{}' at offset {}, got '{}'", b as char, self.pos, got as char));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.parse_lit("true", Json::Bool),
            b'f' => self.parse_lit("false", Json::Bool),
            b'n' => self.parse_lit("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => s.push(b as char),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']' got '{}'", other as char)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}' got '{}'", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{SpanCategory, Tracer};

    #[test]
    fn export_roundtrips_through_validator() {
        let t = Tracer::enabled();
        {
            let _f = t.span(SpanCategory::Forward, 0).step(3).micro(1);
            let _a = t.span(SpanCategory::AllToAll, 0).step(3).micro(1);
        }
        {
            let _b = t.span(SpanCategory::Bubble, 1).step(3);
        }
        let doc = t.chrome_trace();
        let n = validate_chrome_trace(&doc).expect("valid chrome trace");
        assert_eq!(n, 3);
        assert!(doc.contains("\"cat\":\"alltoall\""));
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("\"step\":3"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&[])).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
    }
}
