//! A dependency-free JSON parser for the repo's own machine-readable
//! artifacts (Chrome traces, `BENCH_*.json`).
//!
//! The build environment is offline, so there is no serde; this is full JSON
//! *syntax* with a deliberately small value model (all numbers are `f64`,
//! objects preserve key order as a `Vec`). It exists to let exporters and
//! benches be *validated by tests* — `chrome::validate_chrome_trace` and the
//! tier-1 bench-schema test both parse real artifacts through it.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key/value pairs in document order (duplicate keys are kept as-is;
    /// [`JsonValue::get`] returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Path lookup through nested objects: `v.at(&["tiers", "fast", "p50_ms"])`.
    pub fn at(&self, path: &[&str]) -> Option<&JsonValue> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Number(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing non-whitespace is an error).
pub fn parse(doc: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: doc.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at offset {}, got '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::String(self.parse_string()?)),
            b't' => self.parse_lit("true", JsonValue::Bool(true)),
            b'f' => self.parse_lit("false", JsonValue::Bool(false)),
            b'n' => self.parse_lit("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => s.push(b as char),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected ',' or ']' got '{}'", other as char)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}' got '{}'", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values_and_paths() {
        let doc = r#"{"a": {"b": [1, 2.5, -3e1]}, "s": "x\ny", "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.at(&["a", "b"]).unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.at(&["a", "b"]).unwrap().as_array().unwrap()[2].as_f64(), Some(-30.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert!(v.get("missing").is_none());
        assert!(v.at(&["a", "missing", "b"]).is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\":1} x", "\"unterminated"]
        {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn type_accessors_are_strict() {
        let v = parse("[0]").unwrap();
        assert!(v.as_object().is_none());
        assert!(v.get("k").is_none(), "get on a non-object is None");
        assert!(v.as_array().unwrap()[0].as_str().is_none());
    }
}
