//! Lock-free sharded log-linear histogram — the bounded-memory engine under
//! [`MetricSeries`](crate::metrics::MetricSeries).
//!
//! # Layout
//!
//! HDR-style fixed log-linear buckets: each power-of-two **octave**
//! `[2^e, 2^(e+1))` for `e ∈ [E_MIN, E_MAX]` is split into
//! [`SUBBUCKETS`] equal-width linear subbuckets, so a finite value maps to a
//! bucket with pure bit arithmetic on its IEEE-754 representation (exponent
//! field picks the octave, top mantissa bits pick the subbucket — no `log`,
//! no branches on magnitude). One underflow bucket catches everything below
//! [`Histogram::MIN_TRACKED`] (including zero and negatives) and one
//! overflow bucket everything at or above [`Histogram::MAX_TRACKED`].
//!
//! # Error bound
//!
//! A bucket `[lo, hi)` inside the tracked range has width `lo / SUBBUCKETS`
//! ≤ `v / SUBBUCKETS` for any member `v`; quantile queries return the bucket
//! *midpoint* clamped into `[min, max]` of the recorded data, so the
//! relative error of any quantile estimate against the exact nearest-rank
//! sample is at most [`MAX_QUANTILE_REL_ERROR`] = `1/(2·SUBBUCKETS)`
//! (3.125% with 16 subbuckets) for values inside the tracked range.
//! `count`, `sum`/`mean`, `min`, and `max` are tracked exactly.
//!
//! # Concurrency and memory
//!
//! Bucket counts are `AtomicU64`s striped across [`SHARDS`] shards (threads
//! pick a shard by a thread-local slot, so two busy threads never contend on
//! the same cache lines); `sum`/`min`/`max` are CAS-loop f64 atomics. The
//! record path is wait-free apart from those CAS loops — no mutex anywhere —
//! and total memory is a fixed [`Histogram::MEMORY_BYTES`] (~16 KiB)
//! independent of how many samples are recorded.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Linear subbuckets per power-of-two octave. Must be a power of two.
pub const SUBBUCKETS: usize = 16;
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Smallest tracked binary exponent: values below `2^E_MIN` land in the
/// underflow bucket.
const E_MIN: i32 = -20;
/// Largest tracked binary exponent: values at or above `2^(E_MAX+1)` land in
/// the overflow bucket.
const E_MAX: i32 = 43;
const OCTAVES: usize = (E_MAX - E_MIN + 1) as usize;

/// Bucket count: underflow + log-linear grid + overflow.
const BUCKETS: usize = 2 + OCTAVES * SUBBUCKETS;

/// Count-array shards (thread striping). Must be a power of two.
pub const SHARDS: usize = 2;

/// Worst-case relative error of a quantile estimate vs the exact
/// nearest-rank sample, for values inside the tracked range.
pub const MAX_QUANTILE_REL_ERROR: f64 = 1.0 / (2 * SUBBUCKETS) as f64;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
std::thread_local! {
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT_THREAD_SLOT.fetch_add(1, Relaxed);
            slot.set(v);
        }
        v & (SHARDS - 1)
    })
}

struct Shard {
    /// One count per bucket.
    counts: Box<[AtomicU64]>,
    /// Exact running sum of this shard's samples (f64 bits, CAS-added).
    sum_bits: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Shard { counts: counts.into_boxed_slice(), sum_bits: AtomicU64::new(0f64.to_bits()) }
    }
}

/// Lock-free bounded-memory value distribution. See the module docs for the
/// bucket layout and error bound.
pub struct Histogram {
    shards: [Shard; SHARDS],
    /// Exact min/max of all recorded samples (f64 bits; +inf/-inf = empty).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            shards: [Shard::new(), Shard::new()],
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

fn atomic_f64_update(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = f64::from_bits(cell.load(Relaxed));
    while better(value, cur) {
        match cell.compare_exchange_weak(cur.to_bits(), value.to_bits(), Relaxed, Relaxed) {
            Ok(_) => return,
            Err(bits) => cur = f64::from_bits(bits),
        }
    }
}

fn atomic_f64_add(cell: &AtomicU64, value: f64) {
    let mut cur = cell.load(Relaxed);
    loop {
        let next = (f64::from_bits(cur) + value).to_bits();
        match cell.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(bits) => cur = bits,
        }
    }
}

/// Map a finite value to its bucket index.
fn bucket_index(value: f64) -> usize {
    if value < Histogram::MIN_TRACKED {
        return 0; // negatives, zero, subnormal-small values
    }
    if value >= Histogram::MAX_TRACKED {
        return BUCKETS - 1;
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    1 + (exp - E_MIN) as usize * SUBBUCKETS + sub
}

/// Half-open value range `[lo, hi)` covered by a bucket.
fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == 0 {
        return (0.0, Histogram::MIN_TRACKED);
    }
    if index == BUCKETS - 1 {
        return (Histogram::MAX_TRACKED, f64::INFINITY);
    }
    let i = index - 1;
    let e = E_MIN + (i / SUBBUCKETS) as i32;
    let sub = (i % SUBBUCKETS) as f64;
    let scale = f64::from_bits(((e + 1023) as u64) << 52); // exact 2^e
    let width = scale / SUBBUCKETS as f64;
    (scale + sub * width, scale + (sub + 1.0) * width)
}

/// The value a bucket reports for quantile queries (midpoint; clamped into
/// `[min, max]` by the caller).
fn representative(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index == BUCKETS - 1 {
        return Histogram::MAX_TRACKED;
    }
    let (lo, hi) = bucket_bounds(index);
    0.5 * (lo + hi)
}

impl Histogram {
    /// Values below this land in the underflow bucket (reported as the exact
    /// tracked minimum).
    pub const MIN_TRACKED: f64 = 9.5367431640625e-7; // 2^-20
    /// Values at or above this land in the overflow bucket (reported as the
    /// exact tracked maximum).
    pub const MAX_TRACKED: f64 = 17_592_186_044_416.0; // 2^44

    /// Fixed memory footprint of the bucket arrays, independent of sample
    /// count.
    pub const MEMORY_BYTES: usize = SHARDS * BUCKETS * 8;

    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample. Lock-free: one bucket `fetch_add` plus CAS-loop
    /// sum/min/max updates; non-finite samples are ignored.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let shard = &self.shards[shard_index()];
        shard.counts[bucket_index(value)].fetch_add(1, Relaxed);
        atomic_f64_add(&shard.sum_bits, value);
        atomic_f64_update(&self.min_bits, value, |v, cur| v < cur);
        atomic_f64_update(&self.max_bits, value, |v, cur| v > cur);
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.merged().iter().sum()
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.shards.iter().map(|s| f64::from_bits(s.sum_bits.load(Relaxed))).sum()
    }

    /// Exact minimum recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.min_bits.load(Relaxed));
        v.is_finite().then_some(v)
    }

    /// Exact maximum recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.max_bits.load(Relaxed));
        v.is_finite().then_some(v)
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Merge counts across shards into one per-bucket array.
    fn merged(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for shard in &self.shards {
            for (o, c) in out.iter_mut().zip(shard.counts.iter()) {
                *o += c.load(Relaxed);
            }
        }
        out
    }

    /// Fold another histogram's counts into this one (cross-thread /
    /// cross-process aggregation). Counts land in shard 0; sum/min/max merge
    /// exactly.
    pub fn merge_from(&self, other: &Histogram) {
        let theirs = other.merged();
        for (mine, n) in self.shards[0].counts.iter().zip(theirs) {
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        atomic_f64_add(&self.shards[0].sum_bits, other.sum());
        if let Some(v) = other.min() {
            atomic_f64_update(&self.min_bits, v, |v, cur| v < cur);
        }
        if let Some(v) = other.max() {
            atomic_f64_update(&self.max_bits, v, |v, cur| v > cur);
        }
    }

    /// Nearest-rank percentile estimate (0 ≤ p ≤ 100), or `None` when empty.
    /// Within [`MAX_QUANTILE_REL_ERROR`] of the exact sorted-sample answer
    /// for values inside the tracked range; `p ≤ 0` / `p ≥ 100` return the
    /// exact min / max.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.percentiles(&[p]).map(|v| v[0])
    }

    /// Batch variant of [`Histogram::percentile`]: one merge pass answers
    /// every requested percentile.
    pub fn percentiles(&self, ps: &[f64]) -> Option<Vec<f64>> {
        let merged = self.merged();
        let n: u64 = merged.iter().sum();
        if n == 0 {
            return None;
        }
        let (min, max) = (self.min().unwrap_or(0.0), self.max().unwrap_or(0.0));
        Some(
            ps.iter()
                .map(|&p| {
                    if p <= 0.0 {
                        return min;
                    }
                    if p >= 100.0 {
                        return max;
                    }
                    let rank = ((p / 100.0) * (n as f64 - 1.0)).round() as u64;
                    let mut cum = 0u64;
                    for (i, c) in merged.iter().enumerate() {
                        cum += c;
                        if cum > rank {
                            return representative(i).clamp(min, max);
                        }
                    }
                    max
                })
                .collect(),
        )
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending order — the Prometheus `_bucket{le=...}` series (the final
    /// `+Inf` bucket is the total count and is left to the exporter).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let merged = self.merged();
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in merged.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_bounds(i).1, cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_answers_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none() && h.min().is_none() && h.max().is_none());
        assert!(h.percentile(50.0).is_none());
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn exact_stats_and_extreme_percentiles() {
        let h = Histogram::new();
        for v in [5.0, 1.0, 9.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 18.0);
        assert_eq!(h.mean(), Some(4.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(9.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(9.0));
    }

    #[test]
    fn single_sample_quantiles_are_exact_via_clamping() {
        let h = Histogram::new();
        h.record(10.0);
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(10.0));
        }
    }

    #[test]
    fn bucket_index_bounds_round_trip() {
        for v in [
            Histogram::MIN_TRACKED,
            1e-3,
            0.5,
            1.0,
            1.5,
            4.999,
            1234.567,
            1e9,
            Histogram::MAX_TRACKED / 2.0,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (bucket {i})");
            assert!((hi - lo) / lo <= 1.0 / SUBBUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_buckets() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e-9);
        h.record(1e15);
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(1e15));
        // Underflow reports within [min, max]; never panics.
        let p50 = h.percentile(50.0).unwrap();
        assert!((-3.0..=1e15).contains(&p50));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn memory_is_fixed_and_small() {
        assert!(Histogram::MEMORY_BYTES <= 32 * 1024, "{}", Histogram::MEMORY_BYTES);
        // ~16 KiB with 2 shards x (2 + 64*16) buckets x 8 B.
        assert_eq!(Histogram::MEMORY_BYTES, SHARDS * BUCKETS * 8);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        let mut prev_le = 0.0;
        let mut prev_cum = 0;
        for &(le, cum) in &buckets {
            assert!(le > prev_le && cum >= prev_cum, "le={le} cum={cum}");
            prev_le = le;
            prev_cum = cum;
        }
        assert_eq!(buckets.last().unwrap().1, 100);
    }

    #[test]
    fn merge_from_combines_counts_and_extremes() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [10.0, 20.0] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 33.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(20.0));
        assert_eq!(a.percentile(100.0), Some(20.0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        h.record((t * 10_000 + i) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(40_000.0));
    }

    /// Exact nearest-rank percentile over a sorted copy (the old
    /// `MetricSeries` semantics the histogram approximates).
    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    proptest! {
        /// Quantile estimates stay within the documented relative-error
        /// bound of the exact sorted-sample nearest-rank answer, for any
        /// sample set inside the tracked range.
        #[test]
        fn quantiles_within_documented_error_bound(
            values in proptest::collection::vec(1e-6f64..1e12, 64),
            keep in 1usize..64,
            ps in proptest::collection::vec(0.0f64..100.0001, 6),
        ) {
            let values = &values[..keep];
            let h = Histogram::new();
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &v in values {
                h.record(v);
            }
            for &p in &ps {
                let exact = exact_percentile(&sorted, p);
                let est = h.percentile(p).unwrap();
                let rel = (est - exact).abs() / exact.abs().max(f64::MIN_POSITIVE);
                prop_assert!(
                    rel <= MAX_QUANTILE_REL_ERROR + 1e-12,
                    "p{p}: est {est} vs exact {exact} (rel {rel})"
                );
            }
        }
    }
}
