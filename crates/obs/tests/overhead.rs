//! The disabled-tracer contract: a span site on a disabled tracer is one
//! relaxed atomic load, so instrumenting a hot loop must cost < 2% when
//! tracing is off.

use aeris_obs::{SpanCategory, Tracer};
use std::time::Instant;

/// A unit of "real work" big enough (~1k flops) that the measurement is of
/// the work, not the loop, yet small enough that a per-iteration span site
/// would show up if it cost more than an atomic load.
#[inline(never)]
fn work(seed: u64) -> f64 {
    let mut acc = seed as f64;
    for i in 1..1_000u64 {
        acc += ((seed ^ i) as f64).sqrt();
    }
    acc
}

/// Median seconds over `trials` of `iters` iterations of `f`.
fn median_secs(trials: usize, iters: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            let mut sink = 0.0;
            for i in 0..iters {
                sink += f(i);
            }
            std::hint::black_box(sink);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[test]
fn disabled_tracer_overhead_below_two_percent() {
    let tracer = Tracer::default();
    assert!(!tracer.is_enabled());
    let iters = 20_000u64;

    // A few attempts absorb scheduler noise; the medians themselves are
    // already robust against one-off stalls.
    let mut last = f64::NAN;
    for attempt in 0..5 {
        // Interleave the two measurements so frequency scaling and cache
        // state hit both sides equally.
        let base = median_secs(9, iters, work);
        let traced = median_secs(9, iters, |i| {
            let _g = tracer.span(SpanCategory::Forward, 0);
            work(i)
        });
        last = (traced - base) / base * 100.0;
        if last < 2.0 {
            return;
        }
        eprintln!("attempt {attempt}: disabled-tracer overhead {last:.3}% — retrying");
    }
    panic!("disabled-tracer overhead stayed above 2%: last measurement {last:.3}%");
}

#[test]
fn disabled_tracer_records_nothing_from_hot_loop() {
    let tracer = Tracer::default();
    for i in 0..100u64 {
        let _g = tracer.span(SpanCategory::Forward, 0).step(i);
    }
    assert_eq!(tracer.span_count(), 0);
}
