//! Observation-consistency guidance for the TrigFlow sampler.
//!
//! The sampler hands every data-prediction estimate `x̂` (a *standardized
//! residual* in AERIS's parameterization) to a [`aeris_diffusion::Guidance`]
//! hook. [`ObsGuidance`] maps that estimate to observation space through the
//! background state — `H(x_b + σ_r ⊙ x̂ + μ_r)` — and nudges it by the
//! weighted, precision-scaled innovation `w · Hᵀ R⁻¹ (y − H(·))`, the
//! diffusion-posterior-sampling approximation of the likelihood score. The
//! weight follows a per-solver-step [`GuidanceSchedule`]; a step whose weight
//! is exactly zero returns `None` so the solver path stays bitwise identical
//! to the unguided sampler.

use crate::operator::ObservationSet;
use aeris_diffusion::Guidance;
use aeris_earthsim::NormStats;
use aeris_tensor::Tensor;
use std::sync::Arc;

/// Per-step guidance weight over the sampler's `n_steps` solver steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GuidanceSchedule {
    /// The same weight at every step (0.0 = guidance off).
    Constant(f32),
    /// Linear ramp from `start` (first step, noisiest) to `end` (last step):
    /// observations should bind harder as the estimate sharpens.
    Ramp { start: f32, end: f32 },
}

impl GuidanceSchedule {
    /// Guidance disabled: zero weight everywhere, bitwise-neutral by the
    /// `Guidance` contract.
    pub fn off() -> Self {
        GuidanceSchedule::Constant(0.0)
    }

    /// Weight at solver step `step` of `n_steps`.
    pub fn weight(&self, step: usize, n_steps: usize) -> f32 {
        match *self {
            GuidanceSchedule::Constant(w) => w,
            GuidanceSchedule::Ramp { start, end } => {
                if n_steps <= 1 {
                    end
                } else {
                    let frac = step as f32 / (n_steps - 1) as f32;
                    start + frac * (end - start)
                }
            }
        }
    }

    /// True when every step's weight is exactly zero — the request can then
    /// share cache entries and code paths with plain forecasts.
    pub fn is_off(&self) -> bool {
        match *self {
            GuidanceSchedule::Constant(w) => w == 0.0,
            GuidanceSchedule::Ramp { start, end } => start == 0.0 && end == 0.0,
        }
    }

    /// Content digest (variant tag + parameter bits), a cache-key component.
    pub fn digest(&self) -> u64 {
        match *self {
            GuidanceSchedule::Constant(w) => 0x0C0_0000 ^ ((w.to_bits() as u64) << 8),
            GuidanceSchedule::Ramp { start, end } => {
                0x04A_0001 ^ ((start.to_bits() as u64) << 8) ^ ((end.to_bits() as u64) << 33)
            }
        }
    }
}

/// The `Hᵀ R⁻¹ (y − H(x̂))` nudge toward an [`ObservationSet`], expressed in
/// the sampler's standardized-residual space. Owns `Arc`s of its inputs so a
/// serving worker can build one per member-task without borrowing from the
/// request.
pub struct ObsGuidance {
    obs: Arc<ObservationSet>,
    background: Arc<Tensor>,
    /// Residual normalization (maps standardized residual → physical units).
    res_std: Vec<f32>,
    res_mean: Vec<f32>,
    schedule: GuidanceSchedule,
    n_steps: usize,
}

impl ObsGuidance {
    /// Build the guidance for one member. `background` is the physical
    /// previous state `x_b` ([tokens, channels]); `res_stats` the residual
    /// normalization of the forecaster whose sampler will run; `n_steps` that
    /// sampler's step count (drives the schedule).
    pub fn new(
        obs: Arc<ObservationSet>,
        background: Arc<Tensor>,
        res_stats: &NormStats,
        schedule: GuidanceSchedule,
        n_steps: usize,
    ) -> Self {
        assert_eq!(
            background.shape(),
            [obs.tokens, obs.channels],
            "background shape does not match observation geometry"
        );
        assert_eq!(res_stats.std.len(), obs.channels, "residual stats channel mismatch");
        ObsGuidance {
            obs,
            background,
            res_std: res_stats.std.clone(),
            res_mean: res_stats.mean.clone(),
            schedule,
            n_steps,
        }
    }
}

impl Guidance for ObsGuidance {
    fn nudge(&mut self, x_hat: &Tensor, step: usize, _t: f32) -> Option<Tensor> {
        let w = self.schedule.weight(step, self.n_steps);
        if w == 0.0 {
            return None;
        }
        let channels = self.obs.channels;
        let mut g = Tensor::zeros(x_hat.shape());
        let gd = g.data_mut();
        let xh = x_hat.data();
        let bg = self.background.data();
        for (i, site) in self.obs.sites.iter().enumerate() {
            if !self.obs.mask[i] {
                continue;
            }
            let (tok, ch) = (site.token, site.channel);
            let idx = tok * channels + ch;
            // Predicted observation from the current estimate: background
            // plus the un-standardized residual at the site.
            let predicted = bg[idx] + xh[idx] * self.res_std[ch] + self.res_mean[ch];
            let innovation = self.obs.values[i] - predicted;
            let sigma_o = self.obs.noise_std[ch];
            // ∂(predicted)/∂x̂ = σ_r[ch], so the likelihood score in x̂-space
            // carries one factor of the residual std.
            gd[idx] += w * self.res_std[ch] * innovation / (sigma_o * sigma_o);
        }
        Some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ObsOperator;
    use aeris_earthsim::Grid;
    use aeris_tensor::Rng;

    fn setup() -> (Arc<ObservationSet>, Arc<Tensor>, NormStats) {
        let grid = Grid::new(8, 16);
        let op = ObsOperator::stations(&grid, 24, &[0, 1], &[0.5, 0.5, 0.5, 0.5], 3);
        let mut rng = Rng::seed_from(9);
        let truth = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let background = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let obs = op.observe(&truth, 0.25, 17);
        let stats = NormStats { mean: vec![0.1, -0.2, 0.0, 0.3], std: vec![1.5, 0.7, 1.0, 2.0] };
        (Arc::new(obs), Arc::new(background), stats)
    }

    #[test]
    fn schedule_weights() {
        let c = GuidanceSchedule::Constant(0.4);
        assert_eq!(c.weight(0, 10), 0.4);
        assert_eq!(c.weight(9, 10), 0.4);
        assert!(!c.is_off());
        assert!(GuidanceSchedule::off().is_off());
        let r = GuidanceSchedule::Ramp { start: 0.0, end: 1.0 };
        assert_eq!(r.weight(0, 5), 0.0);
        assert_eq!(r.weight(4, 5), 1.0);
        assert!(r.weight(2, 5) > 0.4 && r.weight(2, 5) < 0.6);
        assert_eq!(r.weight(0, 1), 1.0, "single step uses the end weight");
        assert!(!r.is_off());
        assert!(GuidanceSchedule::Ramp { start: 0.0, end: 0.0 }.is_off());
    }

    #[test]
    fn schedule_digests_distinguish_variants_and_params() {
        let a = GuidanceSchedule::Constant(0.4).digest();
        let b = GuidanceSchedule::Constant(0.5).digest();
        let c = GuidanceSchedule::Ramp { start: 0.4, end: 0.4 }.digest();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, GuidanceSchedule::Constant(0.4).digest());
    }

    #[test]
    fn zero_weight_returns_none_nonzero_returns_sparse_nudge() {
        let (obs, bg, stats) = setup();
        let x_hat = Tensor::zeros(&[obs.tokens, obs.channels]);
        let mut off =
            ObsGuidance::new(Arc::clone(&obs), Arc::clone(&bg), &stats, GuidanceSchedule::off(), 4);
        assert!(off.nudge(&x_hat, 0, 1.0).is_none(), "zero weight must return None");

        let mut ramp = ObsGuidance::new(
            Arc::clone(&obs),
            Arc::clone(&bg),
            &stats,
            GuidanceSchedule::Ramp { start: 0.0, end: 1.0 },
            4,
        );
        assert!(ramp.nudge(&x_hat, 0, 1.0).is_none(), "ramp start 0 is exactly off at step 0");
        let g = ramp.nudge(&x_hat, 3, 0.5).expect("ramp end must fire");
        assert_eq!(g.shape(), x_hat.shape());
        // Nudge is sparse: non-zero only at present observation sites.
        let observed: std::collections::HashSet<usize> = obs
            .sites
            .iter()
            .enumerate()
            .filter(|(i, _)| obs.mask[*i])
            .map(|(_, s)| s.token * obs.channels + s.channel)
            .collect();
        let mut nonzero = 0;
        for (idx, &v) in g.data().iter().enumerate() {
            if !observed.contains(&idx) {
                assert_eq!(v, 0.0, "nudge leaked outside observed sites at {idx}");
            } else if v != 0.0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "some observed site must receive a pull");
    }

    #[test]
    fn nudge_points_toward_observations() {
        let (obs, bg, stats) = setup();
        // Start from the background itself (zero residual estimate): the
        // innovation is y − H(x_b) − μ_r, and one nudge step must reduce the
        // observation-space misfit.
        let x_hat = Tensor::zeros(&[obs.tokens, obs.channels]);
        let mut g = ObsGuidance::new(
            Arc::clone(&obs),
            Arc::clone(&bg),
            &stats,
            GuidanceSchedule::Constant(0.05),
            4,
        );
        let nudge = g.nudge(&x_hat, 0, 1.0).unwrap();
        let misfit = |xh: &Tensor| -> f64 {
            let mut acc = 0.0f64;
            for (i, s) in obs.sites.iter().enumerate() {
                if !obs.mask[i] {
                    continue;
                }
                let idx = s.token * obs.channels + s.channel;
                let pred = bg.data()[idx]
                    + xh.data()[idx] * stats.std[s.channel]
                    + stats.mean[s.channel];
                acc += ((obs.values[i] - pred) as f64).powi(2);
            }
            acc
        };
        let before = misfit(&x_hat);
        let after = misfit(&x_hat.add(&nudge));
        assert!(after < before, "nudge must reduce observation misfit: {before} -> {after}");
    }
}
