//! Nowcasting: analysis ensembles from a background state and observations.
//!
//! A nowcast is one guided forecast step — the diffusion model proposes a
//! residual consistent with both the background (through conditioning) and
//! the observations (through [`ObsGuidance`]), yielding an analysis state.
//! Member seeds follow the exact `Forecaster::ensemble` discipline
//! (`Rng::seed_from(seed).stream(m + 1)`), which is what lets the serving
//! engine reproduce a direct call bit for bit.

use crate::guidance::{GuidanceSchedule, ObsGuidance};
use crate::operator::ObservationSet;
use aeris_core::Forecaster;
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;
use std::sync::Arc;

/// An ensemble of analysis states, one per member, in physical units.
pub struct NowcastEnsemble {
    pub members: Vec<Tensor>,
}

impl NowcastEnsemble {
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Ensemble-mean analysis, or `None` for an empty ensemble.
    pub fn mean(&self) -> Option<Tensor> {
        let first = self.members.first()?;
        let mut acc = Tensor::zeros(first.shape());
        for m in &self.members {
            acc.add_assign(m);
        }
        Some(acc.scale(1.0 / self.members.len() as f32))
    }
}

/// One analysis member: a guided forecast step from `background` toward
/// `obs`, using member seed stream `seed ⊕ (member + 1)`.
pub fn nowcast_member(
    fc: &Forecaster,
    background: &Arc<Tensor>,
    forcings: &Tensor,
    obs: &Arc<ObservationSet>,
    schedule: GuidanceSchedule,
    seed: u64,
    member: usize,
) -> Tensor {
    let mut rng = Rng::seed_from(seed).stream(member as u64 + 1);
    let mut guidance = ObsGuidance::new(
        Arc::clone(obs),
        Arc::clone(background),
        &fc.res_stats,
        schedule,
        fc.sampler.cfg.n_steps,
    );
    fc.forecast_step_guided(background, forcings, &mut rng, &mut guidance)
}

/// A full analysis ensemble (members parallelized with rayon; results are
/// member-seed pure, so thread count never changes the numbers).
pub fn nowcast_ensemble(
    fc: &Forecaster,
    background: &Arc<Tensor>,
    forcings: &Tensor,
    obs: &Arc<ObservationSet>,
    schedule: GuidanceSchedule,
    n_members: usize,
    seed: u64,
) -> NowcastEnsemble {
    let members: Vec<Tensor> = (0..n_members)
        .into_par_iter()
        .map(|m| nowcast_member(fc, background, forcings, obs, schedule, seed, m))
        .collect();
    NowcastEnsemble { members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ObsOperator;
    use aeris_core::{AerisConfig, AerisModel};
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::{Grid, NormStats};

    fn tiny_forecaster(second_order: bool) -> Forecaster {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order },
            ),
        }
    }

    #[test]
    fn zero_weight_nowcast_is_bitwise_a_forecast_step() {
        for second_order in [false, true] {
            let fc = tiny_forecaster(second_order);
            let grid = Grid::new(8, 16);
            let mut rng = Rng::seed_from(1);
            let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
            let truth = Tensor::randn(&[128, 4], &mut rng);
            let op = ObsOperator::stations(&grid, 10, &[0], &[0.5; 4], 2);
            let obs = Arc::new(op.observe(&truth, 0.0, 3));
            let forc = Tensor::zeros(&[128, 3]);

            let analysis = nowcast_member(
                &fc, &background, &forc, &obs, GuidanceSchedule::off(), 55, 0,
            );
            let mut plain_rng = Rng::seed_from(55).stream(1);
            let plain = fc.forecast_step(&background, &forc, &mut plain_rng);
            assert_eq!(analysis, plain, "second_order={second_order}");
        }
    }

    #[test]
    fn guided_members_are_distinct_deterministic_and_finite() {
        let fc = tiny_forecaster(true);
        let grid = Grid::new(8, 16);
        let mut rng = Rng::seed_from(4);
        let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let op = ObsOperator::stations(&grid, 32, &[0, 1], &[1.0; 4], 5);
        let obs = Arc::new(op.observe(&truth, 0.1, 6));
        let forc = Tensor::zeros(&[128, 3]);
        let sched = GuidanceSchedule::Ramp { start: 0.0, end: 0.3 };

        let ens = nowcast_ensemble(&fc, &background, &forc, &obs, sched, 3, 77);
        assert_eq!(ens.n_members(), 3);
        for m in &ens.members {
            assert!(m.all_finite());
        }
        assert!(ens.members[0].max_abs_diff(&ens.members[1]) > 1e-6);
        // Ensemble call reproduces the member call exactly.
        let direct = nowcast_member(&fc, &background, &forc, &obs, sched, 77, 2);
        assert_eq!(ens.members[2], direct);
        assert_eq!(ens.mean().unwrap().shape(), &[128, 4]);
        assert!(NowcastEnsemble { members: vec![] }.mean().is_none());
    }
}
