//! Nowcasting: analysis ensembles from a background state and observations.
//!
//! A nowcast is one guided forecast step — the diffusion model proposes a
//! residual consistent with both the background (through conditioning) and
//! the observations (through [`ObsGuidance`]), yielding an analysis state.
//! Member seeds follow the exact `Forecaster::ensemble` discipline
//! (`Rng::seed_from(seed).stream(m + 1)`), which is what lets the serving
//! engine reproduce a direct call bit for bit.

use crate::guidance::{GuidanceSchedule, ObsGuidance};
use crate::operator::ObservationSet;
use aeris_core::{ConsistencyStudent, Forecaster};
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;
use std::sync::Arc;

/// An ensemble of analysis states, one per member, in physical units.
pub struct NowcastEnsemble {
    pub members: Vec<Tensor>,
}

impl NowcastEnsemble {
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Ensemble-mean analysis, or `None` for an empty ensemble.
    pub fn mean(&self) -> Option<Tensor> {
        let first = self.members.first()?;
        let mut acc = Tensor::zeros(first.shape());
        for m in &self.members {
            acc.add_assign(m);
        }
        Some(acc.scale(1.0 / self.members.len() as f32))
    }
}

/// One analysis member: a guided forecast step from `background` toward
/// `obs`, using member seed stream `seed ⊕ (member + 1)`.
pub fn nowcast_member(
    fc: &Forecaster,
    background: &Arc<Tensor>,
    forcings: &Tensor,
    obs: &Arc<ObservationSet>,
    schedule: GuidanceSchedule,
    seed: u64,
    member: usize,
) -> Tensor {
    let mut rng = Rng::seed_from(seed).stream(member as u64 + 1);
    let mut guidance = ObsGuidance::new(
        Arc::clone(obs),
        Arc::clone(background),
        &fc.res_stats,
        schedule,
        fc.sampler.cfg.n_steps,
    );
    fc.forecast_step_guided(background, forcings, &mut rng, &mut guidance)
}

/// One bounded Kalman-like relaxation of `x` toward the present
/// observations: at each unmasked site, `x ← x + g·(y − x)` with gain
/// `g = w / (w + σ_o²)`. The gain is in `(0, 1)` for any positive weight —
/// accurate observations (small σ_o) pull hard, noisy ones gently — and a
/// zero weight leaves `x` untouched (bitwise, by skipping the pass).
///
/// This is the fast tier's whole assimilation step: where the quality tier
/// threads [`ObsGuidance`] through every sampler iteration, the one-step
/// distilled path has no sampler iterations to guide, so the correction is
/// a single post-hoc analysis update.
pub fn relax_toward_observations(x: &mut Tensor, obs: &ObservationSet, weight: f32) {
    if weight <= 0.0 {
        return;
    }
    assert_eq!(x.shape(), [obs.tokens, obs.channels], "state shape mismatch");
    let data = x.data_mut();
    for ((site, &y), &present) in obs.sites.iter().zip(&obs.values).zip(&obs.mask) {
        if !present {
            continue;
        }
        let sigma2 = obs.noise_std[site.channel] * obs.noise_std[site.channel];
        let gain = weight / (weight + sigma2);
        let idx = site.token * obs.channels + site.channel;
        data[idx] += gain * (y - data[idx]);
    }
}

/// Fast-tier analysis member: one distilled forecast step from `background`
/// followed by [`relax_toward_observations`] at the schedule's initial
/// weight. Same member-seed discipline as [`nowcast_member`], so the result
/// is bitwise reproducible across runs, thread counts, and serving engines.
pub fn nowcast_member_fast(
    student: &ConsistencyStudent,
    background: &Arc<Tensor>,
    forcings: &Tensor,
    obs: &Arc<ObservationSet>,
    schedule: GuidanceSchedule,
    seed: u64,
    member: usize,
) -> Tensor {
    let mut rng = Rng::seed_from(seed).stream(member as u64 + 1);
    let mut x = student.forecast_step(background, forcings, &mut rng);
    relax_toward_observations(&mut x, obs, schedule.weight(0, 1));
    x
}

/// A full analysis ensemble (members parallelized with rayon; results are
/// member-seed pure, so thread count never changes the numbers).
pub fn nowcast_ensemble(
    fc: &Forecaster,
    background: &Arc<Tensor>,
    forcings: &Tensor,
    obs: &Arc<ObservationSet>,
    schedule: GuidanceSchedule,
    n_members: usize,
    seed: u64,
) -> NowcastEnsemble {
    let members: Vec<Tensor> = (0..n_members)
        .into_par_iter()
        .map(|m| nowcast_member(fc, background, forcings, obs, schedule, seed, m))
        .collect();
    NowcastEnsemble { members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ObsOperator;
    use aeris_core::{AerisConfig, AerisModel};
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::{Grid, NormStats};

    fn tiny_forecaster(second_order: bool) -> Forecaster {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order },
            ),
        }
    }

    #[test]
    fn zero_weight_nowcast_is_bitwise_a_forecast_step() {
        for second_order in [false, true] {
            let fc = tiny_forecaster(second_order);
            let grid = Grid::new(8, 16);
            let mut rng = Rng::seed_from(1);
            let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
            let truth = Tensor::randn(&[128, 4], &mut rng);
            let op = ObsOperator::stations(&grid, 10, &[0], &[0.5; 4], 2);
            let obs = Arc::new(op.observe(&truth, 0.0, 3));
            let forc = Tensor::zeros(&[128, 3]);

            let analysis = nowcast_member(
                &fc, &background, &forc, &obs, GuidanceSchedule::off(), 55, 0,
            );
            let mut plain_rng = Rng::seed_from(55).stream(1);
            let plain = fc.forecast_step(&background, &forc, &mut plain_rng);
            assert_eq!(analysis, plain, "second_order={second_order}");
        }
    }

    #[test]
    fn fast_nowcast_zero_weight_is_bitwise_a_student_step() {
        let fc = tiny_forecaster(false);
        let samples_rng = &mut Rng::seed_from(12);
        let background = Arc::new(Tensor::randn(&[128, 4], samples_rng));
        let truth = Tensor::randn(&[128, 4], samples_rng);
        let grid = Grid::new(8, 16);
        let op = ObsOperator::stations(&grid, 10, &[0], &[0.5; 4], 2);
        let obs = Arc::new(op.observe(&truth, 0.0, 3));
        let forc = Tensor::zeros(&[128, 3]);
        // An undistilled student (teacher copy, zero steps) is fine here:
        // the property under test is the seed/relaxation plumbing.
        let student = aeris_core::ConsistencyStudent {
            model: fc.replicate().model,
            stats: fc.stats.clone(),
            res_stats: fc.res_stats.clone(),
            tf: fc.sampler.tf,
        };
        let analysis = nowcast_member_fast(
            &student, &background, &forc, &obs, GuidanceSchedule::off(), 55, 0,
        );
        let mut plain_rng = Rng::seed_from(55).stream(1);
        let plain = student.forecast_step(&background, &forc, &mut plain_rng);
        assert_eq!(analysis, plain, "w=0 must leave the student step untouched");
    }

    #[test]
    fn relaxation_pulls_observed_sites_toward_observations() {
        let grid = Grid::new(8, 16);
        let mut rng = Rng::seed_from(14);
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let op = ObsOperator::stations(&grid, 24, &[0, 1], &[0.5; 4], 9);
        let mut obs = op.observe(&truth, 0.0, 4);
        obs.mask[0] = false;
        let mut x = Tensor::randn(&[128, 4], &mut rng);
        let before = x.clone();
        relax_toward_observations(&mut x, &obs, 1.0);
        let mut moved = 0usize;
        for ((site, &y), &present) in obs.sites.iter().zip(&obs.values).zip(&obs.mask) {
            let b = before.at(&[site.token, site.channel]);
            let a = x.at(&[site.token, site.channel]);
            if !present {
                assert_eq!(a, b, "masked site must not move");
                continue;
            }
            // Strictly between background and observation (gain in (0,1)).
            assert!((a - y).abs() < (b - y).abs() || b == y, "site must move toward y");
            if a != b {
                moved += 1;
            }
        }
        assert!(moved > 20, "most present sites should move, got {moved}");
        // Unobserved cells are untouched.
        let observed: std::collections::HashSet<_> =
            obs.sites.iter().map(|s| (s.token, s.channel)).collect();
        for t in 0..obs.tokens {
            for c in 0..obs.channels {
                if !observed.contains(&(t, c)) {
                    assert_eq!(x.at(&[t, c]), before.at(&[t, c]));
                }
            }
        }
    }

    #[test]
    fn guided_members_are_distinct_deterministic_and_finite() {
        let fc = tiny_forecaster(true);
        let grid = Grid::new(8, 16);
        let mut rng = Rng::seed_from(4);
        let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let op = ObsOperator::stations(&grid, 32, &[0, 1], &[1.0; 4], 5);
        let obs = Arc::new(op.observe(&truth, 0.1, 6));
        let forc = Tensor::zeros(&[128, 3]);
        let sched = GuidanceSchedule::Ramp { start: 0.0, end: 0.3 };

        let ens = nowcast_ensemble(&fc, &background, &forc, &obs, sched, 3, 77);
        assert_eq!(ens.n_members(), 3);
        for m in &ens.members {
            assert!(m.all_finite());
        }
        assert!(ens.members[0].max_abs_diff(&ens.members[1]) > 1e-6);
        // Ensemble call reproduces the member call exactly.
        let direct = nowcast_member(&fc, &background, &forc, &obs, sched, 77, 2);
        assert_eq!(ens.members[2], direct);
        assert_eq!(ens.mean().unwrap().shape(), &[128, 4]);
        assert!(NowcastEnsemble { members: vec![] }.mean().is_none());
    }
}
