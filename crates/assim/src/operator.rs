//! Observation operators: sparse, typed forward maps from gridded states to
//! point observations, and the containers that carry the observed values.
//!
//! An operator is a list of (token, channel) sites plus per-channel
//! observation-error standard deviations. `H(x)` gathers the state at the
//! sites; the adjoint `Hᵀ y` scatters observation-space values back onto the
//! grid. Two synthetic network generators cover the paper-adjacent cases: a
//! seeded station network (uniform random distinct grid cells, the in-situ
//! analog) and a satellite ground track (a sinusoidal sweep in latitude while
//! the longitude precesses, the polar-orbiter analog).

use aeris_earthsim::Grid;
use aeris_tensor::{Rng, Tensor};
use std::io::{Read, Write};
use std::path::Path;

/// FNV-1a over a stream of u64 words (same constants as the serve cache).
fn fnv_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One observed scalar: channel `channel` of grid cell `token`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObsSite {
    pub token: usize,
    pub channel: usize,
}

/// A sparse observation operator `H`: site list + per-channel observation
/// error. Sites are unique (token, channel) pairs, so `Hᵀ` is a plain
/// scatter.
#[derive(Clone, Debug)]
pub struct ObsOperator {
    /// Observed (token, channel) sites, in generation order.
    pub sites: Vec<ObsSite>,
    /// Observation-error standard deviation per *state channel* (R is
    /// diagonal with `noise_std[channel]²` at each site).
    pub noise_std: Vec<f32>,
    /// Grid size the operator is defined over (state rows).
    pub tokens: usize,
    /// State channels (state columns).
    pub channels: usize,
}

impl ObsOperator {
    /// A random station network: `n_stations` distinct grid cells (seeded
    /// Fisher–Yates draw), each reporting every channel in `channels_obs`.
    ///
    /// Panics if `channels_obs` names a channel outside the state, if any
    /// `noise_std` entry is not strictly positive, or if `n_stations`
    /// exceeds the number of grid cells.
    pub fn stations(
        grid: &Grid,
        n_stations: usize,
        channels_obs: &[usize],
        noise_std: &[f32],
        seed: u64,
    ) -> Self {
        let channels = noise_std.len();
        validate_channels(channels_obs, noise_std, channels);
        assert!(
            n_stations <= grid.tokens(),
            "{n_stations} stations exceed {} grid cells",
            grid.tokens()
        );
        let mut rng = Rng::seed_from(seed).stream(0x57A7_1045);
        let toks = rng.choose_indices(grid.tokens(), n_stations);
        let mut sites = Vec::with_capacity(n_stations * channels_obs.len());
        for &tok in &toks {
            for &ch in channels_obs {
                sites.push(ObsSite { token: tok, channel: ch });
            }
        }
        ObsOperator { sites, noise_std: noise_std.to_vec(), tokens: grid.tokens(), channels }
    }

    /// A satellite ground track: `n_samples` along-track footprints whose
    /// latitude sweeps sinusoidally up to ±`max_lat_deg` while the longitude
    /// precesses through `n_orbits` revolutions, with a seeded phase offset.
    /// Footprints that land in an already-observed cell are dropped, so sites
    /// stay unique.
    pub fn satellite_track(
        grid: &Grid,
        n_samples: usize,
        n_orbits: usize,
        max_lat_deg: f32,
        channels_obs: &[usize],
        noise_std: &[f32],
        seed: u64,
    ) -> Self {
        let channels = noise_std.len();
        validate_channels(channels_obs, noise_std, channels);
        assert!(n_orbits >= 1, "need at least one orbit");
        let mut rng = Rng::seed_from(seed).stream(0x5A7E_1117);
        let phase0 = rng.uniform(0.0, std::f32::consts::TAU);
        let lon0 = rng.uniform(0.0, 360.0);
        let mut seen = std::collections::HashSet::new();
        let mut sites = Vec::new();
        for i in 0..n_samples {
            let frac = i as f32 / n_samples.max(1) as f32;
            // One sinusoidal latitude oscillation per orbit; the longitude
            // precesses uniformly so successive orbits interleave.
            let phase = phase0 + std::f32::consts::TAU * frac * n_orbits as f32;
            let lat = max_lat_deg * phase.sin();
            let lon = lon0 + 360.0 * frac * n_orbits as f32 + 180.0 * frac;
            let tok = grid.token_of(lat, lon);
            for &ch in channels_obs {
                if seen.insert((tok, ch)) {
                    sites.push(ObsSite { token: tok, channel: ch });
                }
            }
        }
        ObsOperator { sites, noise_std: noise_std.to_vec(), tokens: grid.tokens(), channels }
    }

    /// Number of observed scalars.
    pub fn n_obs(&self) -> usize {
        self.sites.len()
    }

    /// Forward map `H(x)`: gather the state at each site into an
    /// observation-space vector `[n_obs]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape(), [self.tokens, self.channels], "state shape mismatch");
        let data = x.data();
        let y: Vec<f32> =
            self.sites.iter().map(|s| data[s.token * self.channels + s.channel]).collect();
        Tensor::from_vec(&[self.n_obs()], y)
    }

    /// Adjoint `Hᵀ y`: scatter an observation-space vector back onto the
    /// grid, `[tokens, channels]`. Satisfies `⟨Hx, y⟩ = ⟨x, Hᵀy⟩` exactly
    /// (sites are unique, so no accumulation-order ambiguity).
    pub fn adjoint(&self, y: &Tensor) -> Tensor {
        assert_eq!(y.shape(), [self.n_obs()], "observation vector length mismatch");
        let mut out = Tensor::zeros(&[self.tokens, self.channels]);
        let data = out.data_mut();
        for (s, &v) in self.sites.iter().zip(y.data()) {
            data[s.token * self.channels + s.channel] += v;
        }
        out
    }

    /// Simulate observing a truth state: `y = H(truth) + ε` with
    /// `ε ~ N(0, noise_std[channel]²)` per site, plus a missing-data mask
    /// dropping each observation independently with probability
    /// `missing_frac`. Deterministic given `seed`.
    pub fn observe(&self, truth: &Tensor, missing_frac: f32, seed: u64) -> ObservationSet {
        assert!((0.0..=1.0).contains(&missing_frac), "missing_frac {missing_frac} not in [0,1]");
        let clean = self.forward(truth);
        let mut rng = Rng::seed_from(seed).stream(0x0B5E_4ED1);
        let values: Vec<f32> = self
            .sites
            .iter()
            .zip(clean.data())
            .map(|(s, &v)| v + self.noise_std[s.channel] * rng.normal())
            .collect();
        let mask: Vec<bool> =
            (0..self.n_obs()).map(|_| rng.uniform(0.0, 1.0) >= missing_frac).collect();
        ObservationSet {
            sites: self.sites.clone(),
            values,
            noise_std: self.noise_std.clone(),
            mask,
            tokens: self.tokens,
            channels: self.channels,
        }
    }
}

fn validate_channels(channels_obs: &[usize], noise_std: &[f32], channels: usize) {
    assert!(!channels_obs.is_empty(), "must observe at least one channel");
    for &ch in channels_obs {
        assert!(ch < channels, "observed channel {ch} outside {channels} state channels");
    }
    for (ch, &s) in noise_std.iter().enumerate() {
        assert!(s > 0.0, "noise_std[{ch}] = {s} must be strictly positive");
    }
}

/// A concrete set of observations: the operator geometry plus observed
/// values and the availability mask. This is the payload a `NowcastRequest`
/// carries, so it serializes through the same self-describing checkpoint
/// byte format as model weights.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservationSet {
    pub sites: Vec<ObsSite>,
    /// Observed value per site (noise already applied).
    pub values: Vec<f32>,
    /// Observation-error std per state channel.
    pub noise_std: Vec<f32>,
    /// `true` = observation present; masked-out sites are skipped by
    /// guidance and evaluation.
    pub mask: Vec<bool>,
    pub tokens: usize,
    pub channels: usize,
}

impl ObservationSet {
    /// Number of observed scalars (present or not).
    pub fn n_obs(&self) -> usize {
        self.sites.len()
    }

    /// Number of observations actually available (mask = true).
    pub fn n_present(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// The operator this set was observed through (geometry + error model).
    pub fn operator(&self) -> ObsOperator {
        ObsOperator {
            sites: self.sites.clone(),
            noise_std: self.noise_std.clone(),
            tokens: self.tokens,
            channels: self.channels,
        }
    }

    /// Content digest over geometry, values, noise model, and mask — the
    /// rollout-cache key component for nowcasts. Any bit of any observed
    /// value changes the digest.
    pub fn digest(&self) -> u64 {
        let mut h = fnv_init();
        h = fnv_u64(h, self.tokens as u64);
        h = fnv_u64(h, self.channels as u64);
        for s in &self.sites {
            h = fnv_u64(h, ((s.token as u64) << 32) | s.channel as u64);
        }
        for &v in &self.values {
            h = fnv_u64(h, v.to_bits() as u64);
        }
        for &s in &self.noise_std {
            h = fnv_u64(h, s.to_bits() as u64);
        }
        for &m in &self.mask {
            h = fnv_u64(h, m as u64);
        }
        h
    }

    /// Serialize in the checkpoint entry format. Integer fields (site
    /// indices, shape, mask) are stored as exact small f32s; values and
    /// noise stds are f32 already, so the round trip is bitwise.
    pub fn write_to(&self, writer: &mut dyn Write) -> std::io::Result<()> {
        let tok_f: Vec<f32> = self.sites.iter().map(|s| s.token as f32).collect();
        let ch_f: Vec<f32> = self.sites.iter().map(|s| s.channel as f32).collect();
        let mask_f: Vec<f32> = self.mask.iter().map(|&m| m as u32 as f32).collect();
        let n = self.n_obs();
        let entries = vec![
            (
                "obs/shape".to_string(),
                Tensor::from_slice(&[self.tokens as f32, self.channels as f32]),
            ),
            ("obs/token".to_string(), Tensor::from_vec(&[n], tok_f)),
            ("obs/channel".to_string(), Tensor::from_vec(&[n], ch_f)),
            ("obs/value".to_string(), Tensor::from_vec(&[n], self.values.clone())),
            (
                "obs/noise_std".to_string(),
                Tensor::from_vec(&[self.channels], self.noise_std.clone()),
            ),
            ("obs/mask".to_string(), Tensor::from_vec(&[n], mask_f)),
        ];
        aeris_nn::checkpoint::write_entries(&entries, writer)
    }

    /// Deserialize (inverse of [`Self::write_to`]); malformed input surfaces
    /// as `InvalidData`, never a panic.
    pub fn read_from(reader: &mut dyn Read) -> std::io::Result<Self> {
        let entries = aeris_nn::checkpoint::read_params(reader)?;
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let get = |name: &str| -> std::io::Result<&Tensor> {
            entries
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t)
                .ok_or_else(|| bad(format!("observation set missing entry {name}")))
        };
        let shape = get("obs/shape")?;
        if shape.len() != 2 {
            return Err(bad("obs/shape must have 2 elements".into()));
        }
        let tokens = shape.data()[0] as usize;
        let channels = shape.data()[1] as usize;
        if tokens == 0 || channels == 0 {
            return Err(bad(format!("degenerate grid {tokens}x{channels}")));
        }
        let tok = get("obs/token")?;
        let ch = get("obs/channel")?;
        let values = get("obs/value")?;
        let noise_std = get("obs/noise_std")?;
        let mask = get("obs/mask")?;
        let n = tok.len();
        if ch.len() != n || values.len() != n || mask.len() != n {
            return Err(bad(format!(
                "inconsistent observation lengths: {n}/{}/{}/{}",
                ch.len(),
                values.len(),
                mask.len()
            )));
        }
        if noise_std.len() != channels {
            return Err(bad(format!(
                "noise_std has {} entries for {channels} channels",
                noise_std.len()
            )));
        }
        let mut sites = Vec::with_capacity(n);
        for i in 0..n {
            let t = tok.data()[i];
            let c = ch.data()[i];
            if t < 0.0 || t >= tokens as f32 || t.fract() != 0.0 {
                return Err(bad(format!("site {i}: token {t} outside grid of {tokens}")));
            }
            if c < 0.0 || c >= channels as f32 || c.fract() != 0.0 {
                return Err(bad(format!("site {i}: channel {c} outside {channels} channels")));
            }
            sites.push(ObsSite { token: t as usize, channel: c as usize });
        }
        Ok(ObservationSet {
            sites,
            values: values.data().to_vec(),
            noise_std: noise_std.data().to_vec(),
            mask: mask.data().iter().map(|&m| m != 0.0).collect(),
            tokens,
            channels,
        })
    }

    /// Save to a file in the checkpoint format.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Load from a file written by [`Self::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8, 16)
    }

    fn operator() -> ObsOperator {
        ObsOperator::stations(&grid(), 20, &[0, 2], &[0.5, 1.0, 0.25, 2.0], 7)
    }

    #[test]
    fn stations_are_distinct_and_in_bounds() {
        let op = operator();
        assert_eq!(op.n_obs(), 40, "20 stations x 2 channels");
        let uniq: std::collections::HashSet<_> = op.sites.iter().collect();
        assert_eq!(uniq.len(), op.n_obs(), "sites must be unique");
        for s in &op.sites {
            assert!(s.token < op.tokens && s.channel < op.channels);
        }
        // Deterministic in the seed; distinct across seeds.
        let again = ObsOperator::stations(&grid(), 20, &[0, 2], &[0.5, 1.0, 0.25, 2.0], 7);
        assert_eq!(op.sites, again.sites);
        let other = ObsOperator::stations(&grid(), 20, &[0, 2], &[0.5, 1.0, 0.25, 2.0], 8);
        assert_ne!(op.sites, other.sites);
    }

    #[test]
    fn satellite_track_covers_both_hemispheres() {
        let g = Grid::new(16, 32);
        let op = ObsOperator::satellite_track(&g, 200, 3, 70.0, &[1], &[1.0; 4], 11);
        assert!(op.n_obs() > 20, "track should hit many distinct cells, got {}", op.n_obs());
        let uniq: std::collections::HashSet<_> = op.sites.iter().collect();
        assert_eq!(uniq.len(), op.n_obs());
        let (mut north, mut south) = (false, false);
        for s in &op.sites {
            let (r, _) = g.coords(s.token);
            if g.lat_deg(r) > 20.0 {
                north = true;
            }
            if g.lat_deg(r) < -20.0 {
                south = true;
            }
        }
        assert!(north && south, "sinusoidal track must visit both hemispheres");
    }

    #[test]
    fn forward_gathers_and_adjoint_scatters() {
        let op = operator();
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let y = op.forward(&x);
        assert_eq!(y.shape(), &[op.n_obs()]);
        for (i, s) in op.sites.iter().enumerate() {
            assert_eq!(y.data()[i], x.at(&[s.token, s.channel]));
        }
        let back = op.adjoint(&y);
        assert_eq!(back.shape(), x.shape());
        // Unobserved cells stay zero; observed cells carry the value back.
        let observed: std::collections::HashSet<_> =
            op.sites.iter().map(|s| (s.token, s.channel)).collect();
        for t in 0..op.tokens {
            for c in 0..op.channels {
                if observed.contains(&(t, c)) {
                    assert_eq!(back.at(&[t, c]), x.at(&[t, c]));
                } else {
                    assert_eq!(back.at(&[t, c]), 0.0);
                }
            }
        }
    }

    #[test]
    fn observe_is_seeded_noisy_and_masked() {
        let op = operator();
        let mut rng = Rng::seed_from(5);
        let truth = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let a = op.observe(&truth, 0.3, 42);
        let b = op.observe(&truth, 0.3, 42);
        assert_eq!(a, b, "observation draw must be deterministic in the seed");
        let c = op.observe(&truth, 0.3, 43);
        assert_ne!(a.values, c.values);
        // Noise actually perturbs the values.
        let clean = op.forward(&truth);
        assert!(a.values.iter().zip(clean.data()).any(|(v, c)| v != c));
        // Mask drops roughly the requested fraction.
        let present = a.n_present();
        assert!(present < a.n_obs() && present > 0, "present {present} of {}", a.n_obs());
        let full = op.observe(&truth, 0.0, 42);
        assert_eq!(full.n_present(), full.n_obs());
    }

    #[test]
    fn observation_set_roundtrips_bitwise_through_checkpoint_format() {
        let op = operator();
        let mut rng = Rng::seed_from(6);
        let truth = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let obs = op.observe(&truth, 0.2, 13);
        let mut buf = Vec::new();
        obs.write_to(&mut buf).unwrap();
        let back = ObservationSet::read_from(&mut &buf[..]).unwrap();
        assert_eq!(obs, back);
        assert_eq!(obs.digest(), back.digest());

        // File round trip too.
        let path = std::env::temp_dir().join(format!("aeris_obs_{}.ckpt", std::process::id()));
        obs.save(&path).unwrap();
        assert_eq!(ObservationSet::load(&path).unwrap(), obs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn digest_tracks_content() {
        let op = operator();
        let mut rng = Rng::seed_from(8);
        let truth = Tensor::randn(&[op.tokens, op.channels], &mut rng);
        let a = op.observe(&truth, 0.0, 1);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.values[3] += 1e-6;
        assert_ne!(a.digest(), b.digest(), "any value bit must change the digest");
        let mut c = a.clone();
        c.mask[0] = !c.mask[0];
        assert_ne!(a.digest(), c.digest(), "mask must be part of the digest");
    }

    #[test]
    fn read_rejects_malformed_sets() {
        let op = operator();
        let truth = Tensor::zeros(&[op.tokens, op.channels]);
        let obs = op.observe(&truth, 0.0, 1);
        let mut buf = Vec::new();
        obs.write_to(&mut buf).unwrap();
        // Truncation fails cleanly.
        assert!(ObservationSet::read_from(&mut &buf[..buf.len() / 2]).is_err());
        // A non-checkpoint stream fails cleanly.
        assert!(ObservationSet::read_from(&mut &[0u8; 32][..]).is_err());
        // An out-of-range site index is rejected on read.
        let mut bad = obs.clone();
        bad.sites[0].token = bad.tokens + 5;
        let mut buf2 = Vec::new();
        bad.write_to(&mut buf2).unwrap();
        assert!(ObservationSet::read_from(&mut &buf2[..]).is_err());
    }
}
