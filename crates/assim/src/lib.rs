//! Generative data assimilation for AERIS (ROADMAP item 4).
//!
//! The paper (§VII) frames the diffusion forecaster as a generative engine
//! whose sampler can be conditioned at inference time; the exascale
//! generative-assimilation line of work (PAPERS.md) conditions it on sparse,
//! noisy observations instead of a full analysis state. This crate supplies
//! the three layers of that workload:
//!
//! - [`operator`]: typed observation operators — synthetic station networks
//!   and satellite ground tracks over an `earthsim` grid, a sparse forward
//!   map `H(x)` with its adjoint `Hᵀ`, seeded Gaussian observation noise and
//!   missing-data masks, and an [`ObservationSet`] container that round-trips
//!   through the checkpoint byte format.
//! - [`guidance`]: the observation-consistency term injected into the
//!   TrigFlow sampler — weight-scheduled `Hᵀ R⁻¹ (y − H(x̂))` nudging of the
//!   data-prediction estimate at every solver step, implemented against the
//!   `aeris_diffusion::Guidance` hook. A schedule whose weight is zero keeps
//!   the sampler bitwise identical to the unguided solver.
//! - [`nowcast`]: analysis ensembles — guided one-step rollouts from a
//!   background state toward an observation set, with the same member seed
//!   discipline as `Forecaster::ensemble`.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod guidance;
pub mod nowcast;
pub mod operator;

pub use guidance::{GuidanceSchedule, ObsGuidance};
pub use nowcast::{
    nowcast_ensemble, nowcast_member, nowcast_member_fast, relax_toward_observations,
    NowcastEnsemble,
};
pub use operator::{ObsOperator, ObsSite, ObservationSet};
