//! The core SWiPe validation: distributed WP×SP×PP×DP training is
//! numerically equivalent to single-rank training, and the communication /
//! memory / I/O properties the paper claims are measured, not assumed.

#![allow(clippy::needless_range_loop)]

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_nn::{AdamW, AdamWConfig, ParamId};
use aeris_swipe::data::{InMemorySource, StoreBackedSource};
use aeris_swipe::trainer::reference_grads;
use aeris_swipe::{CommClass, DistributedTrainer, SwipeConfig, SwipeTopology};
use aeris_tensor::{Rng, Tensor};

fn tiny_cfg() -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 11,
    }
}

fn random_samples(n: usize, tokens: usize, channels: usize) -> Vec<TrainSample> {
    let mut rng = Rng::seed_from(77);
    (0..n)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[tokens, channels], &mut rng),
            residual: Tensor::randn(&[tokens, channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[tokens, 3], &mut rng),
        })
        .collect()
}

fn weights_for(cfg: &AerisConfig) -> Tensor {
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels])
}

fn schedule(n_steps: usize, dp: usize, gas: usize, n_samples: usize) -> Vec<Vec<Vec<usize>>> {
    let mut ix = 0usize;
    (0..n_steps)
        .map(|_| {
            (0..dp)
                .map(|_| {
                    (0..gas)
                        .map(|_| {
                            let s = ix % n_samples;
                            ix += 1;
                            s
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Apply the reference AdamW step using named grads.
fn reference_opt_step(model: &mut AerisModel, opt: &mut AdamW, named: &std::collections::HashMap<String, Tensor>, lr: f32) {
    let grads: Vec<Option<Tensor>> = (0..model.store.len())
        .map(|i| named.get(model.store.name(ParamId(i))).cloned())
        .collect();
    opt.step(&mut model.store, &grads, lr);
}

#[test]
fn distributed_training_equals_single_rank() {
    let cfg = tiny_cfg();
    let samples = random_samples(8, cfg.tokens(), cfg.channels);
    let source = InMemorySource { samples };
    let weights = weights_for(&cfg);

    let topo = SwipeTopology::new(2, 4, 1, 2, 2); // DP=2, PP=4, WP=1x2, SP=2 → 32 ranks
    let swipe_cfg = SwipeConfig {
        topo,
        gas: 2,
        n_steps: 2,
        lr: 1e-3,
        seed: 5,
        adamw: AdamWConfig::default(),
        ..SwipeConfig::new(topo)
    };
    let sched = schedule(2, 2, 2, 8);

    // Distributed run.
    let reference = AerisModel::new(cfg.clone());
    let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");

    // Single-rank reference with identical noise/time realizations.
    let mut ref_model = AerisModel::new(cfg.clone());
    let mut opt = AdamW::new(&ref_model.store, AdamWConfig::default());
    let mut ref_losses = Vec::new();
    for step in 0..2 {
        let (loss, grads) = reference_grads(&ref_model, &source, &sched[step], &weights, 5, step);
        ref_losses.push(loss);
        reference_opt_step(&mut ref_model, &mut opt, &grads, 1e-3);
    }

    // Loss equivalence (step 0 is exact pre-update; step 1 inherits step-0
    // param updates, so it also checks the optimizer path).
    for step in 0..2 {
        let rel = (report.losses[step] - ref_losses[step]).abs() / ref_losses[step].abs();
        assert!(
            rel < 1e-3,
            "step {step}: distributed loss {} vs reference {}",
            report.losses[step],
            ref_losses[step]
        );
    }

    // Parameter equivalence after 2 steps.
    let mut checked = 0;
    for (_, name, v) in ref_model.store.iter() {
        let dist = report
            .final_params
            .get(name)
            .unwrap_or_else(|| panic!("missing distributed param {name}"));
        let scale = v.abs_max().max(1e-3);
        let diff = dist.max_abs_diff(v);
        assert!(
            diff / scale < 5e-3,
            "param {name} diverged: max abs diff {diff} (scale {scale})"
        );
        checked += 1;
    }
    assert!(checked > 10, "expected to check many parameter tensors");
}

#[test]
fn wp_reduces_alltoall_and_p2p_but_not_allreduce() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = InMemorySource { samples };
    let weights = weights_for(&cfg);

    let run = |wp_b: usize| {
        let topo = SwipeTopology::new(1, 4, 1, wp_b, 2);
        let swipe_cfg = SwipeConfig {
            topo,
            gas: 2,
            n_steps: 1,
            lr: 1e-3,
            seed: 9,
            adamw: AdamWConfig::default(),
            ..SwipeConfig::new(topo)
        };
        let sched = schedule(1, 1, 2, 4);
        let reference = AerisModel::new(cfg.clone());
        let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");
        // Per-rank averages for a block-stage rank (stage 1, wp 0/0, sp 0).
        let block_rank = topo.rank_of(aeris_swipe::RankCoords {
            dp: 0,
            stage: 1,
            wp_row: 0,
            wp_col: 0,
            sp: 0,
        });
        (
            report.traffic.rank_total(block_rank, CommClass::AllToAll),
            report.traffic.rank_total(block_rank, CommClass::P2p),
            report.traffic.rank_total(block_rank, CommClass::AllReduce),
        )
    };

    let (a2a_2, p2p_2, ar_2) = run(2);
    let (a2a_4, p2p_4, ar_4) = run(4);

    // Message size M = b·s·h/SP/WP: doubling WP halves per-rank all-to-all
    // and pipeline traffic.
    assert!(
        (a2a_4 as f64) < 0.6 * a2a_2 as f64,
        "alltoall per rank did not halve: {a2a_2} -> {a2a_4}"
    );
    assert!(
        (p2p_4 as f64) < 0.6 * p2p_2 as f64,
        "p2p per rank did not halve: {p2p_2} -> {p2p_4}"
    );
    // Gradient allreduce volume per rank is unchanged: reduce-scatter +
    // allgather moves 2·P·(n−1)/n per rank, which is insensitive to the
    // group growth caused by WP (ratio (7/8)/(3/4) ≈ 1.17 here).
    let ratio = ar_4 as f64 / ar_2 as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "allreduce volume changed with WP: {ar_2} -> {ar_4} (ratio {ratio})"
    );
}

#[test]
fn wp_reduces_activation_memory() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = InMemorySource { samples };
    let weights = weights_for(&cfg);

    let run = |wp_b: usize| {
        let topo = SwipeTopology::new(1, 4, 1, wp_b, 1);
        let swipe_cfg = SwipeConfig {
            topo,
            gas: 2,
            n_steps: 1,
            lr: 1e-3,
            seed: 13,
            adamw: AdamWConfig::default(),
            ..SwipeConfig::new(topo)
        };
        let sched = schedule(1, 1, 2, 4);
        let reference = AerisModel::new(cfg.clone());
        DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run")
            .max_activation_elems
    };
    let act_1 = run(1);
    let act_2 = run(2);
    assert!(
        (act_2 as f64) < 0.7 * act_1 as f64,
        "activation memory did not shrink with WP: {act_1} -> {act_2}"
    );
}

#[test]
fn windowed_io_scales_inversely_with_wp() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let weights = weights_for(&cfg);

    let run = |wp_b: usize| {
        let source = StoreBackedSource::from_samples(
            &samples, cfg.window.0, cfg.window.1, cfg.grid_h, cfg.grid_w,
        );
        let topo = SwipeTopology::new(1, 4, 1, wp_b, 1);
        let swipe_cfg = SwipeConfig {
            topo,
            gas: 2,
            n_steps: 1,
            lr: 1e-3,
            seed: 17,
            adamw: AdamWConfig::default(),
            ..SwipeConfig::new(topo)
        };
        let sched = schedule(1, 1, 2, 4);
        let reference = AerisModel::new(cfg.clone());
        let _ = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");
        source.prev.bytes_read()
    };

    // The input stage reads chunk-aligned (unshifted) windows: each sample's
    // tokens are read exactly once regardless of WP, so total input-stage I/O
    // is constant and per-rank I/O falls as 1/WP. (The loss stage sits after
    // a *shifted* block, whose windows straddle store chunks — its reads
    // overlap across ranks, a real halo cost we do not assert on.)
    let prev_1 = run(1);
    let prev_2 = run(2);
    assert_eq!(prev_1, prev_2, "input-stage sliced I/O must be independent of WP");
    assert!(prev_1 > 0);
}

#[test]
fn distributed_loss_decreases_over_steps() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 2, 1, 1);
    let swipe_cfg = SwipeConfig {
        topo,
        gas: 4,
        n_steps: 6,
        lr: 3e-3,
        seed: 21,
        adamw: AdamWConfig::default(),
        ..SwipeConfig::new(topo)
    };
    let sched = schedule(6, 1, 4, 4);
    let reference = AerisModel::new(cfg);
    let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");
    assert!(report.losses.iter().all(|l| l.is_finite()));
    assert!(
        report.losses[5] < report.losses[0],
        "loss did not decrease: {:?}",
        report.losses
    );
}

/// A second topology exercising the full 2-D round-robin window grid
/// (WP = 2×2) with shift relayouts crossing both axes, without SP.
#[test]
fn equivalence_holds_on_2d_window_grid() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = InMemorySource { samples };
    let weights = weights_for(&cfg);

    let topo = SwipeTopology::new(1, 4, 2, 2, 1); // 16 ranks
    let swipe_cfg = SwipeConfig {
        topo,
        gas: 2,
        n_steps: 1,
        lr: 1e-3,
        seed: 23,
        adamw: AdamWConfig::default(),
        ..SwipeConfig::new(topo)
    };
    let sched = schedule(1, 1, 2, 4);
    let reference = AerisModel::new(cfg.clone());
    let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights).expect("fault-free run");

    let mut ref_model = AerisModel::new(cfg);
    let mut opt = AdamW::new(&ref_model.store, AdamWConfig::default());
    let (loss, grads) = reference_grads(&ref_model, &source, &sched[0], &weights, 23, 0);
    reference_opt_step(&mut ref_model, &mut opt, &grads, 1e-3);

    let rel = (report.losses[0] - loss).abs() / loss.abs();
    assert!(rel < 1e-3, "loss mismatch: {} vs {}", report.losses[0], loss);
    for (_, name, v) in ref_model.store.iter() {
        let dist = &report.final_params[name];
        let scale = v.abs_max().max(1e-3);
        assert!(
            dist.max_abs_diff(v) / scale < 5e-3,
            "param {name} diverged on 2D WP grid"
        );
    }
}
