//! Chaos tests: the distributed trainer under injected faults.
//!
//! These exercise the full robustness surface end to end — dropped pipeline
//! messages recovered by the retransmit timer, step-boundary crashes survived
//! by DP degradation, mid-step crashes surfaced as typed errors within the
//! deadline (never a deadlock), and checkpoint-restart reproducing the
//! uninterrupted run bitwise after a kill.

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_swipe::{
    CheckpointConfig, CommConfig, CommError, DistributedTrainer, FaultEvent, FaultPlan,
    SwipeConfig, SwipeError, SwipeTopology, World,
};
use aeris_tensor::{Rng, Tensor};
use std::time::{Duration, Instant};

fn tiny_cfg() -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        seed: 11,
        pos_amp: 0.1,
    }
}

fn random_samples(n: usize, tokens: usize, channels: usize) -> Vec<TrainSample> {
    let mut rng = Rng::seed_from(77);
    (0..n)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[tokens, channels], &mut rng),
            residual: Tensor::randn(&[tokens, channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[tokens, 3], &mut rng),
        })
        .collect()
}

fn weights_for(cfg: &AerisConfig) -> Tensor {
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels])
}

fn schedule(n_steps: usize, dp: usize, gas: usize, n_samples: usize) -> Vec<Vec<Vec<usize>>> {
    let mut ix = 0usize;
    (0..n_steps)
        .map(|_| {
            (0..dp)
                .map(|_| {
                    (0..gas)
                        .map(|_| {
                            let s = ix % n_samples;
                            ix += 1;
                            s
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn bits(losses: &[f64]) -> Vec<u64> {
    losses.iter().map(|l| l.to_bits()).collect()
}

fn expect_failure(
    result: Result<aeris_swipe::TrainReport, aeris_swipe::TrainFailure>,
    why: &str,
) -> aeris_swipe::TrainFailure {
    match result {
        Err(f) => f,
        Ok(_) => panic!("{why}"),
    }
}

/// A dropped pipeline activation message is recovered by the receiver's
/// retransmit timer and the run's results are bitwise unaffected.
#[test]
fn dropped_pipeline_message_recovered_bitwise() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 1, 1, 1); // linear 4-rank pipeline
    let sched = schedule(1, 1, 1, 4);
    let reference = AerisModel::new(cfg);

    let base = SwipeConfig { topo, ..SwipeConfig::new(topo) };
    let clean = DistributedTrainer::train(&reference, &base, &source, &sched, &weights)
        .expect("fault-free run");

    // The first message on channel 0 -> 1 is the first forward relayout
    // (stage 0 sends before it ever joins a collective); lose it twice.
    let faulty = SwipeConfig {
        faults: Some(FaultPlan::new().drop_message(0, 1, 0, 2)),
        ..SwipeConfig::new(topo)
    };
    let report = DistributedTrainer::train(&reference, &faulty, &source, &sched, &weights)
        .expect("drops must be recovered by retransmit");

    assert_eq!(bits(&report.losses), bits(&clean.losses), "recovery changed the result");
    for (name, v) in &clean.final_params {
        assert_eq!(
            v.data(),
            report.final_params[name].data(),
            "parameter {name} diverged after drop recovery"
        );
    }
    let retransmits = report
        .events
        .iter()
        .filter(|r| matches!(r.event, FaultEvent::RetransmitRequest { .. }))
        .count();
    assert_eq!(retransmits, 2, "expected one retransmit per suppression");
    assert!(report
        .events
        .iter()
        .any(|r| matches!(r.event, FaultEvent::InjectedDrop { src: 0, dst: 1, .. })));
}

/// A message lost more times than the deadline allows retransmits for must
/// surface as a typed timeout, not a deadlock.
#[test]
fn unrecoverable_drop_times_out_with_typed_error() {
    let plan = FaultPlan::new().drop_message(0, 1, 0, u32::MAX);
    let config = CommConfig {
        deadline: Duration::from_millis(200),
        ..CommConfig::default()
    };
    let world = World::with_config(2, config, Some(plan));
    let start = Instant::now();
    std::thread::scope(|s| {
        let mut c0 = world.communicator(0);
        let mut c1 = world.communicator(1);
        s.spawn(move || {
            c0.send(1, aeris_swipe::CommClass::P2p, vec![Tensor::from_slice(&[1.0])]).unwrap();
        });
        s.spawn(move || {
            let err = c1.recv(0).unwrap_err();
            assert_eq!(err, CommError::Timeout { rank: 1, peer: 0, waited_ms: 200 });
        });
    });
    assert!(start.elapsed() < Duration::from_secs(10), "timeout did not bound the wait");
}

/// A planned step-boundary crash degrades gracefully: the dead rank's whole
/// DP replica retires, surviving groups shrink and rescale, and the run
/// completes with the pre-crash trajectory bitwise intact.
#[test]
fn step_boundary_crash_degrades_gracefully() {
    let cfg = tiny_cfg();
    let samples = random_samples(6, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(2, 4, 1, 1, 1); // 8 ranks, 2 replicas
    let sched = schedule(3, 2, 1, 6);
    let reference = AerisModel::new(cfg);

    let base = SwipeConfig { n_steps: 3, ..SwipeConfig::new(topo) };
    let clean = DistributedTrainer::train(&reference, &base, &source, &sched, &weights)
        .expect("fault-free run");

    // Rank 5 = replica dp=1, stage 1. It crashes at the step-1 boundary;
    // replica 1 must retire with it.
    let faulty = SwipeConfig {
        n_steps: 3,
        faults: Some(FaultPlan::new().crash_rank(5, 1)),
        ..SwipeConfig::new(topo)
    };
    let report = DistributedTrainer::train(&reference, &faulty, &source, &sched, &weights)
        .expect("step-boundary crashes must degrade, not fail");

    // Pre-crash step is bitwise identical; post-crash steps still train.
    assert_eq!(report.losses[0].to_bits(), clean.losses[0].to_bits());
    assert!(report.losses[1].is_finite() && report.losses[1] > 0.0);
    assert!(report.losses[2].is_finite() && report.losses[2] > 0.0);
    assert!(!report.final_params.is_empty(), "surviving replica must report final params");

    let ev = |pred: &dyn Fn(&FaultEvent) -> bool| report.events.iter().any(|r| pred(&r.event));
    assert!(ev(&|e| matches!(e, FaultEvent::RankCrashed { rank: 5, step: 1 })));
    assert!(ev(&|e| matches!(e, FaultEvent::ReplicaRetired { dp: 1, step: 1, .. })));
    assert!(ev(&|e| matches!(e, FaultEvent::GroupRescaled { step: 1, live_dp: 1 })));
}

/// A mid-step (hard) crash cannot be degraded around: peers observe the dead
/// rank and the run fails with a typed error well within the deadline —
/// never a hang.
#[test]
fn mid_step_crash_fails_fast_with_typed_error() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 1, 1, 1);
    let sched = schedule(1, 1, 1, 4);
    let reference = AerisModel::new(cfg);

    let deadline = Duration::from_secs(10);
    let swipe_cfg = SwipeConfig {
        comm: CommConfig { deadline, ..CommConfig::default() },
        faults: Some(FaultPlan::new().crash_rank_after_ops(1, 2)),
        ..SwipeConfig::new(topo)
    };
    let start = Instant::now();
    let failure = expect_failure(
        DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights),
        "a mid-step crash must fail the run",
    );
    assert!(
        start.elapsed() < 2 * deadline,
        "failure took {:?}, deadline was {deadline:?}",
        start.elapsed()
    );
    assert!(
        matches!(failure.error, SwipeError::Comm(_)),
        "expected a typed communication error, got {}",
        failure.error
    );
    assert!(failure
        .events
        .iter()
        .any(|r| matches!(r.event, FaultEvent::RankCrashedMidStep { rank: 1, .. })));
}

/// The acceptance scenario: run A trains uninterrupted with checkpoints; run
/// B hits a recovered message drop and then a mid-step rank kill; run C
/// restarts from B's last checkpoint and must reproduce A's loss curve and
/// final parameters bitwise.
#[test]
fn checkpoint_restart_after_crash_matches_uninterrupted_run_bitwise() {
    let cfg = tiny_cfg();
    let samples = random_samples(6, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(2, 4, 1, 1, 1); // 8 ranks
    let sched = schedule(3, 2, 1, 6);
    let reference = AerisModel::new(cfg);

    let tmp = std::env::temp_dir().join(format!("aeris_chaos_ckpt_{}", std::process::id()));
    let dir_a = tmp.join("a");
    let dir_b = tmp.join("b");

    // Run A: uninterrupted, checkpoint after every step.
    let cfg_a = SwipeConfig {
        n_steps: 3,
        checkpoint: Some(CheckpointConfig { dir: dir_a.clone(), every: 1 }),
        ..SwipeConfig::new(topo)
    };
    let report_a = DistributedTrainer::train(&reference, &cfg_a, &source, &sched, &weights)
        .expect("uninterrupted run");
    assert!(dir_a.join("step_000002.ckpt").exists());
    assert!(report_a
        .events
        .iter()
        .any(|r| matches!(r.event, FaultEvent::CheckpointSaved { next_step: 2, .. })));

    // Communication is deterministic, so run A's op counts tell us where
    // step boundaries fall; aim run B's kill a few ops into step 2 (after
    // the step-1 checkpoint is on disk).
    let victim = 5usize;
    let per_step = report_a.comm_ops[victim] / 3;
    assert!(per_step > 2, "need room inside a step to crash mid-step");

    // Run B: one recovered drop, then a hard mid-step kill during step 2.
    let cfg_b = SwipeConfig {
        n_steps: 3,
        checkpoint: Some(CheckpointConfig { dir: dir_b.clone(), every: 1 }),
        faults: Some(
            FaultPlan::new()
                .drop_message(0, 1, 0, 1)
                .crash_rank_after_ops(victim, 2 * per_step + 1),
        ),
        ..SwipeConfig::new(topo)
    };
    let failure = expect_failure(
        DistributedTrainer::train(&reference, &cfg_b, &source, &sched, &weights),
        "the kill must abort run B",
    );
    assert!(matches!(failure.error, SwipeError::Comm(_)));
    let had = |pred: &dyn Fn(&FaultEvent) -> bool| failure.events.iter().any(|r| pred(&r.event));
    assert!(had(&|e| matches!(e, FaultEvent::RetransmitRequest { .. })), "drop was not retried");
    assert!(had(&|e| matches!(e, FaultEvent::RankCrashedMidStep { rank: 5, .. })));
    assert!(
        dir_b.join("step_000002.ckpt").exists(),
        "both pre-kill checkpoints must have been written"
    );

    // Run C: restart from run B's last checkpoint, no faults.
    let cfg_c = SwipeConfig {
        n_steps: 3,
        resume_from: Some(dir_b.join("step_000002.ckpt")),
        ..SwipeConfig::new(topo)
    };
    let report_c = DistributedTrainer::train(&reference, &cfg_c, &source, &sched, &weights)
        .expect("resumed run");
    assert_eq!(report_c.start_step, 2);

    // Bitwise: the resumed tail of the loss curve and the final parameters
    // are indistinguishable from the run that never crashed.
    assert_eq!(
        report_c.losses[2].to_bits(),
        report_a.losses[2].to_bits(),
        "resumed loss diverged: {} vs {}",
        report_c.losses[2],
        report_a.losses[2]
    );
    assert_eq!(report_a.final_params.len(), report_c.final_params.len());
    for (name, v) in &report_a.final_params {
        assert_eq!(
            v.data(),
            report_c.final_params[name].data(),
            "parameter {name} diverged after checkpoint-restart"
        );
    }

    std::fs::remove_dir_all(&tmp).ok();
}

/// Resume validation: a checkpoint from a different topology or seed is a
/// typed checkpoint error, not silent corruption.
#[test]
fn resume_rejects_mismatched_checkpoint() {
    let cfg = tiny_cfg();
    let samples = random_samples(2, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 1, 1, 1);
    let sched = schedule(1, 1, 1, 2);
    let reference = AerisModel::new(cfg);

    let tmp = std::env::temp_dir().join(format!("aeris_chaos_mismatch_{}", std::process::id()));
    let cfg_save = SwipeConfig {
        checkpoint: Some(CheckpointConfig { dir: tmp.clone(), every: 1 }),
        ..SwipeConfig::new(topo)
    };
    DistributedTrainer::train(&reference, &cfg_save, &source, &sched, &weights)
        .expect("checkpointing run");

    let cfg_bad_seed = SwipeConfig {
        seed: 999,
        resume_from: Some(tmp.join("step_000001.ckpt")),
        ..SwipeConfig::new(topo)
    };
    let failure = expect_failure(
        DistributedTrainer::train(&reference, &cfg_bad_seed, &source, &sched, &weights),
        "seed mismatch must be rejected",
    );
    assert!(
        matches!(failure.error, SwipeError::Checkpoint(_)),
        "expected a checkpoint error, got {}",
        failure.error
    );
    std::fs::remove_dir_all(&tmp).ok();
}

/// Span-replay audit of an elastic outage: with tracing on, a crash→rejoin
/// window leaves balanced spans (every opened Outage closed — the parked
/// replica came back), one Outage span per parked rank, and a re-shard
/// send/recv pair per rejoining rank; the retire and rejoin events pair up
/// the same way.
#[test]
fn rejoin_outage_spans_and_events_are_balanced() {
    let cfg = tiny_cfg();
    let samples = random_samples(8, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(2, 4, 1, 1, 1);
    let sched = schedule(4, 2, 1, 8);
    let reference = AerisModel::new(cfg);

    let tracer = aeris_obs::Tracer::enabled();
    let elastic_cfg = SwipeConfig {
        n_steps: 4,
        faults: Some(FaultPlan::new().crash_rank(5, 1).restart_rank(5, 3)),
        tracer: tracer.clone(),
        ..SwipeConfig::new(topo)
    };
    let report = DistributedTrainer::train(&reference, &elastic_cfg, &source, &sched, &weights)
        .expect("rejoin run");

    let spans = tracer.snapshot_spans();
    aeris_obs::verify_balanced(&spans).expect("span replay must balance");
    let outages: Vec<_> =
        spans.iter().filter(|s| s.category == aeris_obs::SpanCategory::Outage).collect();
    assert_eq!(outages.len(), 4, "one closed Outage span per parked rank of dp=1");
    for s in &outages {
        assert_eq!(s.step, Some(1), "outage opens at the crash boundary");
        assert!(s.dur_ns() > 0);
        assert!((4..8).contains(&s.actor), "outage on a dp=1 rank, got actor {}", s.actor);
    }
    let reshard = |label: &str| {
        spans
            .iter()
            .filter(|s| s.category == aeris_obs::SpanCategory::Recovery && s.label == label)
            .count()
    };
    assert_eq!(reshard("reshard_recv"), 4, "each rejoiner receives one re-shard");
    assert_eq!(reshard("reshard_send"), 4, "the donor re-shards to each rejoiner");

    // Event balance mirrors the span balance: every retirement has a rejoin.
    let count = |pred: &dyn Fn(&FaultEvent) -> bool| {
        report.events.iter().filter(|r| pred(&r.event)).count()
    };
    let retired =
        count(&|e| matches!(e, FaultEvent::RankCrashed { .. }))
            + count(&|e| matches!(e, FaultEvent::ReplicaRetired { .. }));
    let rejoined = count(&|e| matches!(e, FaultEvent::RankRejoined { .. }))
        + count(&|e| matches!(e, FaultEvent::ReplicaRejoined { .. }));
    assert_eq!(retired, 4);
    assert_eq!(retired, rejoined, "retire/rejoin events must pair up");
}

/// Delay faults on the trainer's own message channels change timing only:
/// the full distributed training result is bitwise identical.
#[test]
fn delayed_pipeline_messages_do_not_change_training() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 1, 2, 1); // 8 ranks with WP relayouts
    let sched = schedule(1, 1, 2, 4);
    let reference = AerisModel::new(cfg);

    let base = SwipeConfig { gas: 2, ..SwipeConfig::new(topo) };
    let clean = DistributedTrainer::train(&reference, &base, &source, &sched, &weights)
        .expect("fault-free run");

    let delayed_cfg = SwipeConfig {
        gas: 2,
        faults: Some(FaultPlan::chaos_delays(3, topo.world_size(), 6, 10, 5)),
        ..SwipeConfig::new(topo)
    };
    let delayed = DistributedTrainer::train(&reference, &delayed_cfg, &source, &sched, &weights)
        .expect("delays must never fail a run");

    assert_eq!(bits(&delayed.losses), bits(&clean.losses));
    for (name, v) in &clean.final_params {
        assert_eq!(v.data(), delayed.final_params[name].data(), "param {name} diverged");
    }
}
