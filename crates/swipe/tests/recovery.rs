//! Elastic recovery tests: the crash-recovery supervisor, in-run rank
//! rejoin, and world-size-independent checkpoint re-shard.
//!
//! The gating invariants, all bitwise:
//! - a supervised run that crashed and restarted matches the uninterrupted
//!   run from the resume step on;
//! - an in-run crash→shrink→rejoin matches a fresh full-world resume from
//!   the checkpoint written at the rejoin boundary;
//! - a checkpoint written at DP=N restores into DP=M with identical
//!   parameters.

use aeris_core::{AerisConfig, AerisModel, TrainSample};
use aeris_diffusion::loss_weights;
use aeris_earthsim::Grid;
use aeris_swipe::{
    supervise, CheckpointConfig, DistributedTrainer, FaultEvent, FaultPlan, RecoveryConfig,
    RecoveryError, SwipeConfig, SwipeTopology,
};
use aeris_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn tiny_cfg() -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        seed: 11,
        pos_amp: 0.1,
    }
}

fn random_samples(n: usize, tokens: usize, channels: usize) -> Vec<TrainSample> {
    let mut rng = Rng::seed_from(77);
    (0..n)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[tokens, channels], &mut rng),
            residual: Tensor::randn(&[tokens, channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[tokens, 3], &mut rng),
        })
        .collect()
}

fn weights_for(cfg: &AerisConfig) -> Tensor {
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels])
}

fn schedule(n_steps: usize, dp: usize, gas: usize, n_samples: usize) -> Vec<Vec<Vec<usize>>> {
    let mut ix = 0usize;
    (0..n_steps)
        .map(|_| {
            (0..dp)
                .map(|_| {
                    (0..gas)
                        .map(|_| {
                            let s = ix % n_samples;
                            ix += 1;
                            s
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aeris_recovery_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_params_eq(
    a: &std::collections::HashMap<String, Tensor>,
    b: &std::collections::HashMap<String, Tensor>,
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}: parameter sets differ in size");
    for (name, v) in a {
        assert_eq!(v.data(), b[name].data(), "{what}: parameter {name} diverged");
    }
}

/// The tentpole invariant, supervisor side: every replica dies at step 3,
/// the run aborts with `AllReplicasLost`, and the supervisor restarts it
/// from the last coordinated checkpoint (step 2 — `every: 2`, so the lost
/// step was never saved). The recovered run must match the run that never
/// crashed, bitwise, from the resume step on.
#[test]
fn supervised_crash_recovery_matches_uninterrupted_run_bitwise() {
    let cfg = tiny_cfg();
    let samples = random_samples(8, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(2, 4, 1, 1, 1); // 8 ranks, 2 replicas
    let sched = schedule(4, 2, 1, 8);
    let reference = AerisModel::new(cfg);

    let base = SwipeConfig { n_steps: 4, ..SwipeConfig::new(topo) };
    let clean = DistributedTrainer::train(&reference, &base, &source, &sched, &weights)
        .expect("fault-free run");

    let dir = tmp_dir("sup");
    let faulty = SwipeConfig {
        n_steps: 4,
        faults: Some(FaultPlan::new().crash_rank(1, 3).crash_rank(5, 3)),
        ..SwipeConfig::new(topo)
    };
    let rcfg = RecoveryConfig {
        max_restarts: 2,
        checkpoint: CheckpointConfig { dir: dir.clone(), every: 2 },
    };
    let outcome = supervise(&reference, &faulty, &source, &sched, &weights, &rcfg)
        .expect("the supervisor must ride out a total crash");

    assert_eq!(outcome.restarts, 1);
    assert_eq!(outcome.steps_lost, 1, "reached step 3, resumed from step 2");
    assert_eq!(outcome.report.start_step, 2);
    let ev = |pred: &dyn Fn(&FaultEvent) -> bool| outcome.events.iter().any(|r| pred(&r.event));
    assert!(ev(&|e| matches!(e, FaultEvent::RankCrashed { rank: 1, step: 3 })));
    assert!(ev(&|e| matches!(e, FaultEvent::RunResumed { attempt: 1, from_step: 2 })));

    // Incident counters land in the (disabled) tracer's registry: recovery
    // telemetry is ungated so production dashboards see it with spans off.
    let counters = faulty.tracer.counters();
    assert!(counters.contains(&("swipe_restarts".to_string(), 1)), "{counters:?}");
    assert!(counters.contains(&("swipe_steps_lost".to_string(), 1)), "{counters:?}");

    for step in 2..4 {
        assert_eq!(
            outcome.report.losses[step].to_bits(),
            clean.losses[step].to_bits(),
            "recovered loss diverged at step {step}"
        );
    }
    assert_params_eq(&clean.final_params, &outcome.report.final_params, "supervised recovery");
    std::fs::remove_dir_all(&dir).ok();
}

/// Exhausting the restart budget is a typed error carrying the last failure,
/// and a failure restarting cannot fix (checkpoint validation) is
/// `Unrecoverable` without consuming the budget.
#[test]
fn supervisor_failure_modes_are_typed() {
    let cfg = tiny_cfg();
    let samples = random_samples(4, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(1, 4, 1, 1, 1);
    let sched = schedule(2, 1, 1, 4);
    let reference = AerisModel::new(cfg);

    // One replica, so its crash is AllReplicasLost — recoverable, but the
    // budget is zero. (The crash survives `without_fired` only until it
    // fires, and with max_restarts=0 it is never retried at all.)
    let dir = tmp_dir("budget");
    let faulty = SwipeConfig {
        n_steps: 2,
        faults: Some(FaultPlan::new().crash_rank(0, 1)),
        ..SwipeConfig::new(topo)
    };
    let rcfg = RecoveryConfig {
        max_restarts: 0,
        checkpoint: CheckpointConfig { dir: dir.clone(), every: 1 },
    };
    let err = supervise(&reference, &faulty, &source, &sched, &weights, &rcfg)
        .err()
        .expect("zero budget must fail");
    assert!(
        matches!(err, RecoveryError::RestartsExhausted { attempts: 0, .. }),
        "expected RestartsExhausted, got {err}"
    );

    // A seed-mismatched resume checkpoint is a configuration bug: restarting
    // reproduces it forever, so the supervisor gives up immediately.
    let clean_cfg = SwipeConfig {
        n_steps: 2,
        checkpoint: Some(CheckpointConfig { dir: dir.clone(), every: 1 }),
        ..SwipeConfig::new(topo)
    };
    DistributedTrainer::train(&reference, &clean_cfg, &source, &sched, &weights)
        .expect("checkpoint-writing run");
    let mismatched = SwipeConfig {
        n_steps: 2,
        seed: 999,
        resume_from: Some(dir.join("step_000001.ckpt")),
        ..SwipeConfig::new(topo)
    };
    let rcfg2 = RecoveryConfig {
        max_restarts: 3,
        checkpoint: CheckpointConfig { dir: dir.clone(), every: 1 },
    };
    let err = supervise(&reference, &mismatched, &source, &sched, &weights, &rcfg2)
        .err()
        .expect("seed mismatch must fail");
    assert!(
        matches!(err, RecoveryError::Unrecoverable { .. }),
        "expected Unrecoverable, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole invariant, rejoin side: rank 5's replica crashes out at step
/// 1 and rejoins at step 2 via the donor re-shard. From the rejoin boundary
/// on, the elastic run must be bitwise indistinguishable from a fresh
/// full-world resume of the checkpoint written at that same boundary.
#[test]
fn in_run_rejoin_matches_checkpoint_resume_bitwise() {
    let cfg = tiny_cfg();
    let samples = random_samples(8, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let topo = SwipeTopology::new(2, 4, 1, 1, 1);
    let sched = schedule(4, 2, 1, 8);
    let reference = AerisModel::new(cfg);

    let dir = tmp_dir("rejoin");
    let elastic_cfg = SwipeConfig {
        n_steps: 4,
        checkpoint: Some(CheckpointConfig { dir: dir.clone(), every: 1 }),
        faults: Some(FaultPlan::new().crash_rank(5, 1).restart_rank(5, 2)),
        ..SwipeConfig::new(topo)
    };
    let elastic = DistributedTrainer::train(&reference, &elastic_cfg, &source, &sched, &weights)
        .expect("the rejoin run must complete");

    // The full retire → rejoin sequence is in the event log.
    let ev = |pred: &dyn Fn(&FaultEvent) -> bool| elastic.events.iter().any(|r| pred(&r.event));
    assert!(ev(&|e| matches!(e, FaultEvent::RankCrashed { rank: 5, step: 1 })));
    assert!(ev(&|e| matches!(e, FaultEvent::ReplicaRetired { dp: 1, step: 1, .. })));
    assert!(ev(&|e| matches!(e, FaultEvent::GroupRescaled { step: 1, live_dp: 1 })));
    assert!(ev(&|e| matches!(e, FaultEvent::RankRejoined { rank: 5, step: 2 })));
    assert!(ev(&|e| matches!(e, FaultEvent::GroupRescaled { step: 2, live_dp: 2 })));
    let rejoined = elastic
        .events
        .iter()
        .filter(|r| matches!(r.event, FaultEvent::ReplicaRejoined { dp: 1, step: 2, .. }))
        .count();
    assert_eq!(rejoined, 3, "the crasher's three replica peers rejoin alongside it");

    // Reference: resume the whole world from the boundary-2 checkpoint.
    let resumed_cfg = SwipeConfig {
        n_steps: 4,
        resume_from: Some(dir.join("step_000002.ckpt")),
        ..SwipeConfig::new(topo)
    };
    let resumed = DistributedTrainer::train(&reference, &resumed_cfg, &source, &sched, &weights)
        .expect("resumed run");
    assert_eq!(resumed.start_step, 2);

    for step in 2..4 {
        assert_eq!(
            elastic.losses[step].to_bits(),
            resumed.losses[step].to_bits(),
            "post-rejoin loss diverged at step {step}"
        );
    }
    assert_params_eq(&resumed.final_params, &elastic.final_params, "in-run rejoin");
    std::fs::remove_dir_all(&dir).ok();
}

/// World-size independence: a checkpoint written at DP=4 restores into DP=2
/// and DP=4 worlds with bitwise-identical parameters, and a restored
/// narrower world can keep training from the re-derived optimizer shards.
#[test]
fn checkpoint_restores_across_data_parallel_widths_bitwise() {
    let cfg = tiny_cfg();
    let samples = random_samples(8, cfg.tokens(), cfg.channels);
    let source = aeris_swipe::data::InMemorySource { samples };
    let weights = weights_for(&cfg);
    let reference = AerisModel::new(cfg);

    let dir = tmp_dir("reshard");
    let topo4 = SwipeTopology::new(4, 4, 1, 1, 1); // 16 ranks
    let writer_cfg = SwipeConfig {
        n_steps: 2,
        checkpoint: Some(CheckpointConfig { dir: dir.clone(), every: 2 }),
        ..SwipeConfig::new(topo4)
    };
    let writer =
        DistributedTrainer::train(&reference, &writer_cfg, &source, &schedule(2, 4, 1, 8), &weights)
            .expect("DP=4 writer run");
    let ckpt = dir.join("step_000002.ckpt");
    assert!(ckpt.exists(), "writer must leave a final-boundary checkpoint");

    // Restore into each width without running further steps: the reported
    // final parameters are exactly the restored state.
    for dp in [2usize, 4] {
        let topo = SwipeTopology::new(dp, 4, 1, 1, 1);
        let restore_cfg = SwipeConfig {
            n_steps: 2,
            resume_from: Some(ckpt.clone()),
            ..SwipeConfig::new(topo)
        };
        let restored = DistributedTrainer::train(
            &reference,
            &restore_cfg,
            &source,
            &schedule(2, dp, 1, 8),
            &weights,
        )
        .unwrap_or_else(|f| panic!("restore into dp={dp} failed: {}", f.error));
        assert_eq!(restored.start_step, 2, "dp={dp}");
        assert_params_eq(&writer.final_params, &restored.final_params, "cross-width restore");
    }

    // The narrower world trains on from the restored state (exercising the
    // re-derived within-replica ZeRO-1 moment shards).
    let topo2 = SwipeTopology::new(2, 4, 1, 1, 1);
    let continue_cfg = SwipeConfig {
        n_steps: 3,
        resume_from: Some(ckpt.clone()),
        ..SwipeConfig::new(topo2)
    };
    let continued =
        DistributedTrainer::train(&reference, &continue_cfg, &source, &schedule(3, 2, 1, 8), &weights)
            .expect("DP=2 continuation");
    assert!(
        continued.losses[2].is_finite() && continued.losses[2] > 0.0,
        "continued training must produce a real loss, got {}",
        continued.losses[2]
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Seeded chaos: for any crash→restart schedule from
    /// [`FaultPlan::chaos_restarts`], the elastic run completes, the
    /// retire/rejoin events balance, and from the last rejoin boundary on it
    /// is bitwise identical to a fresh full-world resume of that boundary's
    /// checkpoint.
    #[test]
    fn chaos_restart_schedules_preserve_the_rejoin_invariant(seed in 1u64..1_000_000u64) {
        let cfg = tiny_cfg();
        let samples = random_samples(8, cfg.tokens(), cfg.channels);
        let source = aeris_swipe::data::InMemorySource { samples };
        let weights = weights_for(&cfg);
        let topo = SwipeTopology::new(2, 4, 1, 1, 1);
        let n_steps = 4usize;
        let sched = schedule(n_steps, 2, 1, 8);
        let reference = AerisModel::new(cfg);

        let plan = FaultPlan::chaos_restarts(seed, topo.world_size(), topo.world_size() / 2, n_steps - 1, 1);
        // The generator can only skip duplicate replicas; with count=1 it
        // always lands one crash→restart window.
        let crasher = (0..topo.world_size())
            .find(|&r| plan.crash_step(r).is_some())
            .expect("one window per plan");
        let rejoin_step = plan.restart_step(crasher).expect("window must close");

        let dir = tmp_dir(&format!("chaos_{seed}"));
        let elastic_cfg = SwipeConfig {
            n_steps,
            checkpoint: Some(CheckpointConfig { dir: dir.clone(), every: 1 }),
            faults: Some(plan.clone()),
            ..SwipeConfig::new(topo)
        };
        let elastic = DistributedTrainer::train(&reference, &elastic_cfg, &source, &sched, &weights)
            .expect("chaos rejoin run must complete");

        // Retire/rejoin balance: the crasher came back, and so did each of
        // its replica peers.
        let count = |pred: &dyn Fn(&FaultEvent) -> bool| {
            elastic.events.iter().filter(|r| pred(&r.event)).count()
        };
        prop_assert_eq!(count(&|e| matches!(e, FaultEvent::RankCrashed { .. })), 1);
        prop_assert_eq!(count(&|e| matches!(e, FaultEvent::RankRejoined { .. })), 1);
        prop_assert_eq!(
            count(&|e| matches!(e, FaultEvent::ReplicaRetired { .. })),
            count(&|e| matches!(e, FaultEvent::ReplicaRejoined { .. }))
        );

        let resumed_cfg = SwipeConfig {
            n_steps,
            resume_from: Some(dir.join(format!("step_{rejoin_step:06}.ckpt"))),
            ..SwipeConfig::new(topo)
        };
        let resumed = DistributedTrainer::train(&reference, &resumed_cfg, &source, &sched, &weights)
            .expect("resumed run");
        for step in rejoin_step..n_steps {
            prop_assert_eq!(
                elastic.losses[step].to_bits(),
                resumed.losses[step].to_bits(),
                "loss diverged at step {} (seed {})", step, seed
            );
        }
        for (name, v) in &resumed.final_params {
            prop_assert_eq!(
                v.data(),
                elastic.final_params[name].data(),
                "parameter {} diverged (seed {})", name, seed
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
