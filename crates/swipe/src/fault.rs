//! Deterministic fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] is a seedable, fully pre-declared schedule of faults that
//! the [`World`](crate::comm::World) consults on every message it moves:
//!
//! - **delay**: the nth message on a directed channel is held back for a
//!   fixed number of milliseconds before delivery (any traffic class);
//! - **drop**: the nth point-to-point message on a channel is suppressed a
//!   fixed number of times — each suppression models one lost transmission
//!   that the receiver's retry timer must recover with a retransmit request;
//! - **crash**: a rank leaves the world, either *at a step boundary*
//!   ([`crash_rank`](FaultPlan::crash_rank), which the trainer survives by
//!   retiring the dead rank's data-parallel replica) or *mid-step after a
//!   fixed number of communication operations*
//!   ([`crash_rank_after_ops`](FaultPlan::crash_rank_after_ops), which peers
//!   observe as timeouts and surface as typed errors).
//!
//! Because the plan is plain data known to every rank, runs under a plan are
//! exactly reproducible, and step-boundary reconfiguration needs no
//! agreement protocol: every survivor computes the same set of dead replicas
//! from (plan, step). Message indices count *every* mailbox insertion on a
//! directed channel in sender program order — point-to-point sends and
//! collective member messages alike — so a fault can target any wire
//! message a run produces.

use std::collections::HashMap;

/// A fault attached to one (src → dst, nth-message) channel slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFault {
    /// Hold the message back this long before it becomes visible.
    Delay { millis: u64 },
    /// Suppress delivery this many times; each receiver retransmit request
    /// recovers one suppression. Only meaningful for point-to-point traffic
    /// (collectives fail fast rather than retry).
    Drop { times: u32 },
}

/// A deterministic, seedable schedule of injected faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// (src, dst, per-channel message index) → fault.
    messages: HashMap<(usize, usize, u64), MessageFault>,
    /// rank → step boundary at which it crashes (graceful degradation path).
    step_crashes: HashMap<usize, usize>,
    /// rank → communication-op count after which it crashes mid-step
    /// (hard-failure path).
    op_crashes: HashMap<usize, u64>,
}

impl FaultPlan {
    /// An empty plan (no faults). `World::with_faults(.., FaultPlan::new())`
    /// exercises every hook with zero injected behavior — the configuration
    /// the fault-hook overhead benchmark measures.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Delay the `nth` message (0-based, counted per directed channel) from
    /// `src` to `dst` by `millis`.
    pub fn delay_message(mut self, src: usize, dst: usize, nth: u64, millis: u64) -> Self {
        self.messages.insert((src, dst, nth), MessageFault::Delay { millis });
        self
    }

    /// Drop the `nth` message from `src` to `dst`, `times` times.
    pub fn drop_message(mut self, src: usize, dst: usize, nth: u64, times: u32) -> Self {
        self.messages.insert((src, dst, nth), MessageFault::Drop { times });
        self
    }

    /// Crash `rank` at the boundary of training step `step` (before it does
    /// any work for that step).
    pub fn crash_rank(mut self, rank: usize, step: usize) -> Self {
        self.step_crashes.insert(rank, step);
        self
    }

    /// Crash `rank` mid-step, after it has completed `ops` communication
    /// operations since the start of the run.
    pub fn crash_rank_after_ops(mut self, rank: usize, ops: u64) -> Self {
        self.op_crashes.insert(rank, ops);
        self
    }

    /// A seeded random delay-only plan: `count` delays of up to `max_millis`
    /// each, scattered over the first `max_nth` messages of random directed
    /// channels in an `n`-rank world. Delay-only plans must never change
    /// results — only timing — which the property tests assert.
    pub fn chaos_delays(seed: u64, n: usize, max_nth: u64, count: usize, max_millis: u64) -> Self {
        let mut plan = FaultPlan::new();
        let mut rng = aeris_tensor::Rng::seed_from(seed ^ 0xFA17_7E57);
        for _ in 0..count {
            let src = rng.below(n);
            let dst = rng.below(n);
            if src == dst {
                continue;
            }
            let nth = rng.below(max_nth.max(1) as usize) as u64;
            let millis = 1 + rng.below(max_millis.max(1) as usize) as u64;
            plan = plan.delay_message(src, dst, nth, millis);
        }
        plan
    }

    /// True if the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.step_crashes.is_empty() && self.op_crashes.is_empty()
    }

    /// The fault (if any) attached to the `nth` message from `src` to `dst`.
    pub fn message_fault(&self, src: usize, dst: usize, nth: u64) -> Option<MessageFault> {
        self.messages.get(&(src, dst, nth)).copied()
    }

    /// The step at which `rank` is planned to crash, if any.
    pub fn crash_step(&self, rank: usize) -> Option<usize> {
        self.step_crashes.get(&rank).copied()
    }

    /// The op count after which `rank` is planned to crash mid-step, if any.
    pub fn crash_after_ops(&self, rank: usize) -> Option<u64> {
        self.op_crashes.get(&rank).copied()
    }

    /// Ranks whose planned step-boundary crash has occurred by `step`
    /// (i.e. `crash step <= step`). Mid-step op crashes are not included:
    /// they are hard failures surfaced as errors, not reconfigurations.
    pub fn dead_ranks_at(&self, step: usize) -> Vec<usize> {
        let mut dead: Vec<usize> =
            self.step_crashes.iter().filter(|&(_, &s)| s <= step).map(|(&r, _)| r).collect();
        dead.sort_unstable();
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::new()
            .delay_message(0, 1, 3, 25)
            .drop_message(2, 0, 0, 2)
            .crash_rank(5, 1)
            .crash_rank_after_ops(6, 100);
        assert!(!plan.is_empty());
        assert_eq!(plan.message_fault(0, 1, 3), Some(MessageFault::Delay { millis: 25 }));
        assert_eq!(plan.message_fault(2, 0, 0), Some(MessageFault::Drop { times: 2 }));
        assert_eq!(plan.message_fault(0, 1, 4), None);
        assert_eq!(plan.crash_step(5), Some(1));
        assert_eq!(plan.crash_step(6), None);
        assert_eq!(plan.crash_after_ops(6), Some(100));
        assert_eq!(plan.dead_ranks_at(0), Vec::<usize>::new());
        assert_eq!(plan.dead_ranks_at(1), vec![5]);
        assert_eq!(plan.dead_ranks_at(9), vec![5]);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().message_fault(0, 1, 0).is_none());
    }

    #[test]
    fn chaos_delays_is_deterministic_and_delay_only() {
        let a = FaultPlan::chaos_delays(42, 8, 16, 10, 4);
        let b = FaultPlan::chaos_delays(42, 8, 16, 10, 4);
        assert_eq!(a.messages, b.messages);
        assert!(a.step_crashes.is_empty() && a.op_crashes.is_empty());
        for fault in a.messages.values() {
            assert!(matches!(fault, MessageFault::Delay { millis } if *millis >= 1));
        }
        let c = FaultPlan::chaos_delays(43, 8, 16, 10, 4);
        assert_ne!(a.messages, c.messages, "different seeds should differ");
    }
}
