//! Deterministic fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] is a seedable, fully pre-declared schedule of faults that
//! the [`World`](crate::comm::World) consults on every message it moves:
//!
//! - **delay**: the nth message on a directed channel is held back for a
//!   fixed number of milliseconds before delivery (any traffic class);
//! - **drop**: the nth point-to-point message on a channel is suppressed a
//!   fixed number of times — each suppression models one lost transmission
//!   that the receiver's retry timer must recover with a retransmit request;
//! - **crash**: a rank leaves the world, either *at a step boundary*
//!   ([`crash_rank`](FaultPlan::crash_rank), which the trainer survives by
//!   retiring the dead rank's data-parallel replica) or *mid-step after a
//!   fixed number of communication operations*
//!   ([`crash_rank_after_ops`](FaultPlan::crash_rank_after_ops), which peers
//!   observe as timeouts and surface as typed errors).
//!
//! Because the plan is plain data known to every rank, runs under a plan are
//! exactly reproducible, and step-boundary reconfiguration needs no
//! agreement protocol: every survivor computes the same set of dead replicas
//! from (plan, step). Message indices count *every* mailbox insertion on a
//! directed channel in sender program order — point-to-point sends and
//! collective member messages alike — so a fault can target any wire
//! message a run produces.

use crate::events::{EventRecord, FaultEvent};
use std::collections::HashMap;

/// A fault attached to one (src → dst, nth-message) channel slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFault {
    /// Hold the message back this long before it becomes visible.
    Delay { millis: u64 },
    /// Suppress delivery this many times; each receiver retransmit request
    /// recovers one suppression. Only meaningful for point-to-point traffic
    /// (collectives fail fast rather than retry).
    Drop { times: u32 },
}

/// A deterministic, seedable schedule of injected faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// (src, dst, per-channel message index) → fault.
    messages: HashMap<(usize, usize, u64), MessageFault>,
    /// rank → step boundary at which it crashes (graceful degradation path).
    step_crashes: HashMap<usize, usize>,
    /// rank → communication-op count after which it crashes mid-step
    /// (hard-failure path).
    op_crashes: HashMap<usize, u64>,
    /// rank → step boundary at which a step-crashed rank rejoins the run
    /// (elastic path; must be later than the rank's crash step).
    restarts: HashMap<usize, usize>,
}

impl FaultPlan {
    /// An empty plan (no faults). `World::with_faults(.., FaultPlan::new())`
    /// exercises every hook with zero injected behavior — the configuration
    /// the fault-hook overhead benchmark measures.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Delay the `nth` message (0-based, counted per directed channel) from
    /// `src` to `dst` by `millis`.
    pub fn delay_message(mut self, src: usize, dst: usize, nth: u64, millis: u64) -> Self {
        self.messages.insert((src, dst, nth), MessageFault::Delay { millis });
        self
    }

    /// Drop the `nth` message from `src` to `dst`, `times` times.
    pub fn drop_message(mut self, src: usize, dst: usize, nth: u64, times: u32) -> Self {
        self.messages.insert((src, dst, nth), MessageFault::Drop { times });
        self
    }

    /// Crash `rank` at the boundary of training step `step` (before it does
    /// any work for that step).
    pub fn crash_rank(mut self, rank: usize, step: usize) -> Self {
        self.step_crashes.insert(rank, step);
        self
    }

    /// Crash `rank` mid-step, after it has completed `ops` communication
    /// operations since the start of the run.
    pub fn crash_rank_after_ops(mut self, rank: usize, ops: u64) -> Self {
        self.op_crashes.insert(rank, ops);
        self
    }

    /// Schedule a step-boundary-crashed `rank` to rejoin at the boundary of
    /// `step` (before any work of that step). The rank's replica regrows into
    /// the data-parallel groups in group order and receives a re-sharded copy
    /// of the surviving replicas' state. `step` must be strictly later than
    /// the rank's crash step; a restart with no matching crash is inert.
    pub fn restart_rank(mut self, rank: usize, step: usize) -> Self {
        self.restarts.insert(rank, step);
        self
    }

    /// A seeded random delay-only plan: `count` delays of up to `max_millis`
    /// each, scattered over the first `max_nth` messages of random directed
    /// channels in an `n`-rank world. Delay-only plans must never change
    /// results — only timing — which the property tests assert.
    pub fn chaos_delays(seed: u64, n: usize, max_nth: u64, count: usize, max_millis: u64) -> Self {
        let mut plan = FaultPlan::new();
        let mut rng = aeris_tensor::Rng::seed_from(seed ^ 0xFA17_7E57);
        for _ in 0..count {
            let src = rng.below(n);
            let dst = rng.below(n);
            if src == dst {
                continue;
            }
            let nth = rng.below(max_nth.max(1) as usize) as u64;
            let millis = 1 + rng.below(max_millis.max(1) as usize) as u64;
            plan = plan.delay_message(src, dst, nth, millis);
        }
        plan
    }

    /// A seeded random crash→restart plan: `count` ranks (drawn from distinct
    /// data-parallel replicas of an `n`-rank world with `ranks_per_dp` ranks
    /// per replica) each crash at a step boundary in `[1, max_step)` and
    /// rejoin at a later boundary `<= max_step`. Mirrors
    /// [`chaos_delays`](FaultPlan::chaos_delays): the plan is a pure function
    /// of the seed, so chaos runs reproduce exactly.
    pub fn chaos_restarts(
        seed: u64,
        n: usize,
        ranks_per_dp: usize,
        max_step: usize,
        count: usize,
    ) -> Self {
        assert!(max_step >= 2, "need room for a crash strictly before a rejoin");
        let mut plan = FaultPlan::new();
        let mut rng = aeris_tensor::Rng::seed_from(seed ^ 0xE1A5_71C0_FA17_7E57);
        let mut hit_dps = Vec::new();
        for _ in 0..count {
            let rank = rng.below(n);
            let dp = rank / ranks_per_dp;
            if hit_dps.contains(&dp) {
                continue; // one fault window per replica keeps windows disjoint
            }
            hit_dps.push(dp);
            let crash = 1 + rng.below(max_step - 1);
            let restart = crash + 1 + rng.below(max_step - crash);
            plan = plan.crash_rank(rank, crash).restart_rank(rank, restart);
        }
        plan
    }

    /// True if the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.step_crashes.is_empty() && self.op_crashes.is_empty()
    }

    /// The fault (if any) attached to the `nth` message from `src` to `dst`.
    pub fn message_fault(&self, src: usize, dst: usize, nth: u64) -> Option<MessageFault> {
        self.messages.get(&(src, dst, nth)).copied()
    }

    /// The step at which `rank` is planned to crash, if any.
    pub fn crash_step(&self, rank: usize) -> Option<usize> {
        self.step_crashes.get(&rank).copied()
    }

    /// The op count after which `rank` is planned to crash mid-step, if any.
    pub fn crash_after_ops(&self, rank: usize) -> Option<u64> {
        self.op_crashes.get(&rank).copied()
    }

    /// The step boundary at which `rank` is scheduled to rejoin, if any.
    pub fn restart_step(&self, rank: usize) -> Option<usize> {
        self.restarts.get(&rank).copied()
    }

    /// Ranks that are dead at `step`: their planned step-boundary crash has
    /// occurred (`crash <= step`) and no scheduled restart has taken effect
    /// yet (`restart > step`, or none). Mid-step op crashes are not included:
    /// they are hard failures surfaced as errors, not reconfigurations.
    pub fn dead_ranks_at(&self, step: usize) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .step_crashes
            .iter()
            .filter(|&(&r, &s)| s <= step && !matches!(self.restart_step(r), Some(t) if t <= step))
            .map(|(&r, _)| r)
            .collect();
        dead.sort_unstable();
        dead
    }

    /// The plan minus every crash that already fired in a previous attempt,
    /// as witnessed by that attempt's event log. A recovery supervisor passes
    /// the failed run's events here so the resumed run does not re-execute
    /// crashes from before the resume point (the plan is step-indexed, and a
    /// resumed run replays the same step numbers). Message faults are kept:
    /// they are channel-indexed, recoverable by design, and a fresh world's
    /// channels restart from message zero anyway.
    pub fn without_fired(&self, events: &[EventRecord]) -> FaultPlan {
        let mut plan = self.clone();
        for rec in events {
            match rec.event {
                FaultEvent::RankCrashed { rank, .. } => {
                    plan.step_crashes.remove(&rank);
                    plan.restarts.remove(&rank);
                }
                FaultEvent::RankCrashedMidStep { rank, .. } => {
                    plan.op_crashes.remove(&rank);
                }
                _ => {}
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::new()
            .delay_message(0, 1, 3, 25)
            .drop_message(2, 0, 0, 2)
            .crash_rank(5, 1)
            .crash_rank_after_ops(6, 100);
        assert!(!plan.is_empty());
        assert_eq!(plan.message_fault(0, 1, 3), Some(MessageFault::Delay { millis: 25 }));
        assert_eq!(plan.message_fault(2, 0, 0), Some(MessageFault::Drop { times: 2 }));
        assert_eq!(plan.message_fault(0, 1, 4), None);
        assert_eq!(plan.crash_step(5), Some(1));
        assert_eq!(plan.crash_step(6), None);
        assert_eq!(plan.crash_after_ops(6), Some(100));
        assert_eq!(plan.dead_ranks_at(0), Vec::<usize>::new());
        assert_eq!(plan.dead_ranks_at(1), vec![5]);
        assert_eq!(plan.dead_ranks_at(9), vec![5]);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::default().message_fault(0, 1, 0).is_none());
    }

    #[test]
    fn chaos_delays_is_deterministic_and_delay_only() {
        let a = FaultPlan::chaos_delays(42, 8, 16, 10, 4);
        let b = FaultPlan::chaos_delays(42, 8, 16, 10, 4);
        assert_eq!(a.messages, b.messages);
        assert!(a.step_crashes.is_empty() && a.op_crashes.is_empty());
        for fault in a.messages.values() {
            assert!(matches!(fault, MessageFault::Delay { millis } if *millis >= 1));
        }
        let c = FaultPlan::chaos_delays(43, 8, 16, 10, 4);
        assert_ne!(a.messages, c.messages, "different seeds should differ");
    }

    #[test]
    fn restart_reopens_the_dead_window() {
        let plan = FaultPlan::new().crash_rank(3, 2).restart_rank(3, 5);
        assert_eq!(plan.restart_step(3), Some(5));
        assert_eq!(plan.restart_step(4), None);
        assert_eq!(plan.dead_ranks_at(1), Vec::<usize>::new());
        assert_eq!(plan.dead_ranks_at(2), vec![3]);
        assert_eq!(plan.dead_ranks_at(4), vec![3]);
        assert_eq!(plan.dead_ranks_at(5), Vec::<usize>::new());
        assert_eq!(plan.dead_ranks_at(9), Vec::<usize>::new());
    }

    #[test]
    fn chaos_restarts_is_deterministic_and_well_formed() {
        let a = FaultPlan::chaos_restarts(7, 16, 8, 6, 2);
        let b = FaultPlan::chaos_restarts(7, 16, 8, 6, 2);
        assert_eq!(a.step_crashes, b.step_crashes);
        assert_eq!(a.restarts, b.restarts);
        assert!(a.messages.is_empty() && a.op_crashes.is_empty());
        for (&rank, &crash) in &a.step_crashes {
            let restart = a.restarts[&rank];
            assert!(crash >= 1 && crash < restart && restart <= 6, "{crash}->{restart}");
        }
        // Crashed ranks hit distinct replicas (one fault window per dp).
        let dps: Vec<usize> = a.step_crashes.keys().map(|&r| r / 8).collect();
        let mut uniq = dps.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), dps.len());
    }

    #[test]
    fn without_fired_strips_only_witnessed_crashes() {
        let plan = FaultPlan::new()
            .crash_rank(2, 1)
            .restart_rank(2, 3)
            .crash_rank(5, 4)
            .crash_rank_after_ops(6, 100)
            .drop_message(0, 1, 2, 1);
        let events = vec![
            EventRecord { rank: 2, event: FaultEvent::RankCrashed { rank: 2, step: 1 } },
            EventRecord { rank: 6, event: FaultEvent::RankCrashedMidStep { rank: 6, ops: 100 } },
        ];
        let stripped = plan.without_fired(&events);
        assert_eq!(stripped.crash_step(2), None);
        assert_eq!(stripped.restart_step(2), None);
        assert_eq!(stripped.crash_step(5), Some(4), "unfired crash survives");
        assert_eq!(stripped.crash_after_ops(6), None);
        assert!(stripped.message_fault(0, 1, 2).is_some(), "message faults are kept");
    }
}
