//! Per-rank pipeline-stage models and their segmented forward/backward.
//!
//! A model instance is split into `n_layers + 2` stages (§VII-A): stage 0
//! holds data loading + the input embedding, stages `1..=L` hold one Swin
//! block each, and the last stage holds the output norm, decoder, target
//! loading, and the loss. Parameters are copied from a reference
//! single-rank [`aeris_core::AerisModel`] so distributed results can be
//! compared against it exactly.
//!
//! Within a block, the forward pass crosses two Ulysses all-to-alls (heads
//! scatter / gather); the tape records the shipped activation vars, and the
//! backward runs as three `backward_from` passes with the transposed
//! exchanges in between.

use crate::comm::{CommError, Communicator};
use crate::layout::ActLayout;
use aeris_autodiff::{Grads, Tape, Var};
use aeris_core::AerisModel;
use aeris_nn::timecond::AdaLnHead;
use aeris_nn::{Binding, Linear, ParamStore, RmsNorm, RopeTable, SwiGlu, TimeConditioner};
use aeris_tensor::Tensor;
use std::collections::HashMap;

/// What a stage computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Data loading + input embedding.
    Input,
    /// Swin block `b` (0-based block index).
    Block(usize),
    /// Output norm + decoder + loss.
    Head,
}

/// Learnable state of one stage (parameters replicated across DP×WP×SP).
pub struct StageModel {
    pub kind: StageKind,
    pub store: ParamStore,
    embed: Option<Linear>,
    time_cond: Option<TimeConditioner>,
    norm1: Option<RmsNorm>,
    wq: Option<Linear>,
    wk: Option<Linear>,
    wv: Option<Linear>,
    wo: Option<Linear>,
    norm2: Option<RmsNorm>,
    mlp: Option<SwiGlu>,
    adaln: Option<AdaLnHead>,
    out_norm: Option<RmsNorm>,
    decode: Option<Linear>,
    /// Whether this block uses shifted windows.
    pub shifted: bool,
    dim: usize,
    n_heads: usize,
    head_dim: usize,
}

/// Why a stage could not be built from a reference model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageError {
    /// The reference model has no parameter with this name — the stage
    /// partitioning and the model architecture are out of sync.
    MissingParam(String),
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::MissingParam(name) => {
                write!(f, "reference model lacks parameter {name}")
            }
        }
    }
}

impl std::error::Error for StageError {}

fn copy_param(
    map: &HashMap<String, Tensor>,
    store: &mut ParamStore,
    name: &str,
) -> Result<aeris_nn::ParamId, StageError> {
    let v = map.get(name).ok_or_else(|| StageError::MissingParam(name.to_string()))?.clone();
    Ok(store.register(name.to_string(), v))
}

fn copy_linear(
    map: &HashMap<String, Tensor>,
    store: &mut ParamStore,
    lin: &Linear,
    name: &str,
) -> Result<Linear, StageError> {
    let w = copy_param(map, store, &format!("{name}.w"))?;
    let b = match lin.b {
        Some(_) => Some(copy_param(map, store, &format!("{name}.b"))?),
        None => None,
    };
    Ok(Linear { w, b, in_dim: lin.in_dim, out_dim: lin.out_dim })
}

/// `name` is the layer base name; the reference registers the gain under
/// `{name}.gamma`.
fn copy_rms(
    map: &HashMap<String, Tensor>,
    store: &mut ParamStore,
    norm: &RmsNorm,
    name: &str,
) -> Result<RmsNorm, StageError> {
    let gamma = copy_param(map, store, &format!("{name}.gamma"))?;
    Ok(RmsNorm { gamma, dim: norm.dim, eps: norm.eps })
}

impl StageModel {
    /// Build a stage by copying the relevant parameters from a reference
    /// model. The reference must use `blocks_per_layer == 1` (one block per
    /// stage, the configuration the distributed runtime supports). A
    /// reference whose parameter set does not match the expected stage
    /// partitioning yields [`StageError::MissingParam`].
    pub fn from_reference(model: &AerisModel, kind: StageKind) -> Result<Self, StageError> {
        assert_eq!(
            model.cfg.blocks_per_layer, 1,
            "distributed runtime requires one block per Swin layer"
        );
        let map: HashMap<String, Tensor> =
            model.store.iter().map(|(_, n, v)| (n.to_string(), v.clone())).collect();
        let mut store = ParamStore::new();
        let mut sm = StageModel {
            kind,
            store: ParamStore::new(),
            embed: None,
            time_cond: None,
            norm1: None,
            wq: None,
            wk: None,
            wv: None,
            wo: None,
            norm2: None,
            mlp: None,
            adaln: None,
            out_norm: None,
            decode: None,
            shifted: false,
            dim: model.cfg.dim,
            n_heads: model.cfg.n_heads,
            head_dim: model.cfg.head_dim(),
        };
        match kind {
            StageKind::Input => {
                sm.embed = Some(copy_linear(&map, &mut store, &model.embed, "embed")?);
            }
            StageKind::Block(b) => {
                let blk = &model.blocks[b];
                // Shared time conditioner replicated into every block stage.
                let proj = copy_linear(&map, &mut store, &model.time_cond.proj, "time.proj")?;
                sm.time_cond = Some(TimeConditioner {
                    proj,
                    feat_dim: model.time_cond.feat_dim,
                    cond_dim: model.time_cond.cond_dim,
                });
                let p = format!("block{b}");
                sm.norm1 = Some(copy_rms(&map, &mut store, &blk.norm1, &format!("{p}.norm1"))?);
                sm.wq = Some(copy_linear(&map, &mut store, &blk.attn.wq, &format!("{p}.attn.wq"))?);
                sm.wk = Some(copy_linear(&map, &mut store, &blk.attn.wk, &format!("{p}.attn.wk"))?);
                sm.wv = Some(copy_linear(&map, &mut store, &blk.attn.wv, &format!("{p}.attn.wv"))?);
                sm.wo = Some(copy_linear(&map, &mut store, &blk.attn.wo, &format!("{p}.attn.wo"))?);
                sm.norm2 = Some(copy_rms(&map, &mut store, &blk.norm2, &format!("{p}.norm2"))?);
                sm.mlp = Some(SwiGlu {
                    w_in: copy_linear(&map, &mut store, &blk.mlp.w_in, &format!("{p}.mlp.w_in"))?,
                    w_down: copy_linear(
                        &map,
                        &mut store,
                        &blk.mlp.w_down,
                        &format!("{p}.mlp.w_down"),
                    )?,
                    dim: blk.mlp.dim,
                    ffn: blk.mlp.ffn,
                });
                sm.adaln = Some(AdaLnHead {
                    head: copy_linear(&map, &mut store, &blk.adaln.head, &format!("{p}.adaln"))?,
                    dim: blk.adaln.dim,
                });
                sm.shifted = blk.shifted;
            }
            StageKind::Head => {
                sm.out_norm = Some(copy_rms(&map, &mut store, &model.out_norm, "out_norm")?);
                sm.decode = Some(copy_linear(&map, &mut store, &model.decode, "decode")?);
            }
        }
        sm.store = store;
        Ok(sm)
    }

    /// Names of this stage's parameters (reference-model names).
    pub fn param_names(&self) -> Vec<String> {
        self.store.iter().map(|(_, n, _)| n.to_string()).collect()
    }

    /// Ids of the globally replicated (time-conditioner) parameters.
    pub fn shared_param_ixs(&self) -> Vec<usize> {
        self.store
            .iter()
            .filter(|(_, n, _)| n.starts_with("time."))
            .map(|(id, _, _)| id.0)
            .collect()
    }
}

/// Record of one microbatch pass through a stage (kept until backward).
pub struct StageRun {
    pub tape: Tape,
    pub binding: Binding,
    /// Input leaf (None for the input stage, whose input is constant data).
    pub x_in: Option<Var>,
    /// Stage output: activations (input/block) or scalar loss (head).
    pub out: Var,
    /// Per-SP-peer QKV chunks shipped out (self slot included, unsent).
    pub qkv_sent: Vec<Var>,
    /// Per-SP-peer QKV leaves received (None at the self slot).
    pub qkv_recv: Vec<Option<Var>>,
    /// Per-SP-peer attention-output chunks shipped back.
    pub attn_sent: Vec<Var>,
    /// Per-SP-peer attention-output leaves received (None at self).
    pub attn_recv: Vec<Option<Var>>,
    /// Head stages: the (already globally scaled) loss value.
    pub loss: f64,
}

impl StageRun {
    fn simple(tape: Tape, binding: Binding, x_in: Option<Var>, out: Var) -> Self {
        StageRun {
            tape,
            binding,
            x_in,
            out,
            qkv_sent: Vec::new(),
            qkv_recv: Vec::new(),
            attn_sent: Vec::new(),
            attn_recv: Vec::new(),
            loss: 0.0,
        }
    }

    /// Activation elements currently held by this run's tape.
    pub fn activation_elems(&self) -> usize {
        self.tape.activation_elems()
    }
}

impl StageModel {
    /// Input-stage forward: `input` is the assembled, PE-augmented
    /// `[rows, in_channels]` matrix for this rank's tokens.
    pub fn forward_input(&self, input: Tensor) -> StageRun {
        let embed = self.embed.as_ref().expect("not an input stage");
        let mut tape = Tape::new();
        let mut binding = Binding::new(&self.store);
        let iv = tape.constant(input);
        let out = embed.forward(&mut tape, &mut binding, &self.store, iv);
        StageRun::simple(tape, binding, None, out)
    }

    /// Head-stage forward: decode + physically weighted loss against the
    /// target rows, scaled by `rows/global_tokens` so that summing the loss
    /// over all head ranks yields the global mean objective.
    pub fn forward_head(
        &self,
        x_in_val: Tensor,
        target_rows: &Tensor,
        weight_rows: &Tensor,
        global_tokens: usize,
    ) -> StageRun {
        let out_norm = self.out_norm.as_ref().expect("not a head stage");
        let decode = self.decode.as_ref().unwrap();
        let rows = x_in_val.shape()[0];
        let mut tape = Tape::new();
        let mut binding = Binding::new(&self.store);
        let x_in = tape.leaf(x_in_val);
        let h = out_norm.forward(&mut tape, &mut binding, &self.store, x_in);
        let pred = decode.forward(&mut tape, &mut binding, &self.store, h);
        let local = tape.weighted_mse(pred, target_rows, weight_rows);
        let loss = tape.scale(local, rows as f32 / global_tokens as f32);
        let loss_val = tape.value(loss).data()[0] as f64;
        let mut run = StageRun::simple(tape, binding, Some(x_in), loss);
        run.loss = loss_val;
        run
    }

    /// Block-stage forward with distributed (Ulysses) attention.
    ///
    /// `x_in_val`: `[rows, dim]` for this rank's windows/chunk under the
    /// block's layout; `t`: the shared diffusion time of this microbatch;
    /// `sp_group`: world ranks of this rank's SP group (self included);
    /// `rope`: table for one window.
    pub fn forward_block(
        &self,
        x_in_val: Tensor,
        t: f32,
        layout: &ActLayout,
        rope: &RopeTable,
        comm: &mut Communicator,
        sp_group: &[usize],
    ) -> Result<StageRun, CommError> {
        let (norm1, norm2) = (self.norm1.as_ref().expect("not a block"), self.norm2.as_ref().unwrap());
        let (wq, wk, wv, wo) = (
            self.wq.as_ref().unwrap(),
            self.wk.as_ref().unwrap(),
            self.wv.as_ref().unwrap(),
            self.wo.as_ref().unwrap(),
        );
        let mlp = self.mlp.as_ref().unwrap();
        let adaln = self.adaln.as_ref().unwrap();
        let tc = self.time_cond.as_ref().unwrap();
        let store = &self.store;

        let sp = sp_group.len();
        let me = sp_group.iter().position(|&r| r == comm.rank()).expect("rank in sp group");
        let rows = x_in_val.shape()[0];
        let nw = layout.windows_per_rank();
        let cr = layout.chunk_rows();
        assert_eq!(rows, nw * cr);
        assert_eq!(self.n_heads % sp, 0, "heads must divide over SP");
        let cols = self.dim / sp; // feature columns per peer (local head block)
        let wlen = layout.grid.window_len();

        let mut tape = Tape::new();
        let mut binding = Binding::new(store);
        let x_in = tape.leaf(x_in_val);

        let cond = tc.embed(&mut tape, &mut binding, store, t);
        let mods = adaln.forward(&mut tape, &mut binding, store, cond);
        let [shift1, scale1, gate1, shift2, scale2, gate2] = mods;
        let scale1p = tape.add_scalar(scale1, 1.0);
        let scale2p = tape.add_scalar(scale2, 1.0);

        // ---- attention branch ----
        let h = norm1.forward(&mut tape, &mut binding, store, x_in);
        let h = tape.affine_rows(h, scale1p, shift1);
        let q = wq.forward(&mut tape, &mut binding, store, h);
        let k = wk.forward(&mut tape, &mut binding, store, h);
        let v = wv.forward(&mut tape, &mut binding, store, h);

        // Ship [q|k|v] column-blocks to each peer: one [3*rows, dim/sp]
        // tensor per peer (the Ulysses scatter; window chunks are batched
        // into a single message, as in the paper's merged communication).
        let mut qkv_sent = Vec::with_capacity(sp);
        for j in 0..sp {
            let (c0, c1) = (j * cols, (j + 1) * cols);
            let qj = tape.slice_cols(q, c0, c1);
            let kj = tape.slice_cols(k, c0, c1);
            let vj = tape.slice_cols(v, c0, c1);
            qkv_sent.push(tape.concat_rows(&[qj, kj, vj]));
        }
        let chunks: Vec<Tensor> = qkv_sent.iter().map(|&var| tape.value(var).clone()).collect();
        let received = comm.alltoall(sp_group, chunks)?;
        let mut qkv_recv: Vec<Option<Var>> = Vec::with_capacity(sp);
        let mut qkv_vars: Vec<Var> = Vec::with_capacity(sp);
        for (i, tens) in received.into_iter().enumerate() {
            if i == me {
                qkv_recv.push(None);
                qkv_vars.push(qkv_sent[me]);
            } else {
                let leaf = tape.leaf(tens);
                qkv_recv.push(Some(leaf));
                qkv_vars.push(leaf);
            }
        }

        // Per window: assemble the full [wlen, cols] Q/K/V for my head
        // block from all peers' chunks, run attention per local head.
        let heads_local = self.n_heads / sp;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut attn_windows = Vec::with_capacity(nw);
        for w in 0..nw {
            let mut qs = Vec::with_capacity(sp);
            let mut ks = Vec::with_capacity(sp);
            let mut vs = Vec::with_capacity(sp);
            for &src in &qkv_vars {
                // Peer tensor layout: rows [0,rows)=q, [rows,2rows)=k, …
                let base_q: Vec<usize> = (w * cr..(w + 1) * cr).collect();
                let base_k: Vec<usize> = (rows + w * cr..rows + (w + 1) * cr).collect();
                let base_v: Vec<usize> = (2 * rows + w * cr..2 * rows + (w + 1) * cr).collect();
                qs.push(tape.gather_rows(src, &base_q));
                ks.push(tape.gather_rows(src, &base_k));
                vs.push(tape.gather_rows(src, &base_v));
            }
            let qw = tape.concat_rows(&qs); // [wlen, cols]
            let kw = tape.concat_rows(&ks);
            let vw = tape.concat_rows(&vs);
            debug_assert_eq!(tape.value(qw).shape(), &[wlen, cols]);
            let mut head_outs = Vec::with_capacity(heads_local);
            for hl in 0..heads_local {
                let (c0, c1) = (hl * self.head_dim, (hl + 1) * self.head_dim);
                let qh = tape.slice_cols(qw, c0, c1);
                let kh = tape.slice_cols(kw, c0, c1);
                let vh = tape.slice_cols(vw, c0, c1);
                let qh = tape.rope_rows(qh, &rope.cos, &rope.sin);
                let kh = tape.rope_rows(kh, &rope.cos, &rope.sin);
                let scores = tape.matmul_nt(qh, kh);
                let scores = tape.scale(scores, scale);
                let probs = tape.softmax_rows(scores);
                head_outs.push(tape.matmul(probs, vh));
            }
            attn_windows.push(tape.concat_cols(&head_outs)); // [wlen, cols]
        }

        // Redistribute: peer j takes rows [j*cr, (j+1)*cr) of each window.
        let mut attn_sent = Vec::with_capacity(sp);
        for j in 0..sp {
            let idx: Vec<usize> = (j * cr..(j + 1) * cr).collect();
            let mut gathered = Vec::with_capacity(nw);
            for w in 0..nw {
                gathered.push(tape.gather_rows(attn_windows[w], &idx));
            }
            attn_sent.push(tape.concat_rows(&gathered)); // [rows, cols]
        }
        let chunks: Vec<Tensor> = attn_sent.iter().map(|&var| tape.value(var).clone()).collect();
        let received = comm.alltoall(sp_group, chunks)?;
        let mut attn_recv: Vec<Option<Var>> = Vec::with_capacity(sp);
        let mut attn_vars: Vec<Var> = Vec::with_capacity(sp);
        for (i, tens) in received.into_iter().enumerate() {
            if i == me {
                attn_recv.push(None);
                attn_vars.push(attn_sent[me]);
            } else {
                let leaf = tape.leaf(tens);
                attn_recv.push(Some(leaf));
                attn_vars.push(leaf);
            }
        }
        // Peer i computed head block i: concat columns in SP order restores
        // the full feature dim for my rows.
        let attn_full = tape.concat_cols(&attn_vars); // [rows, dim]
        let h2 = wo.forward(&mut tape, &mut binding, store, attn_full);
        let h2 = tape.mul_rows(h2, gate1);
        let x_mid = tape.add(x_in, h2);

        // ---- MLP branch ----
        let h3 = norm2.forward(&mut tape, &mut binding, store, x_mid);
        let h3 = tape.affine_rows(h3, scale2p, shift2);
        let h3 = mlp.forward(&mut tape, &mut binding, store, h3);
        let h3 = tape.mul_rows(h3, gate2);
        let out = tape.add(x_mid, h3);

        Ok(StageRun {
            tape,
            binding,
            x_in: Some(x_in),
            out,
            qkv_sent,
            qkv_recv,
            attn_sent,
            attn_recv,
            loss: 0.0,
        })
    }

    /// Block backward: three `backward_from` passes with transposed
    /// all-to-alls. Returns the gradient w.r.t. the block input and
    /// accumulates parameter gradients into `param_grads`.
    pub fn backward_block(
        &self,
        mut run: StageRun,
        g_out: Tensor,
        comm: &mut Communicator,
        sp_group: &[usize],
        param_grads: &mut [Option<Tensor>],
    ) -> Result<Tensor, CommError> {
        let sp = sp_group.len();
        let me = sp_group.iter().position(|&r| r == comm.rank()).unwrap();
        let x_in = run.x_in.unwrap();
        let mut x_in_grad = Tensor::zeros(run.tape.value(x_in).shape());

        let accumulate = |grads: &mut Grads,
                              run_binding: &Binding,
                              x_in_grad: &mut Tensor,
                              param_grads: &mut [Option<Tensor>]| {
            if let Some(g) = grads.take(x_in) {
                x_in_grad.add_assign(&g);
            }
            for (slot, g) in param_grads.iter_mut().zip(run_binding.collect_grads(grads)) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
        };

        // Pass 1: from the block output.
        let mut pass1 = run.tape.backward_from(&[(run.out, g_out)]);
        // Grads for attention outputs computed by peers → alltoall back.
        let mut attn_chunks = Vec::with_capacity(sp);
        let mut pass1_qkv: Vec<Option<Tensor>> = vec![None; sp];
        for j in 0..sp {
            let g = match run.attn_recv[j] {
                Some(leaf) => pass1
                    .take(leaf)
                    .unwrap_or_else(|| Tensor::zeros(run.tape.value(leaf).shape())),
                None => Tensor::zeros(&[0]),
            };
            attn_chunks.push(g);
        }
        for (j, slot) in pass1_qkv.iter_mut().enumerate() {
            if let Some(leaf) = run.qkv_recv[j] {
                *slot = pass1.take(leaf);
            }
        }
        accumulate(&mut pass1, &run.binding, &mut x_in_grad, param_grads);
        let attn_sent_grads = comm.alltoall(sp_group, attn_chunks)?;

        // Pass 2: seed grads of my attention outputs shipped to peers.
        let seeds: Vec<(Var, Tensor)> = (0..sp)
            .filter(|&i| i != me)
            .map(|i| (run.attn_sent[i], attn_sent_grads[i].clone()))
            .collect();
        let mut pass2 = run.tape.backward_from(&seeds);
        let mut qkv_chunks = Vec::with_capacity(sp);
        for j in 0..sp {
            let g = match run.qkv_recv[j] {
                Some(leaf) => {
                    let shape = run.tape.value(leaf).shape().to_vec();
                    let mut g = pass1_qkv[j].take().unwrap_or_else(|| Tensor::zeros(&shape));
                    if let Some(g2) = pass2.take(leaf) {
                        g.add_assign(&g2);
                    }
                    g
                }
                None => Tensor::zeros(&[0]),
            };
            qkv_chunks.push(g);
        }
        accumulate(&mut pass2, &run.binding, &mut x_in_grad, param_grads);
        let qkv_sent_grads = comm.alltoall(sp_group, qkv_chunks)?;

        // Pass 3: seed grads of my QKV chunks shipped to peers.
        let seeds: Vec<(Var, Tensor)> = (0..sp)
            .filter(|&i| i != me)
            .map(|i| (run.qkv_sent[i], qkv_sent_grads[i].clone()))
            .collect();
        let mut pass3 = run.tape.backward_from(&seeds);
        accumulate(&mut pass3, &run.binding, &mut x_in_grad, param_grads);
        Ok(x_in_grad)
    }

    /// Input-stage backward.
    pub fn backward_input(&self, mut run: StageRun, g_out: Tensor, param_grads: &mut [Option<Tensor>]) {
        let mut grads = run.tape.backward_from(&[(run.out, g_out)]);
        for (slot, g) in param_grads.iter_mut().zip(run.binding.collect_grads(&mut grads)) {
            match (slot.as_mut(), g) {
                (Some(a), Some(g)) => a.add_assign(&g),
                (None, Some(g)) => *slot = Some(g),
                _ => {}
            }
        }
    }

    /// Head-stage backward: returns grad w.r.t. the head input rows.
    pub fn backward_head(&self, mut run: StageRun, param_grads: &mut [Option<Tensor>]) -> Tensor {
        let mut grads = run.tape.backward(run.out);
        let x_in = run.x_in.unwrap();
        let g = grads.take(x_in).expect("head input grad");
        for (slot, pg) in param_grads.iter_mut().zip(run.binding.collect_grads(&mut grads)) {
            match (slot.as_mut(), pg) {
                (Some(a), Some(pg)) => a.add_assign(&pg),
                (None, Some(pg)) => *slot = Some(pg),
                _ => {}
            }
        }
        g
    }
}
