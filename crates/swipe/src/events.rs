//! Structured fault log for the distributed runtime.
//!
//! Every injected fault, recovery action, and reconfiguration decision is
//! recorded here so that tests (and operators) can assert not just *that* a
//! run survived, but *how*: which messages were delayed or dropped, which
//! retransmits fired, which replicas were retired, and where checkpoints
//! landed. The log is shared across all rank threads through the [`World`]
//! and surfaces in [`TrainReport::events`] / [`TrainFailure::events`].
//!
//! [`World`]: crate::comm::World
//! [`TrainReport::events`]: crate::trainer::TrainReport
//! [`TrainFailure::events`]: crate::trainer::TrainFailure

use crate::comm::CommClass;
use parking_lot::Mutex;
use std::sync::Arc;

/// One fault-related occurrence in a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// The fault plan held a message back before delivery.
    InjectedDelay { src: usize, dst: usize, class: CommClass, millis: u64 },
    /// The fault plan suppressed a message delivery (`remaining` further
    /// deliveries of the same message will also be suppressed).
    InjectedDrop { src: usize, dst: usize, remaining: u32 },
    /// A receiver's retry timer fired and requested a retransmit of a
    /// dropped point-to-point message (`attempt` counts from 1).
    RetransmitRequest { src: usize, dst: usize, attempt: u32 },
    /// A blocking wait exceeded its deadline and the operation failed.
    CommTimeout { rank: usize, peer: usize, waited_ms: u64 },
    /// A rank executed its planned crash and left the world.
    RankCrashed { rank: usize, step: usize },
    /// A rank died mid-step after `ops` completed communication operations
    /// (hard failure — peers surface it as timeouts / dead-peer errors).
    RankCrashedMidStep { rank: usize, ops: u64 },
    /// A surviving member of a crashed rank's data-parallel replica retired
    /// (the whole replica leaves the run together).
    ReplicaRetired { rank: usize, dp: usize, step: usize },
    /// The data-parallel group shrank; gradient averaging was rescaled to
    /// the surviving global batch.
    GroupRescaled { step: usize, live_dp: usize },
    /// A coordinated checkpoint was written covering training state up to
    /// (excluding) `next_step`.
    CheckpointSaved { next_step: usize, path: String },
}

/// A [`FaultEvent`] plus the rank that observed/performed it.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    pub rank: usize,
    pub event: FaultEvent,
}

/// Append-only, thread-shared fault log.
#[derive(Clone, Default)]
pub struct EventLog {
    entries: Arc<Mutex<Vec<EventRecord>>>,
}

impl EventLog {
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Record an event observed by `rank`.
    pub fn record(&self, rank: usize, event: FaultEvent) {
        self.entries.lock().push(EventRecord { rank, event });
    }

    /// Copy out the log (ordering is by record time across all ranks).
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.entries.lock().clone()
    }

    /// Number of recorded events matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&FaultEvent) -> bool) -> usize {
        self.entries.lock().iter().filter(|r| pred(&r.event)).count()
    }

    /// Whether any recorded event matches a predicate.
    pub fn any(&self, pred: impl Fn(&FaultEvent) -> bool) -> bool {
        self.count_matching(pred) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_shared_across_clones_and_threads() {
        let log = EventLog::new();
        let log2 = log.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                log2.record(1, FaultEvent::RetransmitRequest { src: 0, dst: 1, attempt: 1 });
            });
            s.spawn(|| {
                log.record(0, FaultEvent::GroupRescaled { step: 2, live_dp: 1 });
            });
        });
        assert_eq!(log.snapshot().len(), 2);
        assert!(log.any(|e| matches!(e, FaultEvent::RetransmitRequest { attempt: 1, .. })));
        assert_eq!(
            log.count_matching(|e| matches!(e, FaultEvent::GroupRescaled { live_dp: 1, .. })),
            1
        );
    }
}
