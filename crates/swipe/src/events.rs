//! Structured event and metrics logging shared by the distributed runtimes.
//!
//! Originally this module held the fault log of the SWiPe trainer; the
//! machinery (an append-only, thread-shared log of typed records, each tagged
//! with the actor that observed it) is equally what an inference server needs
//! for its ops surface, so the log is generic over the event type:
//!
//! - [`EventLog<E>`] — the shared log. SWiPe instantiates it at the default
//!   `E = FaultEvent`; `aeris-serve` instantiates it with its own event enum.
//! - [`MetricSeries`] — re-exported from `aeris-obs` (where it moved when the
//!   observability subsystem grew its own crate) so existing
//!   `swipe::events::MetricSeries` users keep compiling; new code should take
//!   it from `aeris_obs` directly, typically via [`Tracer::series`].
//!
//! [`Tracer::series`]: aeris_obs::Tracer::series
//!
//! Every injected fault, recovery action, and reconfiguration decision of the
//! trainer is recorded here so that tests (and operators) can assert not just
//! *that* a run survived, but *how*: which messages were delayed or dropped,
//! which retransmits fired, which replicas were retired, and where
//! checkpoints landed. The log is shared across all rank threads through the
//! [`World`] and surfaces in [`TrainReport::events`] /
//! [`TrainFailure::events`].
//!
//! [`World`]: crate::comm::World
//! [`TrainReport::events`]: crate::trainer::TrainReport
//! [`TrainFailure::events`]: crate::trainer::TrainFailure

use crate::comm::CommClass;
use parking_lot::Mutex;
use std::sync::Arc;

/// One fault-related occurrence in a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// The fault plan held a message back before delivery.
    InjectedDelay { src: usize, dst: usize, class: CommClass, millis: u64 },
    /// The fault plan suppressed a message delivery (`remaining` further
    /// deliveries of the same message will also be suppressed).
    InjectedDrop { src: usize, dst: usize, remaining: u32 },
    /// A receiver's retry timer fired and requested a retransmit of a
    /// dropped point-to-point message (`attempt` counts from 1).
    RetransmitRequest { src: usize, dst: usize, attempt: u32 },
    /// A blocking wait exceeded its deadline and the operation failed.
    CommTimeout { rank: usize, peer: usize, waited_ms: u64 },
    /// A rank executed its planned crash and left the world.
    RankCrashed { rank: usize, step: usize },
    /// A rank died mid-step after `ops` completed communication operations
    /// (hard failure — peers surface it as timeouts / dead-peer errors).
    RankCrashedMidStep { rank: usize, ops: u64 },
    /// A surviving member of a crashed rank's data-parallel replica retired
    /// (the whole replica leaves the run together).
    ReplicaRetired { rank: usize, dp: usize, step: usize },
    /// The data-parallel group shrank; gradient averaging was rescaled to
    /// the surviving global batch.
    GroupRescaled { step: usize, live_dp: usize },
    /// A coordinated checkpoint was written covering training state up to
    /// (excluding) `next_step`.
    CheckpointSaved { next_step: usize, path: String },
    /// A previously crashed rank re-entered the world at a step boundary and
    /// received a re-sharded copy of the surviving replicas' state.
    RankRejoined { rank: usize, step: usize },
    /// A parked member of a crashed rank's replica resumed with it (the
    /// whole replica rejoins the run together, mirroring `ReplicaRetired`).
    ReplicaRejoined { rank: usize, dp: usize, step: usize },
    /// The recovery supervisor relaunched training after a failure
    /// (`attempt` counts from 1; `from_step` is the resume boundary).
    RunResumed { attempt: usize, from_step: usize },
}

/// An event plus the actor (rank thread, serving worker, …) that
/// observed/performed it.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord<E = FaultEvent> {
    pub rank: usize,
    pub event: E,
}

/// Append-only, thread-shared event log, generic over the event type.
pub struct EventLog<E = FaultEvent> {
    entries: Arc<Mutex<Vec<EventRecord<E>>>>,
}

// Derived `Clone`/`Default` would demand `E: Clone`/`E: Default`; the log
// itself only clones the `Arc` handle and starts empty, so implement both by
// hand without bounds.
impl<E> Clone for EventLog<E> {
    fn clone(&self) -> Self {
        EventLog { entries: Arc::clone(&self.entries) }
    }
}

impl<E> Default for EventLog<E> {
    fn default() -> Self {
        EventLog { entries: Arc::new(Mutex::new(Vec::new())) }
    }
}

impl<E> EventLog<E> {
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Record an event observed by actor `rank`.
    pub fn record(&self, rank: usize, event: E) {
        self.entries.lock().push(EventRecord { rank, event });
    }

    /// Number of recorded events matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&E) -> bool) -> usize {
        self.entries.lock().iter().filter(|r| pred(&r.event)).count()
    }

    /// Whether any recorded event matches a predicate.
    pub fn any(&self, pred: impl Fn(&E) -> bool) -> bool {
        self.count_matching(pred) > 0
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E: Clone> EventLog<E> {
    /// Copy out the log (ordering is by record time across all actors).
    pub fn snapshot(&self) -> Vec<EventRecord<E>> {
        self.entries.lock().clone()
    }
}

pub use aeris_obs::{MetricSeries, MetricSummary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_shared_across_clones_and_threads() {
        let log = EventLog::new();
        let log2 = log.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                log2.record(1, FaultEvent::RetransmitRequest { src: 0, dst: 1, attempt: 1 });
            });
            s.spawn(|| {
                log.record(0, FaultEvent::GroupRescaled { step: 2, live_dp: 1 });
            });
        });
        assert_eq!(log.snapshot().len(), 2);
        assert!(log.any(|e| matches!(e, FaultEvent::RetransmitRequest { attempt: 1, .. })));
        assert_eq!(
            log.count_matching(|e| matches!(e, FaultEvent::GroupRescaled { live_dp: 1, .. })),
            1
        );
    }

    #[test]
    fn log_is_generic_over_event_type() {
        #[derive(Clone, Debug, PartialEq)]
        enum Custom {
            Tick(u32),
        }
        let log: EventLog<Custom> = EventLog::new();
        log.record(3, Custom::Tick(7));
        assert_eq!(log.len(), 1);
        assert!(log.any(|e| matches!(e, Custom::Tick(7))));
        assert_eq!(log.snapshot()[0].rank, 3);
    }

    #[test]
    fn metric_series_distribution_queries() {
        let m = MetricSeries::new();
        assert!(m.mean().is_none() && m.percentile(50.0).is_none() && m.max().is_none());
        for v in [5.0, 1.0, 9.0, 3.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean().unwrap() - 4.5).abs() < 1e-12);
        assert_eq!(m.max().unwrap(), 9.0);
        assert_eq!(m.percentile(0.0).unwrap(), 1.0);
        assert_eq!(m.percentile(100.0).unwrap(), 9.0);
        // Nearest-rank median of [1,3,5,9] is 5; the histogram-backed
        // series answers within its documented relative-error bound.
        let med = m.percentile(50.0).unwrap();
        assert!(
            (med - 5.0).abs() <= 5.0 * aeris_obs::histogram::MAX_QUANTILE_REL_ERROR,
            "median {med}"
        );
        // Shared across clones.
        let m2 = m.clone();
        m2.record(2.0);
        assert_eq!(m.count(), 5);
    }
}
