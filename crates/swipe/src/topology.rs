//! The SWiPe rank grid: DP × PP × WP(A×B) × SP.
//!
//! One model instance occupies `PP × WP_A × WP_B × SP` ranks (the paper's
//! "nodes needed to run a single model instance is WP × PP", with SP ranks
//! inside each node); data parallelism replicates instances.

/// Topology extents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwipeTopology {
    /// Data-parallel replicas.
    pub dp: usize,
    /// Pipeline stages (= Swin layers + 2, §VII-A).
    pub pp: usize,
    /// Window-parallel grid rows (A).
    pub wp_a: usize,
    /// Window-parallel grid cols (B).
    pub wp_b: usize,
    /// Sequence-parallel (Ulysses) degree within a window group.
    pub sp: usize,
}

/// Coordinates of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCoords {
    pub dp: usize,
    pub stage: usize,
    pub wp_row: usize,
    pub wp_col: usize,
    pub sp: usize,
}

impl SwipeTopology {
    /// Validate and construct.
    pub fn new(dp: usize, pp: usize, wp_a: usize, wp_b: usize, sp: usize) -> Self {
        assert!(dp >= 1 && pp >= 1 && wp_a >= 1 && wp_b >= 1 && sp >= 1);
        SwipeTopology { dp, pp, wp_a, wp_b, sp }
    }

    /// Window-parallel degree WP = A×B.
    pub fn wp(&self) -> usize {
        self.wp_a * self.wp_b
    }

    /// Ranks per model instance (PP × WP × SP).
    pub fn model_ranks(&self) -> usize {
        self.pp * self.wp() * self.sp
    }

    /// Total world size.
    pub fn world_size(&self) -> usize {
        self.dp * self.model_ranks()
    }

    /// Flatten coordinates to a rank id. Layout: dp-major, then stage, then
    /// wp_row, wp_col, sp (sp fastest — "SP groups confined within a node").
    pub fn rank_of(&self, c: RankCoords) -> usize {
        debug_assert!(c.dp < self.dp && c.stage < self.pp);
        debug_assert!(c.wp_row < self.wp_a && c.wp_col < self.wp_b && c.sp < self.sp);
        (((c.dp * self.pp + c.stage) * self.wp_a + c.wp_row) * self.wp_b + c.wp_col) * self.sp
            + c.sp
    }

    /// Inverse of [`SwipeTopology::rank_of`].
    pub fn coords_of(&self, rank: usize) -> RankCoords {
        assert!(rank < self.world_size());
        let sp = rank % self.sp;
        let rest = rank / self.sp;
        let wp_col = rest % self.wp_b;
        let rest = rest / self.wp_b;
        let wp_row = rest % self.wp_a;
        let rest = rest / self.wp_a;
        let stage = rest % self.pp;
        let dp = rest / self.pp;
        RankCoords { dp, stage, wp_row, wp_col, sp }
    }

    /// The SP (Ulysses) group of a rank: same dp/stage/wp, all sp.
    pub fn sp_group(&self, c: RankCoords) -> Vec<usize> {
        (0..self.sp).map(|sp| self.rank_of(RankCoords { sp, ..c })).collect()
    }

    /// The gradient-reduction group for stage-local parameters: same stage,
    /// all dp × wp × sp (the paper: WP reduces message sizes but "overhead
    /// from gradient allreduce remains unchanged" — the reduction spans all
    /// replicas of the stage's weights).
    pub fn grad_group(&self, c: RankCoords) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.dp * self.wp() * self.sp);
        for dp in 0..self.dp {
            for wp_row in 0..self.wp_a {
                for wp_col in 0..self.wp_b {
                    for sp in 0..self.sp {
                        out.push(self.rank_of(RankCoords { dp, wp_row, wp_col, sp, ..c }));
                    }
                }
            }
        }
        out
    }

    /// All ranks (for globally replicated parameters, e.g. the shared time
    /// conditioner).
    pub fn all_ranks(&self) -> Vec<usize> {
        (0..self.world_size()).collect()
    }

    /// The within-replica ZeRO-1 group for stage-local parameters: same dp,
    /// same stage, all wp × sp. Optimizer moments shard over this group and
    /// are therefore *replicated across* data-parallel replicas (ORBIT-style
    /// hybrid sharding) — its size never changes when replicas retire or
    /// rejoin, so moment ownership survives membership churn, and any live
    /// replica can re-shard a rejoining one by position alone.
    pub fn replica_grad_group(&self, c: RankCoords) -> Vec<usize> {
        self.stage_ranks(c.dp, c.stage)
    }

    /// The within-replica ZeRO-1 group for the shared time-conditioner
    /// parameters: all interior (Swin-block) stages of one dp replica, sorted
    /// (the shared params are absent from the edge stages).
    pub fn replica_shared_group(&self, dp: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for stage in 1..self.pp - 1 {
            out.extend(self.stage_ranks(dp, stage));
        }
        out.sort_unstable();
        out
    }

    /// All ranks of the interior (Swin-block) stages, across dp/wp/sp — the
    /// reduction group for the shared time-conditioner parameters, which are
    /// replicated in every block stage but absent from the edge stages.
    pub fn block_stage_ranks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for dp in 0..self.dp {
            for stage in 1..self.pp - 1 {
                out.extend(self.stage_ranks(dp, stage));
            }
        }
        out.sort_unstable();
        out
    }

    /// The rank in the next pipeline stage with the same (dp, wp, sp).
    pub fn next_stage(&self, c: RankCoords) -> Option<RankCoords> {
        (c.stage + 1 < self.pp).then(|| RankCoords { stage: c.stage + 1, ..c })
    }

    /// The rank in the previous pipeline stage.
    pub fn prev_stage(&self, c: RankCoords) -> Option<RankCoords> {
        (c.stage > 0).then(|| RankCoords { stage: c.stage - 1, ..c })
    }

    /// The subset of `ranks` whose data-parallel replica is still live.
    /// Graceful degradation: a crashed rank takes its whole replica down, so
    /// every collective group shrinks to the ranks of surviving replicas
    /// (order is preserved — reductions stay deterministic).
    pub fn filter_live(&self, ranks: &[usize], dead_dps: &[usize]) -> Vec<usize> {
        ranks.iter().copied().filter(|&r| !dead_dps.contains(&self.coords_of(r).dp)).collect()
    }

    /// The data-parallel replicas containing any of `dead_ranks`, sorted.
    pub fn dead_dps(&self, dead_ranks: &[usize]) -> Vec<usize> {
        let mut dps: Vec<usize> = dead_ranks.iter().map(|&r| self.coords_of(r).dp).collect();
        dps.sort_unstable();
        dps.dedup();
        dps
    }

    /// All ranks of one stage within a dp replica (targets of a relayout).
    pub fn stage_ranks(&self, dp: usize, stage: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for wp_row in 0..self.wp_a {
            for wp_col in 0..self.wp_b {
                for sp in 0..self.sp {
                    out.push(self.rank_of(RankCoords { dp, stage, wp_row, wp_col, sp }));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coords_roundtrip() {
        let t = SwipeTopology::new(2, 3, 2, 2, 2);
        assert_eq!(t.world_size(), 48);
        for r in 0..t.world_size() {
            assert_eq!(t.rank_of(t.coords_of(r)), r);
        }
    }

    #[test]
    fn sp_group_is_contiguous() {
        let t = SwipeTopology::new(1, 2, 2, 1, 4);
        let c = t.coords_of(9);
        let g = t.sp_group(c);
        assert_eq!(g.len(), 4);
        for w in g.windows(2) {
            assert_eq!(w[1], w[0] + 1, "SP ranks must be adjacent (intra-node)");
        }
        assert!(g.contains(&9));
    }

    #[test]
    fn grad_group_spans_dp_wp_sp_same_stage() {
        let t = SwipeTopology::new(2, 3, 2, 1, 2);
        let c = t.coords_of(t.rank_of(RankCoords { dp: 0, stage: 1, wp_row: 0, wp_col: 0, sp: 0 }));
        let g = t.grad_group(c);
        assert_eq!(g.len(), 8); // dp(2) x wp(2x1) x sp(2)
        for &r in &g {
            assert_eq!(t.coords_of(r).stage, 1);
        }
    }

    #[test]
    fn stage_neighbors() {
        let t = SwipeTopology::new(1, 3, 1, 1, 1);
        let c0 = t.coords_of(0);
        assert_eq!(c0.stage, 0);
        assert!(t.prev_stage(c0).is_none());
        let c1 = t.next_stage(c0).unwrap();
        assert_eq!(c1.stage, 1);
        let c2 = t.next_stage(c1).unwrap();
        assert!(t.next_stage(c2).is_none());
    }

    #[test]
    fn model_ranks_matches_paper_formula() {
        // Table II: nodes per instance = WP × PP (SP inside the node).
        let t = SwipeTopology::new(1, 12, 2, 2, 12);
        assert_eq!(t.model_ranks() / t.sp, 4 * 12);
    }

    #[test]
    fn live_filtering_preserves_order_and_drops_whole_replicas() {
        let t = SwipeTopology::new(3, 2, 1, 1, 2);
        let c = t.coords_of(0);
        let g = t.grad_group(c);
        // Kill one rank of replica 1: its entire replica must drop out.
        let dead = t.dead_dps(&[t.rank_of(RankCoords { dp: 1, stage: 0, wp_row: 0, wp_col: 0, sp: 1 })]);
        assert_eq!(dead, vec![1]);
        let live = t.filter_live(&g, &dead);
        assert_eq!(live.len(), g.len() - g.len() / 3);
        for &r in &live {
            assert_ne!(t.coords_of(r).dp, 1);
        }
        // Order preserved.
        let mut sorted = live.clone();
        sorted.sort_unstable();
        let mut orig: Vec<usize> = g.iter().copied().filter(|r| live.contains(r)).collect();
        assert_eq!(live, orig);
        orig.sort_unstable();
        assert_eq!(orig, sorted);
    }

    #[test]
    fn replica_groups_are_dp_local_and_positionally_stable() {
        let t = SwipeTopology::new(3, 4, 2, 1, 2);
        for dp in 0..3 {
            let c = RankCoords { dp, stage: 1, wp_row: 0, wp_col: 0, sp: 0 };
            let g = t.replica_grad_group(t.coords_of(t.rank_of(c)));
            assert_eq!(g.len(), t.wp() * t.sp);
            for (i, &r) in g.iter().enumerate() {
                let rc = t.coords_of(r);
                assert_eq!((rc.dp, rc.stage), (dp, 1));
                // Same position in every replica's group maps to the same
                // model-parallel coordinates — the re-shard correspondence.
                let r0 = t.replica_grad_group(RankCoords { dp: 0, ..c })[i];
                let c0 = t.coords_of(r0);
                assert_eq!((c0.stage, c0.wp_row, c0.wp_col, c0.sp), (rc.stage, rc.wp_row, rc.wp_col, rc.sp));
            }
            let s = t.replica_shared_group(dp);
            assert_eq!(s.len(), (t.pp - 2) * t.wp() * t.sp);
            for &r in &s {
                let rc = t.coords_of(r);
                assert_eq!(rc.dp, dp);
                assert!(rc.stage >= 1 && rc.stage < t.pp - 1);
            }
        }
    }

    #[test]
    fn stage_ranks_cover_wp_sp() {
        let t = SwipeTopology::new(2, 2, 2, 2, 2);
        let ranks = t.stage_ranks(1, 0);
        assert_eq!(ranks.len(), 8);
        for &r in &ranks {
            let c = t.coords_of(r);
            assert_eq!(c.dp, 1);
            assert_eq!(c.stage, 0);
        }
    }
}
