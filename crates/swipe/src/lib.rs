//! SWiPe: Sequence-Window-Pipeline parallelism (§V-A of the paper),
//! reproduced as a thread-rank distributed runtime.
//!
//! Ranks are OS threads; collectives run over shared mailboxes with
//! byte-accurate traffic accounting, so the paper's communication claims
//! (message size `M = b·s·h/SP/WP`, unchanged gradient-allreduce volume,
//! 1/WP activation memory and I/O) are *measured*, not asserted.
//!
//! Components:
//! - [`comm`]: world/communicator with send/recv, all-to-all, allreduce,
//!   allgather, broadcast, barrier — all with per-class byte counters,
//! - [`topology`]: the WP(A×B) × SP × PP × DP rank grid and its groups,
//! - [`layout`]: activation layouts (round-robin window ownership + Ulysses
//!   token shards) and the relayout routing between pipeline stages,
//! - [`schedule`]: the 1F1B pipeline schedule,
//! - [`stage`]: per-stage model shards (embedding / Swin block / head) with
//!   segmented forward-backward across communication boundaries,
//! - [`trainer`]: the end-to-end distributed training step (shared-seed
//!   diffusion times, ZeRO-1 sharded optimizer, gradient reduction over
//!   DP×WP×SP), validated for equivalence against single-rank training,
//! - [`fault`] / [`events`]: deterministic fault injection (delays, drops,
//!   crashes) and the structured fault log; together with comm-level
//!   timeouts/retry and trainer-level checkpoint-restart + DP-degradation
//!   they make the runtime survive or cleanly report injected failures.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod comm;
pub mod data;
pub mod events;
pub mod fault;
pub mod layout;
pub mod recovery;
pub mod schedule;
pub mod stage;
pub mod topology;
pub mod trainer;

pub use comm::{CommClass, CommConfig, CommError, Communicator, TrafficReport, World};
pub use events::{EventLog, EventRecord, FaultEvent, MetricSeries};
pub use fault::{FaultPlan, MessageFault};
pub use layout::ActLayout;
pub use recovery::{supervise, RecoveryConfig, RecoveryError, RecoveryOutcome};
pub use schedule::{one_f_one_b, try_one_f_one_b, Action, ScheduleError};
pub use stage::StageError;
pub use topology::{RankCoords, SwipeTopology};
pub use trainer::{
    CheckpointConfig, CheckpointError, DistributedTrainer, SwipeConfig, SwipeError, TrainFailure,
    TrainReport,
};
