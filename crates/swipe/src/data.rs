//! Distributed data loading (§V-A "Data loading").
//!
//! Under window parallelism only the first and last pipeline stages touch
//! data, and each rank loads exactly the token rows it owns. The
//! [`WindowSource`] trait exposes row-sliced access to the three fields a
//! training sample needs; [`StoreBackedSource`] reads from chunked stores
//! (the HDF5-slicing analog) so per-rank I/O bytes can be measured, and
//! [`InMemorySource`] serves tests cheaply.

use aeris_core::TrainSample;
use aeris_earthsim::store::ChunkedStore;
use aeris_tensor::Tensor;

/// Which field of a training sample to read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Field {
    /// Previous state x_{i−1} (standardized).
    Prev,
    /// Residual target x₀ (standardized).
    Residual,
    /// Forcings.
    Forcing,
}

/// Row-sliced sample access.
pub trait WindowSource: Sync {
    /// Prognostic channels.
    fn channels(&self) -> usize;
    /// Forcing channels.
    fn forcing_channels(&self) -> usize;
    /// Number of samples.
    fn len(&self) -> usize;
    /// True if no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Rows `tokens` of `field` for sample `ix` → `[tokens.len(), ch]`.
    fn load_rows(&self, ix: usize, field: Field, tokens: &[usize]) -> Tensor;
}

/// In-memory samples.
pub struct InMemorySource {
    pub samples: Vec<TrainSample>,
}

impl WindowSource for InMemorySource {
    fn channels(&self) -> usize {
        self.samples[0].residual.shape()[1]
    }

    fn forcing_channels(&self) -> usize {
        self.samples[0].forcings.shape()[1]
    }

    fn len(&self) -> usize {
        self.samples.len()
    }

    fn load_rows(&self, ix: usize, field: Field, tokens: &[usize]) -> Tensor {
        let src = match field {
            Field::Prev => &self.samples[ix].x_prev,
            Field::Residual => &self.samples[ix].residual,
            Field::Forcing => &self.samples[ix].forcings,
        };
        gather(src, tokens)
    }
}

/// Chunked-store-backed samples: three stores indexed by sample (time) id.
/// Reads go through window chunks so the byte counters reflect real sliced
/// I/O.
pub struct StoreBackedSource {
    pub prev: ChunkedStore,
    pub residual: ChunkedStore,
    pub forcing: ChunkedStore,
}

impl StoreBackedSource {
    /// Build the stores from in-memory samples (in-memory backend; the
    /// counting semantics are identical to the file backend).
    pub fn from_samples(samples: &[TrainSample], wh: usize, ww: usize, nlat: usize, nlon: usize) -> Self {
        use aeris_earthsim::store::StoreLayout;
        let c = samples[0].residual.shape()[1];
        let f = samples[0].forcings.shape()[1];
        let mut prev = ChunkedStore::in_memory(StoreLayout::new(nlat, nlon, c, wh, ww));
        let mut residual = ChunkedStore::in_memory(StoreLayout::new(nlat, nlon, c, wh, ww));
        let mut forcing = ChunkedStore::in_memory(StoreLayout::new(nlat, nlon, f, wh, ww));
        for s in samples {
            prev.append_snapshot(&s.x_prev).unwrap();
            residual.append_snapshot(&s.residual).unwrap();
            forcing.append_snapshot(&s.forcings).unwrap();
        }
        StoreBackedSource { prev, residual, forcing }
    }

    /// Total bytes read across the three stores.
    pub fn bytes_read(&self) -> u64 {
        self.prev.bytes_read() + self.residual.bytes_read() + self.forcing.bytes_read()
    }

    /// Reset I/O counters.
    pub fn reset_bytes_read(&self) {
        self.prev.reset_bytes_read();
        self.residual.reset_bytes_read();
        self.forcing.reset_bytes_read();
    }
}

impl WindowSource for StoreBackedSource {
    fn channels(&self) -> usize {
        self.residual.layout().channels
    }

    fn forcing_channels(&self) -> usize {
        self.forcing.layout().channels
    }

    fn len(&self) -> usize {
        self.residual.n_times()
    }

    fn load_rows(&self, ix: usize, field: Field, tokens: &[usize]) -> Tensor {
        let store = match field {
            Field::Prev => &self.prev,
            Field::Residual => &self.residual,
            Field::Forcing => &self.forcing,
        };
        let l = store.layout();
        // Identify the set of store chunks covering the tokens; read each
        // exactly once.
        let mut chunk_cache: Vec<((usize, usize), Tensor)> = Vec::new();
        let mut out = Tensor::zeros(&[tokens.len(), l.channels]);
        for (row, &tok) in tokens.iter().enumerate() {
            let (gr, gc) = (tok / l.nlon, tok % l.nlon);
            let key = (gr / l.wh, gc / l.ww);
            let chunk = match chunk_cache.iter().find(|(k, _)| *k == key) {
                Some((_, t)) => t.clone(),
                None => {
                    let t = store.read_window(ix, key.0, key.1).unwrap();
                    chunk_cache.push((key, t.clone()));
                    t
                }
            };
            let local = (gr % l.wh) * l.ww + (gc % l.ww);
            out.row_mut(row).copy_from_slice(chunk.row(local));
        }
        out
    }
}

/// Gather rows of a `[tokens, C]` tensor by index.
pub fn gather(src: &Tensor, rows: &[usize]) -> Tensor {
    let c = src.shape()[1];
    let mut out = Tensor::zeros(&[rows.len(), c]);
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(src.row(r));
    }
    out
}

/// Scatter-add rows into `dst[rows[i]] += src[i]`.
pub fn scatter_add(dst: &mut Tensor, rows: &[usize], src: &Tensor) {
    assert_eq!(src.shape()[0], rows.len());
    let c = dst.shape()[1];
    assert_eq!(src.shape()[1], c);
    for (i, &r) in rows.iter().enumerate() {
        for (d, &s) in dst.row_mut(r).iter_mut().zip(src.row(i)) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn samples(n: usize) -> Vec<TrainSample> {
        let mut rng = Rng::seed_from(1);
        (0..n)
            .map(|_| TrainSample {
                x_prev: Tensor::randn(&[8 * 16, 5], &mut rng),
                residual: Tensor::randn(&[8 * 16, 5], &mut rng),
                forcings: Tensor::randn(&[8 * 16, 3], &mut rng),
            })
            .collect()
    }

    #[test]
    fn in_memory_rows_match_direct_indexing() {
        let s = samples(2);
        let src = InMemorySource { samples: s.clone() };
        let tokens = vec![0, 17, 95, 3];
        let rows = src.load_rows(1, Field::Prev, &tokens);
        for (i, &t) in tokens.iter().enumerate() {
            assert_eq!(rows.row(i), s[1].x_prev.row(t));
        }
    }

    #[test]
    fn store_backed_agrees_with_in_memory() {
        let s = samples(3);
        let mem = InMemorySource { samples: s.clone() };
        let store = StoreBackedSource::from_samples(&s, 4, 4, 8, 16);
        let tokens: Vec<usize> = vec![5, 64, 120, 33, 34];
        for field in [Field::Prev, Field::Residual, Field::Forcing] {
            let a = mem.load_rows(2, field, &tokens);
            let b = store.load_rows(2, field, &tokens);
            assert!(a.max_abs_diff(&b) < 1e-7);
        }
    }

    #[test]
    fn store_backed_reads_only_touched_chunks() {
        let s = samples(1);
        let store = StoreBackedSource::from_samples(&s, 4, 4, 8, 16);
        store.reset_bytes_read();
        // Tokens within one 4x4 window: exactly one chunk per store read.
        let tokens: Vec<usize> = vec![0, 1, 16, 17];
        let _ = store.load_rows(0, Field::Prev, &tokens);
        assert_eq!(store.prev.bytes_read(), store.prev.layout().chunk_bytes() as u64);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let mut rng = Rng::seed_from(2);
        let src = Tensor::randn(&[10, 3], &mut rng);
        let rows = vec![2, 7, 4];
        let g = gather(&src, &rows);
        let mut acc = Tensor::zeros(&[10, 3]);
        scatter_add(&mut acc, &rows, &g);
        for &r in &rows {
            assert_eq!(acc.row(r), src.row(r));
        }
        assert_eq!(acc.row(0), &[0.0, 0.0, 0.0]);
    }
}
