//! The crash-recovery supervisor: bounded restart attempts around
//! [`DistributedTrainer::train`].
//!
//! A SWiPe run can die in two recoverable ways — a hard communication
//! failure (mid-step crash, timeout) or the loss of every data-parallel
//! replica. The supervisor turns either into a resumable incident:
//!
//! 1. classify the failure ([`SwipeError::Comm`] / `AllReplicasLost` are
//!    recoverable; stage, schedule, and checkpoint-validation errors are
//!    configuration bugs and surface as [`RecoveryError::Unrecoverable`]);
//! 2. select the latest coordinated checkpoint in the configured directory
//!    (none yet → restart from scratch) and point `resume_from` at it;
//! 3. strip the faults that already fired from the plan
//!    ([`FaultPlan::without_fired`]) — a resumed run replays the same step
//!    numbers, and an already-executed crash must not re-fire;
//! 4. relaunch, up to [`RecoveryConfig::max_restarts`] times.
//!
//! Because checkpoint restore is world-size independent along the
//! data-parallel axis, step 2 works even when the relaunch uses a different
//! DP width than the world that wrote the checkpoint.
//!
//! Every attempt is traced as a [`SpanCategory::Recovery`] span and the
//! concatenated event log (each failed attempt's events, a
//! [`FaultEvent::RunResumed`] marker per restart, then the final attempt's
//! events) is returned in [`RecoveryOutcome::events`], so the full
//! retire → restore → rejoin sequence of an incident is replayable.
//!
//! [`FaultPlan::without_fired`]: crate::fault::FaultPlan::without_fired

use crate::data::WindowSource;
use crate::events::{EventRecord, FaultEvent};
use crate::trainer::{
    checkpoint_step, CheckpointConfig, DistributedTrainer, SwipeConfig, SwipeError, TrainFailure,
    TrainReport,
};
use aeris_core::AerisModel;
use aeris_nn::checkpoint::latest_checkpoint;
use aeris_obs::SpanCategory;
use aeris_tensor::Tensor;

/// Actor id the supervisor stamps onto its own events and spans (it runs
/// outside any rank thread).
pub const SUPERVISOR_ACTOR: usize = usize::MAX;

/// Supervisor policy.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Restart attempts allowed before giving up (0 = fail on first crash).
    pub max_restarts: usize,
    /// Coordinated checkpointing installed into every attempt; the
    /// supervisor restores from the latest `step_*.ckpt` in this directory.
    /// Overrides whatever `SwipeConfig::checkpoint` the caller set.
    pub checkpoint: CheckpointConfig,
}

/// Why supervised training gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// The failure is not a crash: restarting cannot fix a stage, schedule,
    /// or checkpoint-validation error.
    Unrecoverable { failure: TrainFailure },
    /// Every allowed restart was consumed; `last` is the final failure.
    RestartsExhausted { attempts: usize, last: TrainFailure },
    /// The checkpoint directory could not be scanned or the selected
    /// checkpoint's metadata could not be read.
    Io(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Unrecoverable { failure } => {
                write!(f, "unrecoverable failure: {failure}")
            }
            RecoveryError::RestartsExhausted { attempts, last } => {
                write!(f, "restart budget exhausted after {attempts} restarts: {last}")
            }
            RecoveryError::Io(msg) => write!(f, "checkpoint selection failure: {msg}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What supervised training reports back.
pub struct RecoveryOutcome {
    /// The successful attempt's report.
    pub report: TrainReport,
    /// Restart attempts consumed (0 = the first launch succeeded).
    pub restarts: usize,
    /// Steps of work re-executed across all failed attempts: per failure,
    /// the furthest step the attempt is known (from its events) to have
    /// reached, minus the step the next attempt resumed from. A lower bound
    /// when the attempt died without logging its last step.
    pub steps_lost: usize,
    /// Every attempt's fault log, in order, with a
    /// [`FaultEvent::RunResumed`] marker at each restart.
    pub events: Vec<EventRecord>,
}

/// Run training under the supervisor, restarting from the latest coordinated
/// checkpoint after each recoverable failure. Arguments mirror
/// [`DistributedTrainer::train`]; `rcfg.checkpoint` replaces
/// `cfg.checkpoint` so every attempt leaves restore points behind.
///
/// Determinism: a successful supervised run's losses and final parameters
/// are bitwise identical to the uninterrupted run from the last resume step
/// on (checkpoint restore is exact, and noise/diffusion times are stateless
/// functions of `(seed, step)`).
pub fn supervise(
    reference: &AerisModel,
    cfg: &SwipeConfig,
    source: &(dyn WindowSource + Sync),
    schedule: &[Vec<Vec<usize>>],
    weights: &Tensor,
    rcfg: &RecoveryConfig,
) -> Result<RecoveryOutcome, RecoveryError> {
    let mut attempt_cfg = cfg.clone();
    attempt_cfg.checkpoint = Some(rcfg.checkpoint.clone());
    let mut restarts = 0usize;
    let mut steps_lost = 0usize;
    let mut events: Vec<EventRecord> = Vec::new();
    loop {
        let result = {
            let _attempt = cfg
                .tracer
                .span(SpanCategory::Recovery, SUPERVISOR_ACTOR)
                .label("attempt")
                .step(restarts as u64);
            DistributedTrainer::train(reference, &attempt_cfg, source, schedule, weights)
        };
        match result {
            Ok(report) => {
                events.extend(report.events.iter().cloned());
                return Ok(RecoveryOutcome { report, restarts, steps_lost, events });
            }
            Err(failure) => {
                if !recoverable(&failure.error) {
                    return Err(RecoveryError::Unrecoverable { failure });
                }
                if restarts >= rcfg.max_restarts {
                    return Err(RecoveryError::RestartsExhausted { attempts: restarts, last: failure });
                }
                restarts += 1;
                let ckpt = latest_checkpoint(&rcfg.checkpoint.dir)
                    .map_err(|e| RecoveryError::Io(e.to_string()))?;
                let resume_step = match &ckpt {
                    Some(path) => {
                        checkpoint_step(path).map_err(|e| RecoveryError::Io(e.to_string()))?
                    }
                    None => 0,
                };
                let lost = reached_step(&failure).saturating_sub(resume_step);
                steps_lost += lost;
                // Ungated counters: incident telemetry must reach the
                // registry (and the status dashboard) even when span
                // tracing is off in production.
                cfg.tracer.incr_always("swipe_restarts", 1);
                cfg.tracer.incr_always("swipe_steps_lost", lost as u64);
                // The resumed run replays the same step numbers: crashes that
                // already fired must not fire again.
                attempt_cfg.faults =
                    attempt_cfg.faults.as_ref().map(|p| p.without_fired(&failure.events));
                attempt_cfg.resume_from = ckpt;
                events.extend(failure.events);
                events.push(EventRecord {
                    rank: SUPERVISOR_ACTOR,
                    event: FaultEvent::RunResumed { attempt: restarts, from_step: resume_step },
                });
            }
        }
    }
}

/// Whether restarting can ride out this failure.
fn recoverable(e: &SwipeError) -> bool {
    matches!(e, SwipeError::Comm(_) | SwipeError::AllReplicasLost { .. })
}

/// The furthest step a failed attempt is known to have reached, from its
/// typed error and event log.
fn reached_step(failure: &TrainFailure) -> usize {
    let mut reached = match failure.error {
        SwipeError::AllReplicasLost { step } => step,
        _ => 0,
    };
    for rec in &failure.events {
        let s = match &rec.event {
            FaultEvent::RankCrashed { step, .. } => *step,
            FaultEvent::ReplicaRetired { step, .. } => *step,
            FaultEvent::GroupRescaled { step, .. } => *step,
            FaultEvent::RankRejoined { step, .. } => *step,
            FaultEvent::ReplicaRejoined { step, .. } => *step,
            FaultEvent::CheckpointSaved { next_step, .. } => *next_step,
            _ => 0,
        };
        reached = reached.max(s);
    }
    reached
}
