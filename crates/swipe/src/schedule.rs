//! The 1F1B pipeline schedule (§IV-B / §VII-C).
//!
//! Per stage, the classic one-forward-one-backward ordering: `pp − stage − 1`
//! warm-up forwards, a steady 1F1B phase, then the cool-down backwards. The
//! bubble fraction this induces, `(pp − 1)/(gas + pp − 1)`, is what the
//! analytical performance model charges for pipelining (and what the paper's
//! strong-scaling losses are "mainly from").

/// One scheduled action on a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward microbatch `i`.
    Forward(usize),
    /// Backward microbatch `i`.
    Backward(usize),
}

/// Why a schedule could not be constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// `stage` is not a valid stage index for `pp` pipeline stages.
    StageOutOfRange { stage: usize, pp: usize },
    /// The schedule needs at least one microbatch.
    NoMicrobatches,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::StageOutOfRange { stage, pp } => {
                write!(f, "stage {stage} out of range for {pp} pipeline stages")
            }
            ScheduleError::NoMicrobatches => write!(f, "schedule requires gas >= 1"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The 1F1B action list for `stage` of `pp` stages with `gas` microbatches.
/// Panics on invalid arguments; [`try_one_f_one_b`] is the non-panicking
/// variant the distributed trainer uses.
pub fn one_f_one_b(stage: usize, pp: usize, gas: usize) -> Vec<Action> {
    try_one_f_one_b(stage, pp, gas).unwrap()
}

/// The 1F1B action list, with invalid configurations reported as typed
/// errors instead of panics.
pub fn try_one_f_one_b(stage: usize, pp: usize, gas: usize) -> Result<Vec<Action>, ScheduleError> {
    if stage >= pp {
        return Err(ScheduleError::StageOutOfRange { stage, pp });
    }
    if gas == 0 {
        return Err(ScheduleError::NoMicrobatches);
    }
    let warmup = (pp - stage - 1).min(gas);
    let mut actions = Vec::with_capacity(2 * gas);
    let mut next_fwd = 0;
    let mut next_bwd = 0;
    for _ in 0..warmup {
        actions.push(Action::Forward(next_fwd));
        next_fwd += 1;
    }
    // Steady state: 1F1B.
    while next_fwd < gas {
        actions.push(Action::Forward(next_fwd));
        next_fwd += 1;
        actions.push(Action::Backward(next_bwd));
        next_bwd += 1;
    }
    // Cooldown.
    while next_bwd < gas {
        actions.push(Action::Backward(next_bwd));
        next_bwd += 1;
    }
    Ok(actions)
}

/// Analytical pipeline bubble fraction for 1F1B.
pub fn bubble_fraction(pp: usize, gas: usize) -> f64 {
    (pp as f64 - 1.0) / (gas as f64 + pp as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_microbatch_forward_then_backward_once() {
        for stage in 0..4 {
            let acts = one_f_one_b(stage, 4, 6);
            let mut fwd_seen = [false; 6];
            let mut bwd_seen = [false; 6];
            for a in &acts {
                match *a {
                    Action::Forward(i) => {
                        assert!(!fwd_seen[i]);
                        fwd_seen[i] = true;
                    }
                    Action::Backward(i) => {
                        assert!(fwd_seen[i], "backward before forward");
                        assert!(!bwd_seen[i]);
                        bwd_seen[i] = true;
                    }
                }
            }
            assert!(fwd_seen.iter().all(|&x| x));
            assert!(bwd_seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn in_flight_microbatches_bounded_by_warmup() {
        // 1F1B's whole point: activation memory holds at most
        // pp − stage in-flight microbatches, not gas.
        let (pp, gas) = (4, 16);
        for stage in 0..pp {
            let acts = one_f_one_b(stage, pp, gas);
            let mut in_flight = 0usize;
            let mut max_in_flight = 0;
            for a in &acts {
                match a {
                    Action::Forward(_) => in_flight += 1,
                    Action::Backward(_) => in_flight -= 1,
                }
                max_in_flight = max_in_flight.max(in_flight);
            }
            assert!(
                max_in_flight <= pp - stage,
                "stage {stage}: {max_in_flight} in flight"
            );
        }
    }

    #[test]
    fn last_stage_strictly_alternates() {
        let acts = one_f_one_b(3, 4, 5);
        assert_eq!(acts[0], Action::Forward(0));
        assert_eq!(acts[1], Action::Backward(0));
        assert_eq!(acts[2], Action::Forward(1));
    }

    #[test]
    fn small_gas_degenerates_gracefully() {
        let acts = one_f_one_b(0, 4, 1);
        assert_eq!(acts, vec![Action::Forward(0), Action::Backward(0)]);
    }

    #[test]
    fn invalid_configurations_are_typed_errors() {
        assert_eq!(
            try_one_f_one_b(4, 4, 2),
            Err(ScheduleError::StageOutOfRange { stage: 4, pp: 4 })
        );
        assert_eq!(try_one_f_one_b(0, 4, 0), Err(ScheduleError::NoMicrobatches));
        assert!(!format!("{}", ScheduleError::NoMicrobatches).is_empty());
    }

    #[test]
    fn bubble_fraction_limits() {
        assert!((bubble_fraction(1, 8) - 0.0).abs() < 1e-12);
        assert!((bubble_fraction(4, 1) - 0.75).abs() < 1e-12);
        // Large GAS amortizes the bubble.
        assert!(bubble_fraction(20, 140) < 0.12);
    }
}
