//! Activation layouts and stage-to-stage relayout routing.
//!
//! Within a stage, the global `[H×W, dim]` token matrix is partitioned
//! window-by-window: windows are distributed round-robin over the WP grid
//! (paper Fig. 2a middle) and each window's tokens are split contiguously
//! into SP chunks (Ulysses). Shifted blocks use the same machinery on the
//! half-window-rolled image, so a layout is fully described by
//! `(grid, shifted, wp_a, wp_b, sp)`.
//!
//! Relayout between consecutive stages (including the unshifted↔shifted
//! transition) is pure index math computed identically on the send and
//! receive sides — no metadata travels with the tensors, matching how the
//! paper's round-robin distribution makes the shift a fixed send/recv
//! pattern of 1/SP-window messages.

use aeris_nn::window::{invert_perm, WindowGrid};

/// A distributed activation layout.
#[derive(Clone, Debug)]
pub struct ActLayout {
    pub grid: WindowGrid,
    pub shifted: bool,
    pub wp_a: usize,
    pub wp_b: usize,
    pub sp: usize,
    /// inverse roll permutation (identity when unshifted).
    inv_roll: Vec<usize>,
    /// roll permutation (identity when unshifted).
    roll: Vec<usize>,
}

/// One relayout message: rows `src_rows` of the source rank's local matrix
/// land at rows `dst_rows` of the destination rank's local matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMsg {
    pub dst: (usize, usize, usize),
    pub src_rows: Vec<usize>,
    pub dst_rows: Vec<usize>,
}

impl ActLayout {
    /// Construct; window counts must divide evenly over the WP grid and the
    /// window length over SP.
    pub fn new(grid: WindowGrid, shifted: bool, wp_a: usize, wp_b: usize, sp: usize) -> Self {
        assert!(grid.rows().is_multiple_of(wp_a), "window rows must divide over WP rows");
        assert!(grid.cols().is_multiple_of(wp_b), "window cols must divide over WP cols");
        assert!(grid.window_len().is_multiple_of(sp), "window length must divide over SP");
        let (roll, inv_roll) = if shifted {
            let (sh, sw) = grid.half_shift();
            let r = grid.roll_perm(sh, sw);
            let inv = invert_perm(&r);
            (r, inv)
        } else {
            let id: Vec<usize> = (0..grid.tokens()).collect();
            (id.clone(), id)
        };
        ActLayout { grid, shifted, wp_a, wp_b, sp, inv_roll, roll }
    }

    /// Windows owned by WP rank `(ra, rb)`, in deterministic order.
    pub fn windows_of(&self, ra: usize, rb: usize) -> Vec<(usize, usize)> {
        self.grid.windows_of_owner(ra, rb, self.wp_a, self.wp_b)
    }

    /// Windows per WP rank.
    pub fn windows_per_rank(&self) -> usize {
        self.grid.count() / (self.wp_a * self.wp_b)
    }

    /// Token rows held by one (wp, sp) rank.
    pub fn rows_per_rank(&self) -> usize {
        self.windows_per_rank() * self.grid.window_len() / self.sp
    }

    /// Rows of one window chunk.
    pub fn chunk_rows(&self) -> usize {
        self.grid.window_len() / self.sp
    }

    /// Global (image) token ids held by rank `(ra, rb, sp)`, in local row
    /// order: owned windows in order, each contributing its sp-th contiguous
    /// chunk of window-major tokens.
    pub fn tokens_of(&self, ra: usize, rb: usize, sp: usize) -> Vec<usize> {
        let chunk = self.chunk_rows();
        let mut out = Vec::with_capacity(self.rows_per_rank());
        for (wr, wc) in self.windows_of(ra, rb) {
            let toks = self.grid.window_token_indices(wr, wc);
            for &p in &toks[sp * chunk..(sp + 1) * chunk] {
                out.push(self.roll[p]);
            }
        }
        out
    }

    /// Owner `(ra, rb, sp)` and local row of a global token id.
    pub fn owner_of(&self, token: usize) -> (usize, usize, usize, usize) {
        // Position of this token's content in the (rolled) partition space.
        let p = self.inv_roll[token];
        let (gr, gc) = (p / self.grid.w, p % self.grid.w);
        let (wr, wc) = (gr / self.grid.wh, gc / self.grid.ww);
        let (ra, rb) = self.grid.round_robin_owner(wr, wc, self.wp_a, self.wp_b);
        let j = (gr % self.grid.wh) * self.grid.ww + (gc % self.grid.ww);
        let chunk = self.chunk_rows();
        let sp = j / chunk;
        let row_in_chunk = j % chunk;
        let w_ix = self
            .windows_of(ra, rb)
            .iter()
            .position(|&w| w == (wr, wc))
            .expect("owned window");
        (ra, rb, sp, w_ix * chunk + row_in_chunk)
    }

    /// Routing plan for relayout from `self` to `dst` for the given source
    /// rank: one message per destination rank that receives any rows.
    pub fn routing_to(&self, dst: &ActLayout, ra: usize, rb: usize, sp: usize) -> Vec<RouteMsg> {
        assert_eq!(self.grid, dst.grid, "layouts must share the grid");
        let tokens = self.tokens_of(ra, rb, sp);
        let mut msgs: Vec<RouteMsg> = Vec::new();
        for (src_row, &tok) in tokens.iter().enumerate() {
            let (da, db, dsp, drow) = dst.owner_of(tok);
            let key = (da, db, dsp);
            match msgs.iter_mut().find(|m| m.dst == key) {
                Some(m) => {
                    m.src_rows.push(src_row);
                    m.dst_rows.push(drow);
                }
                None => msgs.push(RouteMsg { dst: key, src_rows: vec![src_row], dst_rows: vec![drow] }),
            }
        }
        msgs
    }

    /// All messages a destination rank expects under a relayout, grouped per
    /// source rank (in deterministic source-rank order).
    pub fn routing_from(
        src: &ActLayout,
        dst: &ActLayout,
        da: usize,
        db: usize,
        dsp: usize,
    ) -> Vec<((usize, usize, usize), RouteMsg)> {
        let mut out = Vec::new();
        for ra in 0..src.wp_a {
            for rb in 0..src.wp_b {
                for sp in 0..src.sp {
                    for m in src.routing_to(dst, ra, rb, sp) {
                        if m.dst == (da, db, dsp) {
                            out.push(((ra, rb, sp), m));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> WindowGrid {
        WindowGrid::new(8, 16, 4, 4) // 2x4 windows of 16 tokens
    }

    #[test]
    fn tokens_partition_exactly_once() {
        for shifted in [false, true] {
            let l = ActLayout::new(grid(), shifted, 2, 2, 2);
            let mut seen = [false; 128];
            for ra in 0..2 {
                for rb in 0..2 {
                    for sp in 0..2 {
                        for &t in &l.tokens_of(ra, rb, sp) {
                            assert!(!seen[t], "token {t} owned twice");
                            seen[t] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "unowned tokens (shifted={shifted})");
        }
    }

    #[test]
    fn owner_of_agrees_with_tokens_of() {
        for shifted in [false, true] {
            let l = ActLayout::new(grid(), shifted, 2, 2, 2);
            for ra in 0..2 {
                for rb in 0..2 {
                    for sp in 0..2 {
                        for (row, &t) in l.tokens_of(ra, rb, sp).iter().enumerate() {
                            assert_eq!(l.owner_of(t), (ra, rb, sp, row));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rows_per_rank_balanced() {
        let l = ActLayout::new(grid(), false, 2, 2, 2);
        assert_eq!(l.rows_per_rank(), 128 / 8);
        assert_eq!(l.windows_per_rank(), 2);
        assert_eq!(l.chunk_rows(), 8);
    }

    /// Relayout routing moves every token to exactly the right place — a full
    /// local simulation of the unshifted→shifted exchange.
    #[test]
    fn routing_preserves_content() {
        let src = ActLayout::new(grid(), false, 2, 2, 2);
        let dst = ActLayout::new(grid(), true, 2, 2, 2);
        // Local "global" array: token id as the value.
        let mut received: Vec<Vec<f32>> = vec![vec![-1.0; dst.rows_per_rank()]; 8];
        let rank_ix = |a: usize, b: usize, s: usize| ((a * 2) + b) * 2 + s;
        for ra in 0..2 {
            for rb in 0..2 {
                for sp in 0..2 {
                    let tokens = src.tokens_of(ra, rb, sp);
                    for m in src.routing_to(&dst, ra, rb, sp) {
                        let di = rank_ix(m.dst.0, m.dst.1, m.dst.2);
                        for (s, d) in m.src_rows.iter().zip(&m.dst_rows) {
                            received[di][*d] = tokens[*s] as f32;
                        }
                    }
                }
            }
        }
        for da in 0..2 {
            for db in 0..2 {
                for dsp in 0..2 {
                    let expect = dst.tokens_of(da, db, dsp);
                    let got = &received[rank_ix(da, db, dsp)];
                    for (row, &t) in expect.iter().enumerate() {
                        assert_eq!(got[row], t as f32, "rank ({da},{db},{dsp}) row {row}");
                    }
                }
            }
        }
    }

    /// The paper's message-size claim: with round-robin ownership, the
    /// shifted relayout sends messages of ≤ window_len/SP rows each, i.e.
    /// each rank sends "1/SP of the window" chunks.
    #[test]
    fn shift_messages_are_window_chunks() {
        let src = ActLayout::new(grid(), false, 2, 2, 2);
        let dst = ActLayout::new(grid(), true, 2, 2, 2);
        for ra in 0..2 {
            for rb in 0..2 {
                for sp in 0..2 {
                    let msgs = src.routing_to(&dst, ra, rb, sp);
                    let total: usize = msgs.iter().map(|m| m.src_rows.len()).sum();
                    assert_eq!(total, src.rows_per_rank(), "every row routed");
                }
            }
        }
    }

    #[test]
    fn routing_from_matches_routing_to() {
        let src = ActLayout::new(grid(), false, 2, 2, 2);
        let dst = ActLayout::new(grid(), true, 2, 2, 2);
        let incoming = ActLayout::routing_from(&src, &dst, 1, 0, 1);
        assert!(!incoming.is_empty());
        for ((ra, rb, sp), m) in &incoming {
            let outgoing = src.routing_to(&dst, *ra, *rb, *sp);
            assert!(outgoing.contains(m));
        }
    }

    #[test]
    fn identity_relayout_is_local() {
        let l = ActLayout::new(grid(), false, 2, 2, 2);
        let msgs = l.routing_to(&l, 0, 1, 1);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].dst, (0, 1, 1));
        assert_eq!(msgs[0].src_rows, msgs[0].dst_rows);
    }
}
