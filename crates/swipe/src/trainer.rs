//! End-to-end distributed SWiPe training.
//!
//! Each rank runs the 1F1B schedule over its stage, with window/sequence
//! parallel activations inside each block, shared-seed diffusion times across
//! model-parallel ranks (§VI-B), gradient reduction over DP×WP×SP, and a
//! ZeRO-1-style sharded optimizer (owner-updates + parameter broadcast).
//!
//! [`reference_grads`] computes the *same* objective on a single rank with
//! the same noise realizations, enabling the distributed ≡ single-rank
//! equivalence tests in `tests/`.
//!
//! Fault tolerance:
//! - every communication failure surfaces as a typed [`SwipeError`] through
//!   [`DistributedTrainer::train`]'s `Result` — a lost message or dead peer
//!   ends the run with an error within the comm deadline, never a deadlock;
//! - a planned step-boundary crash ([`FaultPlan::crash_rank`]) degrades
//!   gracefully: the dead rank's entire data-parallel replica retires, the
//!   surviving groups shrink (in group order, keeping reductions
//!   deterministic), and gradient averaging rescales to the surviving global
//!   batch;
//! - a planned restart ([`FaultPlan::restart_rank`]) re-admits a crashed
//!   rank at a later step boundary: its replica parks through the outage,
//!   the data-parallel groups regrow in group order, and a live donor
//!   replica re-shards parameters plus its positionally-owned ZeRO-1
//!   moments onto the rejoiner, after which the run proceeds bitwise as if
//!   resumed from a checkpoint taken at the rejoin boundary;
//! - coordinated checkpoints ([`CheckpointConfig`]) serialize the canonical
//!   replica's parameters, each ZeRO-1 owner's AdamW moments, and the step
//!   counters; [`SwipeConfig::resume_from`] restores them — into *any*
//!   data-parallel width, since moments shard within a replica — and,
//!   because diffusion times and noise are stateless functions of
//!   `(seed, step)`, reproduces the uninterrupted run bitwise from the
//!   checkpointed step on.

use crate::comm::{CommClass, CommConfig, CommError, Communicator, TrafficReport, World};
use crate::data::{gather, Field, WindowSource};
use crate::events::{EventRecord, FaultEvent};
use crate::fault::FaultPlan;
use crate::layout::ActLayout;
use crate::schedule::{try_one_f_one_b, Action, ScheduleError};
use crate::stage::{StageError, StageKind, StageModel, StageRun};
use crate::topology::{RankCoords, SwipeTopology};
use aeris_core::AerisModel;
use aeris_diffusion::TrigFlow;
use aeris_nn::checkpoint::{entry_u64, load_entries, save_entries, u64_entry};
use aeris_nn::window::WindowGrid;
use aeris_nn::{AdamW, AdamWConfig, ParamId, RopeTable};
use aeris_obs::{SpanCategory, Tracer};
use aeris_tensor::{Rng, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Coordinated checkpointing policy.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory for checkpoint files (`step_NNNNNN.ckpt`).
    pub dir: PathBuf,
    /// Save after every `every` completed steps.
    pub every: usize,
}

/// Distributed training configuration.
#[derive(Clone, Debug)]
pub struct SwipeConfig {
    pub topo: SwipeTopology,
    /// Gradient accumulation steps = microbatches per model replica per step.
    pub gas: usize,
    /// Training steps to run.
    pub n_steps: usize,
    /// Learning rate (constant for these short equivalence runs).
    pub lr: f32,
    /// Base seed for diffusion times and noise fields.
    pub seed: u64,
    pub adamw: AdamWConfig,
    /// Communication timeout / retry policy.
    pub comm: CommConfig,
    /// Injected faults (None = fault-free; hooks stay dormant).
    pub faults: Option<FaultPlan>,
    /// Coordinated checkpointing (None = no checkpoints).
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from a checkpoint file written by a previous run.
    pub resume_from: Option<PathBuf>,
    /// Span tracer shared into every rank thread. Disabled by default: each
    /// span site then costs one atomic load. Pass `Tracer::enabled()` to
    /// record the full per-rank pipeline timeline (schedule slots, comm ops,
    /// bubbles, optimizer, checkpoints), exportable via
    /// `tracer.chrome_trace()` / the `aeris-obs` MFU report.
    pub tracer: Tracer,
}

impl SwipeConfig {
    /// A minimal configuration for `topo`; override fields with struct-update
    /// syntax (`SwipeConfig { gas: 2, ..SwipeConfig::new(topo) }`).
    pub fn new(topo: SwipeTopology) -> Self {
        SwipeConfig {
            topo,
            gas: 1,
            n_steps: 1,
            lr: 1e-3,
            seed: 0,
            adamw: AdamWConfig::default(),
            comm: CommConfig::default(),
            faults: None,
            checkpoint: None,
            resume_from: None,
            tracer: Tracer::default(),
        }
    }
}

/// Why a checkpoint could not be written or restored.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// Filesystem or decode failure (message carries the cause).
    Io(String),
    /// A required entry is absent from the checkpoint file.
    MissingEntry(String),
    /// The checkpoint's model-parallel grid differs from this run's. The
    /// elastic re-shard path accepts any data-parallel width, but pp/wp/sp
    /// shape the parameters themselves and must match exactly.
    TopologyMismatch { checkpoint: SwipeTopology, run: SwipeTopology },
    /// The checkpoint was written under a different base seed; resuming
    /// would silently change every noise and diffusion-time realization.
    SeedMismatch { checkpoint: u64, run: u64 },
    /// A saved tensor's shape does not match the model's.
    ShapeMismatch { name: String },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "I/O failure: {msg}"),
            CheckpointError::MissingEntry(key) => write!(f, "missing entry {key}"),
            CheckpointError::TopologyMismatch { checkpoint: c, run: r } => write!(
                f,
                "model-parallel topology mismatch: checkpoint written at \
                 pp={} wp={}x{} sp={} (dp={}), this run is pp={} wp={}x{} sp={} (dp={}); \
                 only the data-parallel width may differ on restore — relaunch with a \
                 matching pp/wp/sp grid",
                c.pp, c.wp_a, c.wp_b, c.sp, c.dp, r.pp, r.wp_a, r.wp_b, r.sp, r.dp
            ),
            CheckpointError::SeedMismatch { checkpoint, run } => write!(
                f,
                "seed mismatch: checkpoint written with seed {checkpoint}, this run uses \
                 {run}; resume with the checkpoint's seed to reproduce its noise stream"
            ),
            CheckpointError::ShapeMismatch { name } => {
                write!(f, "shape mismatch for {name}")
            }
        }
    }
}

/// A typed distributed-training failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SwipeError {
    /// A communication operation failed (timeout, dead peer, own crash).
    Comm(CommError),
    /// Stage construction failed (reference/stage parameter mismatch).
    Stage(StageError),
    /// The pipeline schedule could not be built.
    Schedule(ScheduleError),
    /// Checkpoint I/O or validation failed.
    Checkpoint(CheckpointError),
    /// Every data-parallel replica was lost to planned crashes.
    AllReplicasLost { step: usize },
}

impl std::fmt::Display for SwipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwipeError::Comm(e) => write!(f, "communication failure: {e}"),
            SwipeError::Stage(e) => write!(f, "stage construction failure: {e}"),
            SwipeError::Schedule(e) => write!(f, "schedule failure: {e}"),
            SwipeError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            SwipeError::AllReplicasLost { step } => {
                write!(f, "all data-parallel replicas lost by step {step}")
            }
        }
    }
}

impl std::error::Error for SwipeError {}

impl From<CheckpointError> for SwipeError {
    fn from(e: CheckpointError) -> Self {
        SwipeError::Checkpoint(e)
    }
}

impl From<CommError> for SwipeError {
    fn from(e: CommError) -> Self {
        SwipeError::Comm(e)
    }
}

impl From<StageError> for SwipeError {
    fn from(e: StageError) -> Self {
        SwipeError::Stage(e)
    }
}

impl From<ScheduleError> for SwipeError {
    fn from(e: ScheduleError) -> Self {
        SwipeError::Schedule(e)
    }
}

/// A failed run: the first error plus the fault log up to the failure, so
/// callers can still see which faults were injected and recovered before the
/// fatal one.
#[derive(Clone, Debug)]
pub struct TrainFailure {
    pub error: SwipeError,
    pub events: Vec<EventRecord>,
}

impl std::fmt::Display for TrainFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} fault events logged)", self.error, self.events.len())
    }
}

impl std::error::Error for TrainFailure {}

/// What a training run reports back.
pub struct TrainReport {
    /// Global objective per step (absolute step index; entries before
    /// `start_step` of a resumed run are 0, and entries for steps after all
    /// replicas retired are 0).
    pub losses: Vec<f64>,
    /// First step this run actually executed (>0 when resumed).
    pub start_step: usize,
    /// Communication traffic by class.
    pub traffic: TrafficReport,
    /// Maximum concurrently-live activation elements on any rank.
    pub max_activation_elems: usize,
    /// Final parameters (reference-model names), from the lowest surviving
    /// dp / wp=(0,0) / sp=0 replica of each stage.
    pub final_params: HashMap<String, Tensor>,
    /// The fault log (empty for fault-free runs without checkpoints).
    pub events: Vec<EventRecord>,
    /// Communication operations performed, per rank.
    pub comm_ops: Vec<u64>,
}

/// The shared diffusion time for (step, dp, microbatch): identical on every
/// model-parallel rank, independent across data-parallel replicas.
pub fn shared_t(tf: &TrigFlow, seed: u64, step: usize, dp: usize, m: usize) -> f32 {
    let key = (step as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((dp as u64) << 32)
        .wrapping_add(m as u64);
    let mut rng = Rng::seed_from(seed ^ 0x7117).stream(key);
    tf.sample_t(&mut rng)
}

/// Deterministic per-token Gaussian noise rows: spatially uncorrelated and
/// independent per sample, but reproducible by any rank that knows the token
/// ids (the first and last pipeline stages need the same `z`).
pub fn noise_rows(seed: u64, sample: usize, tokens: &[usize], channels: usize) -> Tensor {
    let base = Rng::seed_from(seed ^ 0x2077).stream(sample as u64);
    let mut out = Tensor::zeros(&[tokens.len(), channels]);
    for (r, &tok) in tokens.iter().enumerate() {
        let mut rng = base.stream(tok as u64 + 1);
        for c in 0..channels {
            *out.at_mut(&[r, c]) = rng.normal();
        }
    }
    out
}

/// Single-rank reference: the identical objective, noise, and gradient
/// averaging as one distributed step, computed on the full model. Returns
/// (mean loss, per-parameter-name gradients).
pub fn reference_grads(
    model: &AerisModel,
    source: &dyn WindowSource,
    step_schedule: &[Vec<usize>],
    weights: &Tensor,
    seed: u64,
    step: usize,
) -> (f64, HashMap<String, Tensor>) {
    let tf = TrigFlow::default();
    let tokens: Vec<usize> = (0..model.cfg.tokens()).collect();
    let mut acc: Vec<Option<Tensor>> = vec![None; model.store.len()];
    let mut total_loss = 0.0;
    let mut count = 0usize;
    for (dp, micro) in step_schedule.iter().enumerate() {
        for (m, &sample) in micro.iter().enumerate() {
            let t = shared_t(&tf, seed, step, dp, m);
            let x0 = source.load_rows(sample, Field::Residual, &tokens);
            let prev = source.load_rows(sample, Field::Prev, &tokens);
            let forc = source.load_rows(sample, Field::Forcing, &tokens);
            let z = noise_rows(seed, sample, &tokens, model.cfg.channels);
            let x_t = tf.interpolate(&x0, &z, t);
            let v_target = tf.velocity_target(&x0, &z, t);
            let input = model.assemble_input(&x_t, &prev, &forc);
            let mut tape = aeris_autodiff::Tape::new();
            let mut binding = aeris_nn::Binding::new(&model.store);
            let iv = tape.constant(input);
            let out = model.forward(&mut tape, &mut binding, iv, t);
            let loss = tape.weighted_mse(out, &v_target, weights);
            total_loss += tape.value(loss).data()[0] as f64;
            let mut grads = tape.backward(loss);
            for (slot, g) in acc.iter_mut().zip(binding.collect_grads(&mut grads)) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
            count += 1;
        }
    }
    let inv = 1.0 / count as f32;
    let mut by_name = HashMap::new();
    for (i, slot) in acc.into_iter().enumerate() {
        if let Some(mut g) = slot {
            g.scale_inplace(inv);
            by_name.insert(model.store.name(ParamId(i)).to_string(), g);
        }
    }
    (total_loss / count as f64, by_name)
}

/// State recovered from a checkpoint file before ranks spawn.
struct ResumeState {
    /// First step the resumed run executes.
    start_step: usize,
    /// AdamW step counter at the checkpoint.
    adamw_steps: u64,
    /// Reference model with checkpointed parameters.
    model: AerisModel,
    /// `opt.m/<name>` / `opt.v/<name>` entries for optimizer rehydration.
    moments: HashMap<String, Tensor>,
}

fn ckpt_io(msg: impl std::fmt::Display) -> SwipeError {
    SwipeError::Checkpoint(CheckpointError::Io(msg.to_string()))
}

/// Load and validate a checkpoint written by [`run_rank`]'s save protocol.
///
/// Restore is world-size independent across the data-parallel axis: the file
/// holds the full (replicated) parameter set and the full moment tensor of
/// every parameter, so any DP width can re-derive its within-replica ZeRO-1
/// ownership positionally. Only the model-parallel grid (pp/wp/sp), which
/// shapes the stage shards themselves, and the seed, which drives the noise
/// stream, are required to match.
fn load_resume_state(
    reference: &AerisModel,
    cfg: &SwipeConfig,
    path: &Path,
) -> Result<ResumeState, SwipeError> {
    let entries = load_entries(path).map_err(ckpt_io)?;
    let map: HashMap<String, Tensor> = entries.into_iter().collect();
    let get_u64 = |key: &str| -> Result<u64, SwipeError> {
        entry_u64(
            map.get(key)
                .ok_or_else(|| CheckpointError::MissingEntry(key.to_string()))?,
        )
        .map_err(ckpt_io)
    };
    let start_step = get_u64("meta/step")? as usize;
    let adamw_steps = get_u64("meta/adamw_steps")?;
    let ckpt_topo = SwipeTopology {
        dp: get_u64("meta/topo_dp")? as usize,
        pp: get_u64("meta/topo_pp")? as usize,
        wp_a: get_u64("meta/topo_wp_a")? as usize,
        wp_b: get_u64("meta/topo_wp_b")? as usize,
        sp: get_u64("meta/topo_sp")? as usize,
    };
    let run = cfg.topo;
    if (ckpt_topo.pp, ckpt_topo.wp_a, ckpt_topo.wp_b, ckpt_topo.sp)
        != (run.pp, run.wp_a, run.wp_b, run.sp)
    {
        return Err(CheckpointError::TopologyMismatch { checkpoint: ckpt_topo, run }.into());
    }
    let saved_seed = get_u64("meta/seed")?;
    if saved_seed != cfg.seed {
        return Err(CheckpointError::SeedMismatch { checkpoint: saved_seed, run: cfg.seed }.into());
    }
    let mut model = AerisModel::new(reference.cfg.clone());
    let ids: Vec<(ParamId, String)> =
        model.store.iter().map(|(id, n, _)| (id, n.to_string())).collect();
    for (id, name) in ids {
        let saved = map
            .get(&format!("param/{name}"))
            .ok_or_else(|| CheckpointError::MissingEntry(format!("param/{name}")))?;
        if saved.shape() != model.store.get(id).shape() {
            return Err(CheckpointError::ShapeMismatch { name }.into());
        }
        *model.store.get_mut(id) = saved.clone();
    }
    let moments = map.into_iter().filter(|(k, _)| k.starts_with("opt.")).collect();
    Ok(ResumeState { start_step, adamw_steps, model, moments })
}

/// Read just the resume step (`meta/step`) of a checkpoint file.
pub fn checkpoint_step(path: &Path) -> Result<usize, SwipeError> {
    let entries = load_entries(path).map_err(ckpt_io)?;
    let t = entries
        .iter()
        .find(|(k, _)| k == "meta/step")
        .map(|(_, t)| t)
        .ok_or_else(|| CheckpointError::MissingEntry("meta/step".to_string()))?;
    Ok(entry_u64(t).map_err(ckpt_io)? as usize)
}

/// The distributed trainer entry point.
pub struct DistributedTrainer;

impl DistributedTrainer {
    /// Run `cfg.n_steps` of SWiPe training starting from `reference`'s
    /// parameters (or from `cfg.resume_from`'s checkpoint). `schedule[step]
    /// [dp]` lists the GAS sample indices each data-parallel replica consumes
    /// at that step.
    ///
    /// Fails with a typed [`TrainFailure`] — carrying the fault log — if a
    /// rank dies mid-step or a communication deadline expires; completes with
    /// a degraded (DP-shrunk) run when crashes are planned at step
    /// boundaries.
    pub fn train(
        reference: &AerisModel,
        cfg: &SwipeConfig,
        source: &(dyn WindowSource + Sync),
        schedule: &[Vec<Vec<usize>>],
        weights: &Tensor,
    ) -> Result<TrainReport, TrainFailure> {
        let topo = cfg.topo;
        assert_eq!(
            topo.pp,
            reference.cfg.n_layers * reference.cfg.blocks_per_layer + 2,
            "pipeline stages must equal blocks + 2 (separated I/O/embedding stages)"
        );
        assert_eq!(schedule.len(), cfg.n_steps);
        for s in schedule {
            assert_eq!(s.len(), topo.dp);
            for micro in s {
                assert_eq!(micro.len(), cfg.gas);
            }
        }
        let world =
            World::with_tracer(topo.world_size(), cfg.comm, cfg.faults.clone(), cfg.tracer.clone());
        let fail = |error: SwipeError, world: &World| TrainFailure {
            error,
            events: world.events().snapshot(),
        };

        let resume = match &cfg.resume_from {
            Some(path) => match load_resume_state(reference, cfg, path) {
                Ok(r) => Some(r),
                Err(e) => return Err(fail(e, &world)),
            },
            None => None,
        };
        let start_step = resume.as_ref().map_or(0, |r| r.start_step);
        let reference = resume.as_ref().map_or(reference, |r| &r.model);
        let resume_opt = resume.as_ref().map(|r| (&r.moments, r.adamw_steps));

        let losses: Mutex<Vec<f64>> = Mutex::new(vec![0.0; cfg.n_steps]);
        let final_params: Mutex<HashMap<String, Tensor>> = Mutex::new(HashMap::new());
        let ckpt_buf: Mutex<HashMap<String, Tensor>> = Mutex::new(HashMap::new());
        let max_act = AtomicUsize::new(0);
        let errors: Mutex<Vec<SwipeError>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for rank in 0..topo.world_size() {
                let comm = world.communicator(rank);
                let world = world.clone();
                let losses = &losses;
                let final_params = &final_params;
                let ckpt_buf = &ckpt_buf;
                let max_act = &max_act;
                let errors = &errors;
                scope.spawn(move || {
                    let result = run_rank(
                        comm, topo, cfg, reference, source, schedule, weights, losses,
                        final_params, ckpt_buf, max_act, start_step, resume_opt,
                    );
                    if let Err(e) = result {
                        // A failed rank can no longer feed its peers: mark it
                        // dead so their waits collapse into fast PeerDead
                        // errors instead of sleeping out the full deadline.
                        world.mark_dead(rank);
                        errors.lock().push(e);
                    }
                });
            }
        });

        if let Some(e) = errors.into_inner().into_iter().next() {
            return Err(fail(e, &world));
        }
        Ok(TrainReport {
            losses: losses.into_inner(),
            start_step,
            traffic: world.traffic(),
            max_activation_elems: max_act.load(Ordering::Relaxed),
            final_params: final_params.into_inner(),
            events: world.events().snapshot(),
            comm_ops: world.op_counts(),
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    mut comm: Communicator,
    topo: SwipeTopology,
    cfg: &SwipeConfig,
    reference: &AerisModel,
    source: &(dyn WindowSource + Sync),
    schedule: &[Vec<Vec<usize>>],
    weights: &Tensor,
    losses: &Mutex<Vec<f64>>,
    final_params: &Mutex<HashMap<String, Tensor>>,
    ckpt_buf: &Mutex<HashMap<String, Tensor>>,
    max_act: &AtomicUsize,
    start_step: usize,
    resume_opt: Option<(&HashMap<String, Tensor>, u64)>,
) -> Result<(), SwipeError> {
    let coords = topo.coords_of(comm.rank());
    let mcfg = &reference.cfg;
    let grid = WindowGrid::new(mcfg.grid_h, mcfg.grid_w, mcfg.window.0, mcfg.window.1);
    let n_blocks = topo.pp - 2;
    let tf = TrigFlow::default();

    let kind = match coords.stage {
        0 => StageKind::Input,
        s if s == topo.pp - 1 => StageKind::Head,
        s => StageKind::Block(s - 1),
    };
    let stage_model = StageModel::from_reference(reference, kind)?;

    // Layouts: stage 0 uses block 0's layout; block b its own; head uses the
    // last block's.
    let block_layout = |b: usize| {
        ActLayout::new(grid, reference.blocks[b].shifted, topo.wp_a, topo.wp_b, topo.sp)
    };
    let my_layout = match kind {
        StageKind::Input => block_layout(0),
        StageKind::Block(b) => block_layout(b),
        StageKind::Head => block_layout(n_blocks - 1),
    };
    let next_layout = match kind {
        StageKind::Input => Some(block_layout(0)),
        StageKind::Block(b) if b + 1 < n_blocks => Some(block_layout(b + 1)),
        StageKind::Block(b) => {
            debug_assert_eq!(b, n_blocks - 1);
            Some(block_layout(n_blocks - 1))
        }
        StageKind::Head => None,
    };
    let prev_layout = match kind {
        StageKind::Input => None,
        StageKind::Block(0) => Some(block_layout(0)),
        StageKind::Block(b) => Some(block_layout(b - 1)),
        StageKind::Head => Some(block_layout(n_blocks - 1)),
    };

    let rope = RopeTable::new(mcfg.window.0, mcfg.window.1, mcfg.head_dim(), 0, 0);
    let sp_group = topo.sp_group(coords);
    let my_tokens = my_layout.tokens_of(coords.wp_row, coords.wp_col, coords.sp);
    let my_pos: Tensor = {
        let mut t = Tensor::zeros(&[my_tokens.len()]);
        for (i, &tok) in my_tokens.iter().enumerate() {
            t.data_mut()[i] = reference.pos_field.data()[tok];
        }
        t
    };
    let my_weight_rows = gather(weights, &my_tokens);

    // Gradient reduction still spans the full cross-replica groups: the
    // stage's DP×WP×SP group for stage-local params, and (for the shared
    // time-conditioner params, which the edge stages do not hold) the
    // interior stages across all replicas.
    let grad_group = topo.grad_group(coords);
    let all_ranks = topo.all_ranks();
    let shared_group = topo.block_stage_ranks();
    let shared_ixs: Vec<usize> = stage_model.shared_param_ixs();
    // Hybrid ZeRO-1 ownership (ORBIT-style): optimizer moments shard
    // *within* each data-parallel replica and replicate *across* replicas.
    // Every owner sees the same reduced gradient and therefore the same
    // moment history, so parameters evolve bitwise as with global sharding —
    // but the owner groups never change size when replicas retire or rejoin,
    // which keeps moment ownership stable under membership churn and lets
    // any live replica re-shard a rejoining one positionally.
    let replica_group = topo.replica_grad_group(coords);
    let replica_shared = topo.replica_shared_group(coords.dp);
    let mut opt = AdamW::new(&stage_model.store, cfg.adamw);
    let mut stage_model = stage_model;

    // Checkpoint-restart: rehydrate this rank's optimizer slice. Every
    // parameter's moments are in the checkpoint (saved by its owner at save
    // time); loading them everywhere is harmless — non-owners never read
    // their moment slots.
    if let Some((moments, adamw_steps)) = resume_opt {
        for i in 0..stage_model.store.len() {
            let name = stage_model.store.name(ParamId(i)).to_string();
            for (prefix, slot) in [("opt.m/", 0usize), ("opt.v/", 1usize)] {
                if let Some(saved) = moments.get(&format!("{prefix}{name}")) {
                    let state = opt.state_mut(i);
                    let target = if slot == 0 { state.0 } else { state.1 };
                    if saved.shape() != target.shape() {
                        return Err(CheckpointError::ShapeMismatch {
                            name: format!("{prefix}{name}"),
                        }
                        .into());
                    }
                    *target = saved.clone();
                }
            }
        }
        opt.set_steps(adamw_steps);
    }

    let actions = try_one_f_one_b(coords.stage, topo.pp, cfg.gas)?;
    let dim = mcfg.dim;
    let tracer = comm.world().tracer().clone();
    let mut prev_live_dp = topo.dp;
    // Elastic state: `Some(guard)` while this rank is parked waiting out a
    // fault window; the open Outage span closes at rejoin, so balanced
    // Outage pairs prove every parked replica that was due back came back.
    let mut outage: Option<aeris_obs::SpanGuard> = None;
    let mut was_out = false;

    for step in start_step..cfg.n_steps {
        comm.set_trace_step(step as u64);
        let plan = cfg.faults.as_ref();
        // ---- step-boundary fault-plan reconfiguration ----
        // The plan is shared knowledge: every rank derives the same dead set
        // for this step without any agreement protocol.
        let crashed_now = comm.planned_crash(step);
        let dead_dps = match plan {
            Some(p) => topo.dead_dps(&p.dead_ranks_at(step)),
            None => Vec::new(),
        };
        let live_dp = topo.dp - dead_dps.len();
        let all_live = topo.filter_live(&all_ranks, &dead_dps);
        if live_dp != prev_live_dp {
            prev_live_dp = live_dp;
            if Some(&comm.rank()) == all_live.first() {
                comm.world()
                    .events()
                    .record(comm.rank(), FaultEvent::GroupRescaled { step, live_dp });
            }
        }
        if dead_dps.contains(&coords.dp) {
            if !was_out {
                // Transition: a member of my replica crashed, and the whole
                // replica leaves together (the crasher itself already logged
                // RankCrashed inside `planned_crash`).
                if !crashed_now {
                    comm.world().events().record(
                        comm.rank(),
                        FaultEvent::ReplicaRetired { rank: comm.rank(), dp: coords.dp, step },
                    );
                }
                if dead_dps.len() == topo.dp {
                    return Err(SwipeError::AllReplicasLost { step });
                }
                // Park only if the replica is scheduled to come back inside
                // this run; otherwise retire for good (the shrink-only path).
                let rejoins = plan.is_some_and(|p| {
                    (step + 1..cfg.n_steps)
                        .any(|s| !topo.dead_dps(&p.dead_ranks_at(s)).contains(&coords.dp))
                });
                if !rejoins {
                    return Ok(());
                }
                was_out = true;
                outage = Some(tracer.span(SpanCategory::Outage, comm.rank()).step(step as u64));
            }
            // Parked: skip the step without touching the world — peers use
            // groups that exclude this replica until the window closes.
            continue;
        }

        // ---- elastic rejoin preamble ----
        // Every live rank re-admits the ranks whose fault window ends at
        // this boundary *before issuing any step traffic*, so nobody can
        // observe a stale dead flag on a peer it is about to wait on (the
        // revive is idempotent across ranks).
        let rejoining_dps: Vec<usize> = match plan {
            Some(p) if step > start_step => topo
                .dead_dps(&p.dead_ranks_at(step - 1))
                .into_iter()
                .filter(|dp| !dead_dps.contains(dp))
                .collect(),
            _ => Vec::new(),
        };
        for &dp in &rejoining_dps {
            for stage in 0..topo.pp {
                for r in topo.stage_ranks(dp, stage) {
                    comm.world().revive(r);
                }
            }
        }
        if was_out {
            // This rank is rejoining: close the outage window and receive a
            // re-sharded copy of a live replica's state.
            was_out = false;
            drop(outage.take());
            let event = if plan
                .and_then(|p| p.crash_step(comm.rank()))
                .is_some_and(|c| c < step)
            {
                FaultEvent::RankRejoined { rank: comm.rank(), step }
            } else {
                FaultEvent::ReplicaRejoined { rank: comm.rank(), dp: coords.dp, step }
            };
            comm.world().events().record(comm.rank(), event);
            let donor_dp = donor_dp(&topo, &dead_dps, &rejoining_dps)
                .ok_or(SwipeError::AllReplicasLost { step })?;
            let donor = topo.rank_of(RankCoords { dp: donor_dp, ..coords });
            let _reshard = comm.trace_span(SpanCategory::Recovery).label("reshard_recv");
            let payload = comm.recv(donor)?;
            apply_rejoin_state(
                &mut stage_model, &mut opt, &shared_ixs, &replica_group, &replica_shared,
                comm.rank(), payload,
            );
        } else if !rejoining_dps.is_empty() && donor_dp(&topo, &dead_dps, &rejoining_dps) == Some(coords.dp)
        {
            // Donor side: the lowest replica that stayed live across the
            // boundary re-shards its state to each rejoining replica's
            // same-coordinates rank. One message carries the full parameter
            // set (store order), the moment pairs this position owns under
            // the within-replica sharding (identical positions own identical
            // shards in every replica), and the AdamW step counter.
            let _reshard = comm.trace_span(SpanCategory::Recovery).label("reshard_send");
            let payload = rejoin_state_payload(
                &stage_model, &opt, &shared_ixs, &replica_group, &replica_shared, comm.rank(),
            );
            for &dp in &rejoining_dps {
                let dst = topo.rank_of(RankCoords { dp, ..coords });
                comm.send(dst, CommClass::AllGather, payload.clone())?;
            }
        }
        let grad_group_live = topo.filter_live(&grad_group, &dead_dps);
        let shared_group_live = topo.filter_live(&shared_group, &dead_dps);

        let mut runs: HashMap<usize, StageRun> = HashMap::new();
        let mut grads: Vec<Option<Tensor>> = vec![None; stage_model.store.len()];
        let mut my_loss = 0.0f64;

        for action in &actions {
            match *action {
                Action::Forward(m) => {
                    comm.set_trace_micro(Some(m as u64));
                    let sample = schedule[step][coords.dp][m];
                    let t = shared_t(&tf, cfg.seed, step, coords.dp, m);
                    match kind {
                        StageKind::Input => {
                            let run = {
                                let _fwd = comm.trace_span(SpanCategory::Forward);
                                let x0 = source.load_rows(sample, Field::Residual, &my_tokens);
                                let prev = source.load_rows(sample, Field::Prev, &my_tokens);
                                let forc = source.load_rows(sample, Field::Forcing, &my_tokens);
                                let z = noise_rows(cfg.seed, sample, &my_tokens, mcfg.channels);
                                let x_t = tf.interpolate(&x0, &z, t);
                                let cat = Tensor::concat_cols(&[&x_t, &prev, &forc]);
                                let input = aeris_nn::posenc::add_pos_encoding(&cat, &my_pos);
                                stage_model.forward_input(input)
                            };
                            send_relayout(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                run.tape.value(run.out),
                            )?;
                            runs.insert(m, run);
                        }
                        StageKind::Block(_) => {
                            let x_in = {
                                // Pipeline wait: blocked until the previous
                                // stage's activations arrive.
                                let _bubble = comm.trace_span(SpanCategory::Bubble);
                                recv_relayout(
                                    &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                    &my_layout, my_layout.rows_per_rank(), dim,
                                )?
                            };
                            let run = {
                                let _fwd = comm.trace_span(SpanCategory::Forward);
                                stage_model.forward_block(
                                    x_in, t, &my_layout, &rope, &mut comm, &sp_group,
                                )?
                            };
                            send_relayout(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                run.tape.value(run.out),
                            )?;
                            runs.insert(m, run);
                        }
                        StageKind::Head => {
                            let x_in = {
                                let _bubble = comm.trace_span(SpanCategory::Bubble);
                                recv_relayout(
                                    &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                    &my_layout, my_layout.rows_per_rank(), dim,
                                )?
                            };
                            let _fwd = comm.trace_span(SpanCategory::Forward);
                            let x0 = source.load_rows(sample, Field::Residual, &my_tokens);
                            let z = noise_rows(cfg.seed, sample, &my_tokens, mcfg.channels);
                            let v_target = tf.velocity_target(&x0, &z, t);
                            let run = stage_model.forward_head(
                                x_in, &v_target, &my_weight_rows, mcfg.tokens(),
                            );
                            my_loss += run.loss;
                            runs.insert(m, run);
                        }
                    }
                }
                Action::Backward(m) => {
                    comm.set_trace_micro(Some(m as u64));
                    let run = runs.remove(&m).expect("forward before backward");
                    match kind {
                        StageKind::Head => {
                            let g_in = {
                                let _bwd = comm.trace_span(SpanCategory::Backward);
                                stage_model.backward_head(run, &mut grads)
                            };
                            send_grads_back(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, &g_in,
                            )?;
                        }
                        StageKind::Block(_) => {
                            let g_out = {
                                let _bubble = comm.trace_span(SpanCategory::Bubble);
                                recv_grads_back(
                                    &mut comm, &topo, coords, &my_layout,
                                    next_layout.as_ref().unwrap(),
                                    my_layout.rows_per_rank(), dim,
                                )?
                            };
                            let g_in = {
                                let _bwd = comm.trace_span(SpanCategory::Backward);
                                stage_model.backward_block(
                                    run, g_out, &mut comm, &sp_group, &mut grads,
                                )?
                            };
                            send_grads_back(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, &g_in,
                            )?;
                        }
                        StageKind::Input => {
                            let g_out = {
                                let _bubble = comm.trace_span(SpanCategory::Bubble);
                                recv_grads_back(
                                    &mut comm, &topo, coords, &my_layout,
                                    next_layout.as_ref().unwrap(),
                                    my_layout.rows_per_rank(), dim,
                                )?
                            };
                            let _bwd = comm.trace_span(SpanCategory::Backward);
                            stage_model.backward_input(run, g_out, &mut grads);
                        }
                    }
                }
            }
            // Activation accounting: all in-flight microbatch tapes.
            let live: usize = runs.values().map(|r| r.activation_elems()).sum();
            max_act.fetch_max(live, Ordering::Relaxed);
        }

        // ---- gradient reduction (rescaled to the surviving global batch) ----
        comm.set_trace_micro(None);
        let gbs = (live_dp * cfg.gas) as f32;
        for i in 0..stage_model.store.len() {
            let shape = stage_model.store.get(ParamId(i)).shape().to_vec();
            let local = grads[i].take().unwrap_or_else(|| Tensor::zeros(&shape));
            let group: &[usize] =
                if shared_ixs.contains(&i) { &shared_group_live } else { &grad_group_live };
            let mut reduced = comm.allreduce_sum(group, &local)?;
            reduced.scale_inplace(1.0 / gbs);
            grads[i] = Some(reduced);
        }

        // ---- ZeRO-1 sharded optimizer (hybrid, within-replica) ----
        // Each parameter's within-replica owner updates it with AdamW state,
        // then broadcasts the fresh value inside the replica. Owner groups
        // never shrink (live replicas are always whole), and every replica's
        // owners compute bitwise-identical updates from the shared reduced
        // gradient.
        let _opt_span = comm.trace_span(SpanCategory::OptimizerStep);
        let mut own_grads: Vec<Option<Tensor>> = vec![None; stage_model.store.len()];
        for i in 0..stage_model.store.len() {
            let group: &[usize] =
                if shared_ixs.contains(&i) { &replica_shared } else { &replica_group };
            let owner = group[i % group.len()];
            if owner == comm.rank() {
                own_grads[i] = grads[i].take();
            }
        }
        opt.step(&mut stage_model.store, &own_grads, cfg.lr);
        for i in 0..stage_model.store.len() {
            let group: &[usize] =
                if shared_ixs.contains(&i) { &replica_shared } else { &replica_group };
            let owner_ix = i % group.len();
            let value = if group[owner_ix] == comm.rank() {
                Some(stage_model.store.get(ParamId(i)).clone())
            } else {
                None
            };
            let fresh = comm.broadcast(group, owner_ix, value)?;
            *stage_model.store.get_mut(ParamId(i)) = fresh;
        }
        drop(_opt_span);

        // ---- loss reporting: sum local head losses over live ranks ----
        let loss_sum = comm
            .allreduce_sum(&all_live, &Tensor::from_slice(&[my_loss as f32]))?
            .data()[0] as f64;
        if comm.rank() == all_live[0] {
            losses.lock()[step] = loss_sum / (live_dp * cfg.gas) as f64;
        }

        // ---- coordinated checkpoint ----
        let due = cfg
            .checkpoint
            .as_ref()
            .filter(|c| c.every > 0 && (step + 1) % c.every == 0);
        if let Some(ck) = due {
            let _ckpt = comm.trace_span(SpanCategory::Checkpoint);
            save_checkpoint(
                &mut comm, &topo, cfg, coords, &stage_model, &opt, &shared_ixs,
                &replica_group, &replica_shared, &all_live, &dead_dps, ckpt_buf, ck, step,
            )?;
        }
    }

    // Contribute final params from the canonical (lowest surviving dp)
    // replica.
    let final_dead = match cfg.faults.as_ref() {
        Some(plan) => topo.dead_dps(&plan.dead_ranks_at(cfg.n_steps.saturating_sub(1))),
        None => Vec::new(),
    };
    let canonical_dp = (0..topo.dp).find(|dp| !final_dead.contains(dp)).unwrap_or(0);
    if coords.dp == canonical_dp && coords.wp_row == 0 && coords.wp_col == 0 && coords.sp == 0 {
        let mut fp = final_params.lock();
        for (_, name, v) in stage_model.store.iter() {
            // Shared params exist on every block stage; one copy suffices
            // (they are kept in sync by construction).
            fp.entry(name.to_string()).or_insert_with(|| v.clone());
        }
    }
    Ok(())
}

/// Coordinated checkpoint save: each rank contributes its slice into the
/// shared buffer, everyone synchronizes, and the lowest live rank writes the
/// file. The canonical (lowest surviving dp) replica covers everything: its
/// wp=(0,0)/sp=0 ranks cover parameters, and its within-replica ZeRO-1
/// owners cover the AdamW moments (moments are replicated across replicas
/// under hybrid sharding, so one replica's copy is the global truth). The
/// result is world-size independent along the data-parallel axis — any DP
/// width restores it by re-deriving positional ownership.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    cfg: &SwipeConfig,
    coords: RankCoords,
    stage_model: &StageModel,
    opt: &AdamW,
    shared_ixs: &[usize],
    replica_group: &[usize],
    replica_shared: &[usize],
    all_live: &[usize],
    dead_dps: &[usize],
    ckpt_buf: &Mutex<HashMap<String, Tensor>>,
    ck: &CheckpointConfig,
    step: usize,
) -> Result<(), SwipeError> {
    let canonical_dp = (0..topo.dp).find(|dp| !dead_dps.contains(dp)).unwrap_or(0);
    let canonical =
        coords.dp == canonical_dp && coords.wp_row == 0 && coords.wp_col == 0 && coords.sp == 0;
    {
        let mut buf = ckpt_buf.lock();
        for i in 0..stage_model.store.len() {
            let name = stage_model.store.name(ParamId(i)).to_string();
            if canonical {
                buf.insert(format!("param/{name}"), stage_model.store.get(ParamId(i)).clone());
            }
            let group: &[usize] =
                if shared_ixs.contains(&i) { replica_shared } else { replica_group };
            if coords.dp == canonical_dp && group[i % group.len()] == comm.rank() {
                let (m, v) = opt.state(i);
                buf.insert(format!("opt.m/{name}"), m.clone());
                buf.insert(format!("opt.v/{name}"), v.clone());
            }
        }
    }
    // All contributions in before the writer drains the buffer.
    comm.barrier(all_live)?;
    if comm.rank() == all_live[0] {
        let mut entries: Vec<(String, Tensor)> = {
            let mut buf = ckpt_buf.lock();
            std::mem::take(&mut *buf).into_iter().collect()
        };
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.push(u64_entry("meta/step", (step + 1) as u64));
        entries.push(u64_entry("meta/adamw_steps", opt.steps()));
        entries.push(u64_entry("meta/world", topo.world_size() as u64));
        entries.push(u64_entry("meta/seed", cfg.seed));
        entries.push(u64_entry("meta/topo_dp", topo.dp as u64));
        entries.push(u64_entry("meta/topo_pp", topo.pp as u64));
        entries.push(u64_entry("meta/topo_wp_a", topo.wp_a as u64));
        entries.push(u64_entry("meta/topo_wp_b", topo.wp_b as u64));
        entries.push(u64_entry("meta/topo_sp", topo.sp as u64));
        let path = ck.dir.join(format!("step_{:06}.ckpt", step + 1));
        std::fs::create_dir_all(&ck.dir).map_err(ckpt_io)?;
        save_entries(&entries, &path).map_err(ckpt_io)?;
        comm.world().events().record(
            comm.rank(),
            FaultEvent::CheckpointSaved { next_step: step + 1, path: path.display().to_string() },
        );
    }
    // Nobody races into the next checkpoint's contributions while the writer
    // is still draining this one.
    comm.barrier(all_live)?;
    Ok(())
}

/// The replica that re-shards state to rejoiners at a boundary: the lowest
/// dp that is live this step and did not itself just rejoin (its state spans
/// the whole outage). `None` when every live replica is freshly rejoining —
/// the run's state is unrecoverable in-world and the supervisor must restore
/// from a checkpoint.
fn donor_dp(topo: &SwipeTopology, dead_dps: &[usize], rejoining_dps: &[usize]) -> Option<usize> {
    (0..topo.dp).find(|dp| !dead_dps.contains(dp) && !rejoining_dps.contains(dp))
}

/// The single-message state transfer a donor sends each rejoiner: every
/// stage parameter in store order, then the (m, v) moment pair of each
/// parameter this position owns under the within-replica ZeRO-1 sharding,
/// then the bit-encoded AdamW step counter. The rejoiner's same-coordinates
/// rank owns exactly the same positions, so no index map is transferred.
fn rejoin_state_payload(
    stage_model: &StageModel,
    opt: &AdamW,
    shared_ixs: &[usize],
    replica_group: &[usize],
    replica_shared: &[usize],
    rank: usize,
) -> Vec<Tensor> {
    let n = stage_model.store.len();
    let mut payload = Vec::with_capacity(n + 1);
    for i in 0..n {
        payload.push(stage_model.store.get(ParamId(i)).clone());
    }
    for i in 0..n {
        let group: &[usize] = if shared_ixs.contains(&i) { replica_shared } else { replica_group };
        if group[i % group.len()] == rank {
            let (m, v) = opt.state(i);
            payload.push(m.clone());
            payload.push(v.clone());
        }
    }
    payload.push(u64_entry("", opt.steps()).1);
    payload
}

/// Apply a donor's re-shard payload (inverse of [`rejoin_state_payload`];
/// both sides derive the owned set positionally, so layout mismatches are
/// protocol bugs, not runtime conditions — hence the asserts).
fn apply_rejoin_state(
    stage_model: &mut StageModel,
    opt: &mut AdamW,
    shared_ixs: &[usize],
    replica_group: &[usize],
    replica_shared: &[usize],
    rank: usize,
    payload: Vec<Tensor>,
) {
    let n = stage_model.store.len();
    let mut it = payload.into_iter();
    for i in 0..n {
        let fresh = it.next().expect("re-shard payload missing a parameter");
        assert_eq!(fresh.shape(), stage_model.store.get(ParamId(i)).shape());
        *stage_model.store.get_mut(ParamId(i)) = fresh;
    }
    for i in 0..n {
        let group: &[usize] = if shared_ixs.contains(&i) { replica_shared } else { replica_group };
        if group[i % group.len()] == rank {
            let m = it.next().expect("re-shard payload missing a first moment");
            let v = it.next().expect("re-shard payload missing a second moment");
            let (m_slot, v_slot) = opt.state_mut(i);
            assert_eq!(m.shape(), m_slot.shape());
            *m_slot = m;
            *v_slot = v;
        }
    }
    let steps = entry_u64(&it.next().expect("re-shard payload missing the step counter"))
        .expect("malformed step counter in re-shard payload");
    opt.set_steps(steps);
    assert!(it.next().is_none(), "re-shard payload has trailing tensors");
}

/// Send a relayouted activation to the next stage.
fn send_relayout(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    value: &Tensor,
) -> Result<(), CommError> {
    for msg in src_layout.routing_to(dst_layout, coords.wp_row, coords.wp_col, coords.sp) {
        let dst_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage + 1,
            wp_row: msg.dst.0,
            wp_col: msg.dst.1,
            sp: msg.dst.2,
        });
        let payload = gather(value, &msg.src_rows);
        comm.send(dst_rank, CommClass::P2p, vec![payload])?;
    }
    Ok(())
}

/// Receive a relayouted activation from the previous stage.
fn recv_relayout(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    rows: usize,
    dim: usize,
) -> Result<Tensor, CommError> {
    let mut out = Tensor::zeros(&[rows, dim]);
    for ((ra, rb, sp), msg) in
        ActLayout::routing_from(src_layout, dst_layout, coords.wp_row, coords.wp_col, coords.sp)
    {
        let src_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage - 1,
            wp_row: ra,
            wp_col: rb,
            sp,
        });
        let payload = comm.recv(src_rank)?.pop().unwrap();
        for (i, &drow) in msg.dst_rows.iter().enumerate() {
            out.row_mut(drow).copy_from_slice(payload.row(i));
        }
    }
    Ok(out)
}

/// Send input-gradients back to the previous stage (transpose of
/// [`recv_relayout`]).
fn send_grads_back(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    g_in: &Tensor,
) -> Result<(), CommError> {
    for ((ra, rb, sp), msg) in
        ActLayout::routing_from(src_layout, dst_layout, coords.wp_row, coords.wp_col, coords.sp)
    {
        let src_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage - 1,
            wp_row: ra,
            wp_col: rb,
            sp,
        });
        let payload = gather(g_in, &msg.dst_rows);
        comm.send(src_rank, CommClass::P2p, vec![payload])?;
    }
    Ok(())
}

/// Receive output-gradients from the next stage (transpose of
/// [`send_relayout`]).
fn recv_grads_back(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    rows: usize,
    dim: usize,
) -> Result<Tensor, CommError> {
    let mut out = Tensor::zeros(&[rows, dim]);
    for msg in src_layout.routing_to(dst_layout, coords.wp_row, coords.wp_col, coords.sp) {
        let dst_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage + 1,
            wp_row: msg.dst.0,
            wp_col: msg.dst.1,
            sp: msg.dst.2,
        });
        let payload = comm.recv(dst_rank)?.pop().unwrap();
        for (i, &srow) in msg.src_rows.iter().enumerate() {
            out.row_mut(srow).copy_from_slice(payload.row(i));
        }
    }
    Ok(out)
}
