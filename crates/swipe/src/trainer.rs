//! End-to-end distributed SWiPe training.
//!
//! Each rank runs the 1F1B schedule over its stage, with window/sequence
//! parallel activations inside each block, shared-seed diffusion times across
//! model-parallel ranks (§VI-B), gradient reduction over DP×WP×SP, and a
//! ZeRO-1-style sharded optimizer (owner-updates + parameter broadcast).
//!
//! [`reference_grads`] computes the *same* objective on a single rank with
//! the same noise realizations, enabling the distributed ≡ single-rank
//! equivalence tests in `tests/`.

use crate::comm::{CommClass, Communicator, TrafficReport, World};
use crate::data::{gather, Field, WindowSource};
use crate::layout::ActLayout;
use crate::schedule::{one_f_one_b, Action};
use crate::stage::{StageKind, StageModel, StageRun};
use crate::topology::{RankCoords, SwipeTopology};
use aeris_core::AerisModel;
use aeris_diffusion::TrigFlow;
use aeris_nn::window::WindowGrid;
use aeris_nn::{AdamW, AdamWConfig, ParamId, RopeTable};
use aeris_tensor::{Rng, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Distributed training configuration.
#[derive(Clone, Debug)]
pub struct SwipeConfig {
    pub topo: SwipeTopology,
    /// Gradient accumulation steps = microbatches per model replica per step.
    pub gas: usize,
    /// Training steps to run.
    pub n_steps: usize,
    /// Learning rate (constant for these short equivalence runs).
    pub lr: f32,
    /// Base seed for diffusion times and noise fields.
    pub seed: u64,
    pub adamw: AdamWConfig,
}

/// What a training run reports back.
pub struct TrainReport {
    /// Global objective per step.
    pub losses: Vec<f64>,
    /// Communication traffic by class.
    pub traffic: TrafficReport,
    /// Maximum concurrently-live activation elements on any rank.
    pub max_activation_elems: usize,
    /// Final parameters (reference-model names), from the dp=0/wp=(0,0)/sp=0
    /// replica of each stage.
    pub final_params: HashMap<String, Tensor>,
}

/// The shared diffusion time for (step, dp, microbatch): identical on every
/// model-parallel rank, independent across data-parallel replicas.
pub fn shared_t(tf: &TrigFlow, seed: u64, step: usize, dp: usize, m: usize) -> f32 {
    let key = (step as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((dp as u64) << 32)
        .wrapping_add(m as u64);
    let mut rng = Rng::seed_from(seed ^ 0x7117).stream(key);
    tf.sample_t(&mut rng)
}

/// Deterministic per-token Gaussian noise rows: spatially uncorrelated and
/// independent per sample, but reproducible by any rank that knows the token
/// ids (the first and last pipeline stages need the same `z`).
pub fn noise_rows(seed: u64, sample: usize, tokens: &[usize], channels: usize) -> Tensor {
    let base = Rng::seed_from(seed ^ 0x2077).stream(sample as u64);
    let mut out = Tensor::zeros(&[tokens.len(), channels]);
    for (r, &tok) in tokens.iter().enumerate() {
        let mut rng = base.stream(tok as u64 + 1);
        for c in 0..channels {
            *out.at_mut(&[r, c]) = rng.normal();
        }
    }
    out
}

/// Single-rank reference: the identical objective, noise, and gradient
/// averaging as one distributed step, computed on the full model. Returns
/// (mean loss, per-parameter-name gradients).
pub fn reference_grads(
    model: &AerisModel,
    source: &dyn WindowSource,
    step_schedule: &[Vec<usize>],
    weights: &Tensor,
    seed: u64,
    step: usize,
) -> (f64, HashMap<String, Tensor>) {
    let tf = TrigFlow::default();
    let tokens: Vec<usize> = (0..model.cfg.tokens()).collect();
    let mut acc: Vec<Option<Tensor>> = vec![None; model.store.len()];
    let mut total_loss = 0.0;
    let mut count = 0usize;
    for (dp, micro) in step_schedule.iter().enumerate() {
        for (m, &sample) in micro.iter().enumerate() {
            let t = shared_t(&tf, seed, step, dp, m);
            let x0 = source.load_rows(sample, Field::Residual, &tokens);
            let prev = source.load_rows(sample, Field::Prev, &tokens);
            let forc = source.load_rows(sample, Field::Forcing, &tokens);
            let z = noise_rows(seed, sample, &tokens, model.cfg.channels);
            let x_t = tf.interpolate(&x0, &z, t);
            let v_target = tf.velocity_target(&x0, &z, t);
            let input = model.assemble_input(&x_t, &prev, &forc);
            let mut tape = aeris_autodiff::Tape::new();
            let mut binding = aeris_nn::Binding::new(&model.store);
            let iv = tape.constant(input);
            let out = model.forward(&mut tape, &mut binding, iv, t);
            let loss = tape.weighted_mse(out, &v_target, weights);
            total_loss += tape.value(loss).data()[0] as f64;
            let mut grads = tape.backward(loss);
            for (slot, g) in acc.iter_mut().zip(binding.collect_grads(&mut grads)) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
            count += 1;
        }
    }
    let inv = 1.0 / count as f32;
    let mut by_name = HashMap::new();
    for (i, slot) in acc.into_iter().enumerate() {
        if let Some(mut g) = slot {
            g.scale_inplace(inv);
            by_name.insert(model.store.name(ParamId(i)).to_string(), g);
        }
    }
    (total_loss / count as f64, by_name)
}

/// The distributed trainer entry point.
pub struct DistributedTrainer;

impl DistributedTrainer {
    /// Run `cfg.n_steps` of SWiPe training starting from `reference`'s
    /// parameters. `schedule[step][dp]` lists the GAS sample indices each
    /// data-parallel replica consumes at that step.
    pub fn train(
        reference: &AerisModel,
        cfg: &SwipeConfig,
        source: &(dyn WindowSource + Sync),
        schedule: &[Vec<Vec<usize>>],
        weights: &Tensor,
    ) -> TrainReport {
        let topo = cfg.topo;
        assert_eq!(
            topo.pp,
            reference.cfg.n_layers * reference.cfg.blocks_per_layer + 2,
            "pipeline stages must equal blocks + 2 (separated I/O/embedding stages)"
        );
        assert_eq!(schedule.len(), cfg.n_steps);
        for s in schedule {
            assert_eq!(s.len(), topo.dp);
            for micro in s {
                assert_eq!(micro.len(), cfg.gas);
            }
        }
        let world = World::new(topo.world_size());
        let losses: Mutex<Vec<f64>> = Mutex::new(vec![0.0; cfg.n_steps]);
        let final_params: Mutex<HashMap<String, Tensor>> = Mutex::new(HashMap::new());
        let max_act = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for rank in 0..topo.world_size() {
                let comm = world.communicator(rank);
                let losses = &losses;
                let final_params = &final_params;
                let max_act = &max_act;
                scope.spawn(move || {
                    run_rank(
                        comm, topo, cfg, reference, source, schedule, weights, losses,
                        final_params, max_act,
                    );
                });
            }
        });

        TrainReport {
            losses: losses.into_inner(),
            traffic: world.traffic(),
            max_activation_elems: max_act.load(Ordering::Relaxed),
            final_params: final_params.into_inner(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    mut comm: Communicator,
    topo: SwipeTopology,
    cfg: &SwipeConfig,
    reference: &AerisModel,
    source: &(dyn WindowSource + Sync),
    schedule: &[Vec<Vec<usize>>],
    weights: &Tensor,
    losses: &Mutex<Vec<f64>>,
    final_params: &Mutex<HashMap<String, Tensor>>,
    max_act: &AtomicUsize,
) {
    let coords = topo.coords_of(comm.rank());
    let mcfg = &reference.cfg;
    let grid = WindowGrid::new(mcfg.grid_h, mcfg.grid_w, mcfg.window.0, mcfg.window.1);
    let n_blocks = topo.pp - 2;
    let tf = TrigFlow::default();

    let kind = match coords.stage {
        0 => StageKind::Input,
        s if s == topo.pp - 1 => StageKind::Head,
        s => StageKind::Block(s - 1),
    };
    let stage_model = StageModel::from_reference(reference, kind);

    // Layouts: stage 0 uses block 0's layout; block b its own; head uses the
    // last block's.
    let block_layout = |b: usize| {
        ActLayout::new(grid, reference.blocks[b].shifted, topo.wp_a, topo.wp_b, topo.sp)
    };
    let my_layout = match kind {
        StageKind::Input => block_layout(0),
        StageKind::Block(b) => block_layout(b),
        StageKind::Head => block_layout(n_blocks - 1),
    };
    let next_layout = match kind {
        StageKind::Input => Some(block_layout(0)),
        StageKind::Block(b) if b + 1 < n_blocks => Some(block_layout(b + 1)),
        StageKind::Block(b) => {
            debug_assert_eq!(b, n_blocks - 1);
            Some(block_layout(n_blocks - 1))
        }
        StageKind::Head => None,
    };
    let prev_layout = match kind {
        StageKind::Input => None,
        StageKind::Block(0) => Some(block_layout(0)),
        StageKind::Block(b) => Some(block_layout(b - 1)),
        StageKind::Head => Some(block_layout(n_blocks - 1)),
    };

    let rope = RopeTable::new(mcfg.window.0, mcfg.window.1, mcfg.head_dim(), 0, 0);
    let sp_group = topo.sp_group(coords);
    let my_tokens = my_layout.tokens_of(coords.wp_row, coords.wp_col, coords.sp);
    let my_pos: Tensor = {
        let mut t = Tensor::zeros(&[my_tokens.len()]);
        for (i, &tok) in my_tokens.iter().enumerate() {
            t.data_mut()[i] = reference.pos_field.data()[tok];
        }
        t
    };
    let my_weight_rows = gather(weights, &my_tokens);

    // ZeRO-1 ownership: stage-local params shard over the stage's gradient
    // group; globally shared (time.*) params shard over all ranks.
    let grad_group = topo.grad_group(coords);
    let all_ranks = topo.all_ranks();
    // Shared (time-conditioner) params are replicated across the interior
    // stages only; their reduction group must exclude the edge stages, which
    // do not hold them (they would otherwise never join the collective).
    let shared_group = topo.block_stage_ranks();
    let shared_ixs: Vec<usize> = stage_model.shared_param_ixs();
    let mut opt = AdamW::new(&stage_model.store, cfg.adamw);
    let mut stage_model = stage_model;

    let actions = one_f_one_b(coords.stage, topo.pp, cfg.gas);
    let dim = mcfg.dim;

    for step in 0..cfg.n_steps {
        let mut runs: HashMap<usize, StageRun> = HashMap::new();
        let mut grads: Vec<Option<Tensor>> = vec![None; stage_model.store.len()];
        let mut my_loss = 0.0f64;

        for action in &actions {
            match *action {
                Action::Forward(m) => {
                    let sample = schedule[step][coords.dp][m];
                    let t = shared_t(&tf, cfg.seed, step, coords.dp, m);
                    match kind {
                        StageKind::Input => {
                            let x0 = source.load_rows(sample, Field::Residual, &my_tokens);
                            let prev = source.load_rows(sample, Field::Prev, &my_tokens);
                            let forc = source.load_rows(sample, Field::Forcing, &my_tokens);
                            let z = noise_rows(cfg.seed, sample, &my_tokens, mcfg.channels);
                            let x_t = tf.interpolate(&x0, &z, t);
                            let cat = Tensor::concat_cols(&[&x_t, &prev, &forc]);
                            let input = aeris_nn::posenc::add_pos_encoding(&cat, &my_pos);
                            let run = stage_model.forward_input(input);
                            send_relayout(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                run.tape.value(run.out),
                            );
                            runs.insert(m, run);
                        }
                        StageKind::Block(_) => {
                            let x_in = recv_relayout(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, my_layout.rows_per_rank(), dim,
                            );
                            let run = stage_model.forward_block(
                                x_in, t, &my_layout, &rope, &mut comm, &sp_group,
                            );
                            send_relayout(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                run.tape.value(run.out),
                            );
                            runs.insert(m, run);
                        }
                        StageKind::Head => {
                            let x_in = recv_relayout(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, my_layout.rows_per_rank(), dim,
                            );
                            let x0 = source.load_rows(sample, Field::Residual, &my_tokens);
                            let z = noise_rows(cfg.seed, sample, &my_tokens, mcfg.channels);
                            let v_target = tf.velocity_target(&x0, &z, t);
                            let run = stage_model.forward_head(
                                x_in, &v_target, &my_weight_rows, mcfg.tokens(),
                            );
                            my_loss += run.loss;
                            runs.insert(m, run);
                        }
                    }
                }
                Action::Backward(m) => {
                    let run = runs.remove(&m).expect("forward before backward");
                    match kind {
                        StageKind::Head => {
                            let g_in = stage_model.backward_head(run, &mut grads);
                            send_grads_back(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, &g_in,
                            );
                        }
                        StageKind::Block(_) => {
                            let g_out = recv_grads_back(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                my_layout.rows_per_rank(), dim,
                            );
                            let g_in = stage_model.backward_block(
                                run, g_out, &mut comm, &sp_group, &mut grads,
                            );
                            send_grads_back(
                                &mut comm, &topo, coords, prev_layout.as_ref().unwrap(),
                                &my_layout, &g_in,
                            );
                        }
                        StageKind::Input => {
                            let g_out = recv_grads_back(
                                &mut comm, &topo, coords, &my_layout,
                                next_layout.as_ref().unwrap(),
                                my_layout.rows_per_rank(), dim,
                            );
                            stage_model.backward_input(run, g_out, &mut grads);
                        }
                    }
                }
            }
            // Activation accounting: all in-flight microbatch tapes.
            let live: usize = runs.values().map(|r| r.activation_elems()).sum();
            max_act.fetch_max(live, Ordering::Relaxed);
        }

        // ---- gradient reduction ----
        let gbs = (topo.dp * cfg.gas) as f32;
        for i in 0..stage_model.store.len() {
            let shape = stage_model.store.get(ParamId(i)).shape().to_vec();
            let local = grads[i].take().unwrap_or_else(|| Tensor::zeros(&shape));
            let group: &[usize] =
                if shared_ixs.contains(&i) { &shared_group } else { &grad_group };
            let mut reduced = comm.allreduce_sum(group, &local);
            reduced.scale_inplace(1.0 / gbs);
            grads[i] = Some(reduced);
        }

        // ---- ZeRO-1 sharded optimizer ----
        // Owner updates its shard with AdamW state, then broadcasts the fresh
        // parameter to the group.
        let mut own_grads: Vec<Option<Tensor>> = vec![None; stage_model.store.len()];
        for i in 0..stage_model.store.len() {
            let group: &[usize] =
                if shared_ixs.contains(&i) { &shared_group } else { &grad_group };
            let owner = group[i % group.len()];
            if owner == comm.rank() {
                own_grads[i] = grads[i].take();
            }
        }
        opt.step(&mut stage_model.store, &own_grads, cfg.lr);
        for i in 0..stage_model.store.len() {
            let group: &[usize] =
                if shared_ixs.contains(&i) { &shared_group } else { &grad_group };
            let owner_ix = i % group.len();
            let value = if group[owner_ix] == comm.rank() {
                Some(stage_model.store.get(ParamId(i)).clone())
            } else {
                None
            };
            let fresh = comm.broadcast(group, owner_ix, value);
            *stage_model.store.get_mut(ParamId(i)) = fresh;
        }

        // ---- loss reporting: sum local head losses over all ranks ----
        let loss_sum = comm
            .allreduce_sum(&all_ranks, &Tensor::from_slice(&[my_loss as f32]))
            .data()[0] as f64;
        if comm.rank() == 0 {
            losses.lock()[step] = loss_sum / (topo.dp * cfg.gas) as f64;
        }
    }

    // Contribute final params from the canonical replica.
    if coords.dp == 0 && coords.wp_row == 0 && coords.wp_col == 0 && coords.sp == 0 {
        let mut fp = final_params.lock();
        for (_, name, v) in stage_model.store.iter() {
            // Shared params exist on every block stage; one copy suffices
            // (they are kept in sync by construction).
            fp.entry(name.to_string()).or_insert_with(|| v.clone());
        }
    }
}

/// Send a relayouted activation to the next stage.
fn send_relayout(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    value: &Tensor,
) {
    for msg in src_layout.routing_to(dst_layout, coords.wp_row, coords.wp_col, coords.sp) {
        let dst_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage + 1,
            wp_row: msg.dst.0,
            wp_col: msg.dst.1,
            sp: msg.dst.2,
        });
        let payload = gather(value, &msg.src_rows);
        comm.send(dst_rank, CommClass::P2p, vec![payload]);
    }
}

/// Receive a relayouted activation from the previous stage.
fn recv_relayout(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    rows: usize,
    dim: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[rows, dim]);
    for ((ra, rb, sp), msg) in
        ActLayout::routing_from(src_layout, dst_layout, coords.wp_row, coords.wp_col, coords.sp)
    {
        let src_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage - 1,
            wp_row: ra,
            wp_col: rb,
            sp,
        });
        let payload = comm.recv(src_rank).pop().unwrap();
        for (i, &drow) in msg.dst_rows.iter().enumerate() {
            out.row_mut(drow).copy_from_slice(payload.row(i));
        }
    }
    out
}

/// Send input-gradients back to the previous stage (transpose of
/// [`recv_relayout`]).
fn send_grads_back(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    g_in: &Tensor,
) {
    for ((ra, rb, sp), msg) in
        ActLayout::routing_from(src_layout, dst_layout, coords.wp_row, coords.wp_col, coords.sp)
    {
        let src_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage - 1,
            wp_row: ra,
            wp_col: rb,
            sp,
        });
        let payload = gather(g_in, &msg.dst_rows);
        comm.send(src_rank, CommClass::P2p, vec![payload]);
    }
}

/// Receive output-gradients from the next stage (transpose of
/// [`send_relayout`]).
fn recv_grads_back(
    comm: &mut Communicator,
    topo: &SwipeTopology,
    coords: RankCoords,
    src_layout: &ActLayout,
    dst_layout: &ActLayout,
    rows: usize,
    dim: usize,
) -> Tensor {
    let mut out = Tensor::zeros(&[rows, dim]);
    for msg in src_layout.routing_to(dst_layout, coords.wp_row, coords.wp_col, coords.sp) {
        let dst_rank = topo.rank_of(RankCoords {
            dp: coords.dp,
            stage: coords.stage + 1,
            wp_row: msg.dst.0,
            wp_col: msg.dst.1,
            sp: msg.dst.2,
        });
        let payload = comm.recv(dst_rank).pop().unwrap();
        for (i, &srow) in msg.src_rows.iter().enumerate() {
            out.row_mut(srow).copy_from_slice(payload.row(i));
        }
    }
    out
}
