//! Thread-rank communicator with byte-accurate traffic accounting.
//!
//! Message passing uses a shared mailbox keyed by `(src, dst, tag)`; tags are
//! derived from per-(pair/group) operation counters so that, as on a real
//! interconnect, matching is by order within a channel and collectives cannot
//! cross-talk. Collectives are deterministic: reductions combine contributions
//! in group-rank order regardless of arrival order, so distributed runs are
//! bitwise reproducible for a fixed topology.

use aeris_tensor::Tensor;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Traffic class, matching the paper's communication breakdown (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommClass {
    /// Pipeline send/recv (stage-to-stage activations and gradients).
    P2p,
    /// Ulysses / window-parallel all-to-all.
    AllToAll,
    /// Gradient allreduce.
    AllReduce,
    /// ZeRO-1 parameter allgather / broadcast.
    AllGather,
    /// Control broadcasts.
    Broadcast,
}

const CLASSES: [CommClass; 5] = [
    CommClass::P2p,
    CommClass::AllToAll,
    CommClass::AllReduce,
    CommClass::AllGather,
    CommClass::Broadcast,
];

#[derive(Default)]
struct Mailbox {
    slots: Mutex<HashMap<(usize, usize, u64), Vec<Tensor>>>,
    cond: Condvar,
}

struct WorldInner {
    n: usize,
    mailbox: Mailbox,
    /// bytes sent per (rank, class).
    sent: Vec<[AtomicU64; 5]>,
}

/// A communication world of `n` thread ranks.
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

/// Per-rank, per-class traffic totals (bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    pub per_rank: Vec<HashMap<&'static str, u64>>,
}

impl TrafficReport {
    /// Total bytes of a class across all ranks.
    pub fn total(&self, class: CommClass) -> u64 {
        self.per_rank.iter().map(|m| m.get(class_name(class)).copied().unwrap_or(0)).sum()
    }

    /// Bytes of a class sent by one rank.
    pub fn rank_total(&self, rank: usize, class: CommClass) -> u64 {
        self.per_rank[rank].get(class_name(class)).copied().unwrap_or(0)
    }
}

fn class_name(c: CommClass) -> &'static str {
    match c {
        CommClass::P2p => "p2p",
        CommClass::AllToAll => "alltoall",
        CommClass::AllReduce => "allreduce",
        CommClass::AllGather => "allgather",
        CommClass::Broadcast => "broadcast",
    }
}

impl World {
    /// Create a world with `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let sent = (0..n).map(|_| std::array::from_fn(|_| AtomicU64::new(0))).collect();
        World { inner: Arc::new(WorldInner { n, mailbox: Mailbox::default(), sent }) }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.n
    }

    /// A communicator handle for `rank`.
    pub fn communicator(&self, rank: usize) -> Communicator {
        assert!(rank < self.inner.n);
        Communicator { rank, world: self.clone(), chan_seq: HashMap::new(), group_seq: HashMap::new() }
    }

    /// Snapshot of traffic counters.
    pub fn traffic(&self) -> TrafficReport {
        let per_rank = self
            .inner
            .sent
            .iter()
            .map(|counters| {
                CLASSES
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (class_name(c), counters[i].load(Ordering::Relaxed)))
                    .collect()
            })
            .collect();
        TrafficReport { per_rank }
    }

    /// Reset traffic counters.
    pub fn reset_traffic(&self) {
        for counters in &self.inner.sent {
            for c in counters {
                c.store(0, Ordering::Relaxed);
            }
        }
    }

    fn account(&self, rank: usize, class: CommClass, bytes: u64) {
        let i = CLASSES.iter().position(|&c| c == class).unwrap();
        self.inner.sent[rank][i].fetch_add(bytes, Ordering::Relaxed);
    }

    fn put(&self, src: usize, dst: usize, tag: u64, payload: Vec<Tensor>) {
        let mut slots = self.inner.mailbox.slots.lock();
        let prev = slots.insert((src, dst, tag), payload);
        assert!(prev.is_none(), "duplicate message ({src}->{dst}, tag {tag})");
        self.inner.mailbox.cond.notify_all();
    }

    fn take(&self, src: usize, dst: usize, tag: u64) -> Vec<Tensor> {
        let mut slots = self.inner.mailbox.slots.lock();
        loop {
            if let Some(p) = slots.remove(&(src, dst, tag)) {
                return p;
            }
            self.inner.mailbox.cond.wait(&mut slots);
        }
    }
}

/// A rank's endpoint into the world. Not `Clone`: one per rank thread.
pub struct Communicator {
    rank: usize,
    world: World,
    /// Sequence counters per peer channel (send side and recv side advance in
    /// lockstep because each directed channel is FIFO-by-construction).
    chan_seq: HashMap<(usize, usize), u64>,
    /// Sequence counters per collective group.
    group_seq: HashMap<Vec<usize>, u64>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.world.size()
    }

    fn next_chan_tag(&mut self, src: usize, dst: usize) -> u64 {
        let c = self.chan_seq.entry((src, dst)).or_insert(0);
        let t = *c;
        *c += 1;
        t
    }

    /// Per-group operation tag: a fingerprint of the member list mixed with a
    /// per-group sequence counter. Distinct groups that share rank pairs must
    /// not collide in the mailbox, so the group identity is part of the tag.
    fn next_group_tag(&mut self, group: &[usize]) -> u64 {
        let c = self.group_seq.entry(group.to_vec()).or_insert(0);
        let count = *c;
        *c += 1;
        let mut h: u64 = 0xcbf29ce484222325;
        for &r in group {
            h ^= r as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= count.wrapping_mul(0x9E3779B97F4A7C15);
        h = h.wrapping_mul(0x100000001b3);
        // Reserve the low 16 bits for the member index.
        h << 16
    }

    fn payload_bytes(payload: &[Tensor]) -> u64 {
        payload.iter().map(|t| 4 * t.len() as u64).sum()
    }

    /// Send tensors to `dst` (non-blocking; buffered in the mailbox).
    pub fn send(&mut self, dst: usize, class: CommClass, payload: Vec<Tensor>) {
        let tag = self.next_chan_tag(self.rank, dst);
        self.world.account(self.rank, class, Self::payload_bytes(&payload));
        self.world.put(self.rank, dst, tag, payload);
    }

    /// Blocking receive of the next message from `src`.
    pub fn recv(&mut self, src: usize) -> Vec<Tensor> {
        let tag = self.next_chan_tag(src, self.rank);
        self.world.take(src, self.rank, tag)
    }

    /// Barrier over a group (all members must call with the identical group).
    pub fn barrier(&mut self, group: &[usize]) {
        let _ = self.allgather(group, CommClass::Broadcast, Tensor::zeros(&[1]));
    }

    /// All-to-all within `group`: `chunks[j]` goes to group member `j`;
    /// returns the chunks received from each member (self-chunk passes
    /// through untouched and un-accounted, as on a real interconnect).
    pub fn alltoall(&mut self, group: &[usize], mut chunks: Vec<Tensor>) -> Vec<Tensor> {
        assert_eq!(chunks.len(), group.len());
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        // Post sends.
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![std::mem::replace(&mut chunks[j], Tensor::zeros(&[0]))];
            self.world.account(self.rank, CommClass::AllToAll, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | j as u64, payload);
        }
        // Collect receives.
        let mut out = Vec::with_capacity(group.len());
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                out.push(std::mem::replace(&mut chunks[me], Tensor::zeros(&[0])));
            } else {
                let mut p = self.world.take(src, self.rank, tag_base | me as u64);
                assert_eq!(p.len(), 1);
                out.push(p.pop().unwrap());
            }
        }
        out
    }

    /// Allgather within `group`: returns every member's tensor, in group
    /// order.
    pub fn allgather(&mut self, group: &[usize], class: CommClass, value: Tensor) -> Vec<Tensor> {
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![value.clone()];
            self.world.account(self.rank, class, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | me as u64, payload);
        }
        let mut out = Vec::with_capacity(group.len());
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                out.push(value.clone());
            } else {
                let mut p = self.world.take(src, self.rank, tag_base | j as u64);
                out.push(p.pop().unwrap());
            }
        }
        out
    }

    /// Sum-allreduce within `group`, implemented as reduce-scatter +
    /// allgather so per-rank traffic is ≈ 2×data regardless of group size
    /// (the bandwidth-optimal ring volume — this is what makes the paper's
    /// "gradient-allreduce volume is unchanged by WP" claim measurable).
    /// Deterministic: every chunk is reduced in group order by its owner.
    pub fn allreduce_sum(&mut self, group: &[usize], value: &Tensor) -> Tensor {
        let n = group.len();
        if n == 1 {
            return value.clone();
        }
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        let len = value.len();
        let chunk_bounds = |j: usize| {
            let lo = len * j / n;
            let hi = len * (j + 1) / n;
            (lo, hi)
        };
        // Reduce-scatter: send my slice of chunk j to its owner j.
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let (lo, hi) = chunk_bounds(j);
            let payload = vec![Tensor::from_slice(&value.data()[lo..hi])];
            self.world.account(self.rank, CommClass::AllReduce, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | j as u64, payload);
        }
        let (mlo, mhi) = chunk_bounds(me);
        let mut mine: Vec<f32> = value.data()[mlo..mhi].to_vec();
        // Deterministic accumulation: add contributions in group order.
        let mut contributions: Vec<Option<Tensor>> = vec![None; n];
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let mut p = self.world.take(src, self.rank, tag_base | me as u64);
            contributions[j] = Some(p.pop().unwrap());
        }
        for (j, c) in contributions.iter().enumerate() {
            if j == me {
                continue;
            }
            let c = c.as_ref().unwrap();
            for (m, &v) in mine.iter_mut().zip(c.data()) {
                *m += v;
            }
        }
        // Allgather the reduced chunks.
        let reduced = Tensor::from_slice(&mine);
        let tag2 = self.next_group_tag(group);
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![reduced.clone()];
            self.world.account(self.rank, CommClass::AllReduce, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag2 | me as u64, payload);
        }
        let mut out = vec![0.0f32; len];
        out[mlo..mhi].copy_from_slice(&mine);
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let p = self.world.take(src, self.rank, tag2 | j as u64);
            let (lo, hi) = chunk_bounds(j);
            out[lo..hi].copy_from_slice(p[0].data());
        }
        Tensor::from_vec(value.shape(), out)
    }

    /// Broadcast from `group[root_ix]` to the group.
    pub fn broadcast(&mut self, group: &[usize], root_ix: usize, value: Option<Tensor>) -> Tensor {
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        if me == root_ix {
            let v = value.expect("root must provide a value");
            for (j, &dst) in group.iter().enumerate() {
                if j == me {
                    continue;
                }
                let payload = vec![v.clone()];
                self.world.account(self.rank, CommClass::AllGather, Self::payload_bytes(&payload));
                self.world.put(self.rank, dst, tag_base | j as u64, payload);
            }
            v
        } else {
            assert!(value.is_none(), "non-root must not provide a value");
            let mut p = self.world.take(group[root_ix], self.rank, tag_base | me as u64);
            p.pop().unwrap()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;
    use std::thread;

    fn run_ranks<F>(n: usize, f: F) -> Vec<TrafficReport>
    where
        F: Fn(Communicator) + Sync,
    {
        let world = World::new(n);
        thread::scope(|s| {
            for r in 0..n {
                let comm = world.communicator(r);
                let f = &f;
                s.spawn(move || f(comm));
            }
        });
        vec![world.traffic()]
    }

    #[test]
    fn send_recv_roundtrip_and_fifo_order() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, CommClass::P2p, vec![Tensor::from_slice(&[1.0])]);
                c.send(1, CommClass::P2p, vec![Tensor::from_slice(&[2.0])]);
            } else {
                let a = c.recv(0);
                let b = c.recv(0);
                assert_eq!(a[0].data(), &[1.0]);
                assert_eq!(b[0].data(), &[2.0]);
            }
        });
    }

    #[test]
    fn allreduce_sums_deterministically() {
        let group: Vec<usize> = (0..4).collect();
        run_ranks(4, |mut c| {
            let v = Tensor::from_slice(&[c.rank() as f32, 1.0]);
            let g = group.clone();
            let out = c.allreduce_sum(&g, &v);
            assert_eq!(out.data(), &[6.0, 4.0]);
            // Repeat to exercise tag sequencing.
            let out2 = c.allreduce_sum(&g, &v);
            assert_eq!(out2.data(), &[6.0, 4.0]);
        });
    }

    #[test]
    fn alltoall_exchanges_correct_chunks() {
        let group: Vec<usize> = (0..3).collect();
        run_ranks(3, |mut c| {
            let r = c.rank() as f32;
            let chunks: Vec<Tensor> =
                (0..3).map(|j| Tensor::from_slice(&[r * 10.0 + j as f32])).collect();
            let out = c.alltoall(&group, chunks);
            for (j, t) in out.iter().enumerate() {
                // Received from member j: their chunk addressed to me.
                assert_eq!(t.data(), &[j as f32 * 10.0 + r]);
            }
        });
    }

    #[test]
    fn broadcast_distributes_root_value() {
        let group: Vec<usize> = (0..3).collect();
        run_ranks(3, |mut c| {
            let v = if c.rank() == 1 { Some(Tensor::from_slice(&[7.0, 8.0])) } else { None };
            let out = c.broadcast(&group, 1, v);
            assert_eq!(out.data(), &[7.0, 8.0]);
        });
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        // Two disjoint groups run different numbers of collectives.
        run_ranks(4, |mut c| {
            let g = if c.rank() < 2 { vec![0, 1] } else { vec![2, 3] };
            let reps = if c.rank() < 2 { 3 } else { 5 };
            for i in 0..reps {
                let v = Tensor::from_slice(&[i as f32]);
                let out = c.allreduce_sum(&g, &v);
                assert_eq!(out.data(), &[2.0 * i as f32]);
            }
        });
    }

    #[test]
    fn traffic_accounting_counts_sent_bytes() {
        let world = World::new(2);
        thread::scope(|s| {
            let mut c0 = world.communicator(0);
            let mut c1 = world.communicator(1);
            s.spawn(move || {
                c0.send(1, CommClass::P2p, vec![Tensor::zeros(&[10])]);
            });
            s.spawn(move || {
                let _ = c1.recv(0);
            });
        });
        let t = world.traffic();
        assert_eq!(t.rank_total(0, CommClass::P2p), 40);
        assert_eq!(t.rank_total(1, CommClass::P2p), 0);
        assert_eq!(t.total(CommClass::AllToAll), 0);
        world.reset_traffic();
        assert_eq!(world.traffic().total(CommClass::P2p), 0);
    }

    #[test]
    fn stress_concurrent_collectives() {
        let group: Vec<usize> = (0..8).collect();
        run_ranks(8, |mut c| {
            let mut rng = Rng::seed_from(c.rank() as u64);
            for _ in 0..20 {
                let v = Tensor::randn(&[16], &mut rng);
                let parts = c.allgather(&group, CommClass::AllGather, v.clone());
                assert_eq!(parts.len(), 8);
                assert_eq!(parts[c.rank()], v);
            }
        });
    }
}
