//! Thread-rank communicator with byte-accurate traffic accounting and
//! fault-tolerant delivery.
//!
//! Message passing uses a shared mailbox keyed by `(src, dst, tag)`; tags are
//! derived from per-(pair/group) operation counters so that, as on a real
//! interconnect, matching is by order within a channel and collectives cannot
//! cross-talk. Collectives are deterministic: reductions combine contributions
//! in group-rank order regardless of arrival order, so distributed runs are
//! bitwise reproducible for a fixed topology.
//!
//! Fault tolerance (robustness layer):
//! - every blocking wait carries a deadline ([`CommConfig::deadline`]); an
//!   expired deadline surfaces as [`CommError::Timeout`] instead of hanging,
//! - point-to-point receives run a retransmit timer with exponential backoff
//!   that recovers messages suppressed by an injected drop fault; collectives
//!   fail fast (a lost collective contribution is a rank-level failure, so a
//!   retry storm would only delay the inevitable error),
//! - a [`FaultPlan`] injects delays, drops, and crashes deterministically;
//!   every hook is a no-op costing one branch when no plan is installed,
//! - dead ranks are tracked; waiting on a rank that died without having sent
//!   yields [`CommError::PeerDead`] as soon as the death is observed.

use crate::events::{EventLog, FaultEvent};
use crate::fault::{FaultPlan, MessageFault};
use aeris_obs::{CommBytes, SpanCategory, SpanGuard, Tracer};
use aeris_tensor::Tensor;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Traffic class, matching the paper's communication breakdown (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommClass {
    /// Pipeline send/recv (stage-to-stage activations and gradients).
    P2p,
    /// Ulysses / window-parallel all-to-all.
    AllToAll,
    /// Gradient allreduce.
    AllReduce,
    /// ZeRO-1 parameter allgather / broadcast.
    AllGather,
    /// Control broadcasts.
    Broadcast,
}

const CLASSES: [CommClass; 5] = [
    CommClass::P2p,
    CommClass::AllToAll,
    CommClass::AllReduce,
    CommClass::AllGather,
    CommClass::Broadcast,
];

/// A typed communication failure. Every blocking operation either completes
/// within its deadline or returns one of these — the runtime never deadlocks
/// on a lost message or a dead peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A blocking wait exceeded the configured deadline.
    Timeout { rank: usize, peer: usize, waited_ms: u64 },
    /// The awaited peer died before sending.
    PeerDead { rank: usize, peer: usize },
    /// This rank itself crashed (injected by the fault plan).
    Crashed { rank: usize },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { rank, peer, waited_ms } => {
                write!(f, "rank {rank}: wait for rank {peer} timed out after {waited_ms} ms")
            }
            CommError::PeerDead { rank, peer } => {
                write!(f, "rank {rank}: peer rank {peer} died before sending")
            }
            CommError::Crashed { rank } => write!(f, "rank {rank}: crashed (injected fault)"),
        }
    }
}

impl std::error::Error for CommError {}

/// Timeout and retry policy for blocking communication.
#[derive(Clone, Copy, Debug)]
pub struct CommConfig {
    /// Hard deadline for any single blocking wait. Generous by default: on an
    /// oversubscribed host (many rank threads per core) pipeline-fill waits
    /// are legitimately long; chaos tests override this downward.
    pub deadline: Duration,
    /// Initial retransmit-timer interval for point-to-point receives.
    pub retry_backoff: Duration,
    /// Ceiling for the exponentially growing retransmit interval.
    pub max_backoff: Duration,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            deadline: Duration::from_secs(120),
            retry_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// A buffered message plus its remaining injected-drop suppressions. While
/// `suppressed > 0` the message is invisible to its receiver, as if lost in
/// transit; each retransmit request recovers one suppression.
struct Envelope {
    payload: Vec<Tensor>,
    suppressed: u32,
}

#[derive(Default)]
struct MailboxState {
    slots: HashMap<(usize, usize, u64), Envelope>,
    /// Per directed channel: how many messages have been posted (the fault
    /// plan addresses messages by this index).
    posted: HashMap<(usize, usize), u64>,
}

#[derive(Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    cond: Condvar,
}

struct WorldInner {
    n: usize,
    mailbox: Mailbox,
    /// bytes sent per (rank, class).
    sent: Vec<[AtomicU64; 5]>,
    config: CommConfig,
    plan: Option<FaultPlan>,
    events: EventLog,
    tracer: Tracer,
    dead: Vec<AtomicBool>,
    /// Communication operations completed per rank (drives mid-step crash
    /// faults and lets tests aim a crash at a specific point in a run).
    ops: Vec<AtomicU64>,
}

/// A communication world of `n` thread ranks.
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

/// Per-rank, per-class traffic totals (bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    pub per_rank: Vec<HashMap<&'static str, u64>>,
}

impl TrafficReport {
    /// Total bytes of a class across all ranks.
    pub fn total(&self, class: CommClass) -> u64 {
        self.per_rank.iter().map(|m| m.get(class_name(class)).copied().unwrap_or(0)).sum()
    }

    /// Bytes of a class sent by one rank.
    pub fn rank_total(&self, rank: usize, class: CommClass) -> u64 {
        self.per_rank[rank].get(class_name(class)).copied().unwrap_or(0)
    }

    /// Per-class totals as the plain byte carrier the `aeris-obs` MFU report
    /// consumes.
    pub fn comm_bytes(&self) -> CommBytes {
        CommBytes {
            p2p: self.total(CommClass::P2p),
            alltoall: self.total(CommClass::AllToAll),
            allreduce: self.total(CommClass::AllReduce),
            allgather: self.total(CommClass::AllGather),
            broadcast: self.total(CommClass::Broadcast),
        }
    }

    /// Pretty-print the per-rank × per-class traffic table (bytes), with a
    /// totals row. Deterministic layout, suitable for example output and
    /// golden assertions.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>6}", "rank"));
        for &c in &CLASSES {
            out.push_str(&format!(" {:>14}", class_name(c)));
        }
        out.push_str(&format!(" {:>14}\n", "total"));
        let mut grand = 0u64;
        for (rank, _) in self.per_rank.iter().enumerate() {
            out.push_str(&format!("{rank:>6}"));
            let mut row_total = 0u64;
            for &c in &CLASSES {
                let b = self.rank_total(rank, c);
                row_total += b;
                out.push_str(&format!(" {b:>14}"));
            }
            grand += row_total;
            out.push_str(&format!(" {row_total:>14}\n"));
        }
        out.push_str(&format!("{:>6}", "all"));
        for &c in &CLASSES {
            out.push_str(&format!(" {:>14}", self.total(c)));
        }
        out.push_str(&format!(" {grand:>14}\n"));
        out
    }
}

fn class_name(c: CommClass) -> &'static str {
    match c {
        CommClass::P2p => "p2p",
        CommClass::AllToAll => "alltoall",
        CommClass::AllReduce => "allreduce",
        CommClass::AllGather => "allgather",
        CommClass::Broadcast => "broadcast",
    }
}

/// The span category a traffic class traces as.
fn class_category(c: CommClass) -> SpanCategory {
    match c {
        CommClass::P2p => SpanCategory::P2p,
        CommClass::AllToAll => SpanCategory::AllToAll,
        CommClass::AllReduce => SpanCategory::AllReduce,
        CommClass::AllGather => SpanCategory::AllGather,
        CommClass::Broadcast => SpanCategory::Broadcast,
    }
}

impl World {
    /// Create a world with `n` ranks, default timeouts, and no fault plan.
    pub fn new(n: usize) -> Self {
        World::with_config(n, CommConfig::default(), None)
    }

    /// Create a world with a fault plan and default timeouts.
    pub fn with_faults(n: usize, plan: FaultPlan) -> Self {
        World::with_config(n, CommConfig::default(), Some(plan))
    }

    /// Create a world with explicit timeout policy and an optional fault
    /// plan (tracing disabled: every span site costs one atomic load).
    pub fn with_config(n: usize, config: CommConfig, plan: Option<FaultPlan>) -> Self {
        World::with_tracer(n, config, plan, Tracer::default())
    }

    /// Create a world sharing an externally owned [`Tracer`]: every
    /// communicator operation emits a span into it (when enabled), tagged
    /// with the rank and the trainer-provided step/microbatch context.
    pub fn with_tracer(
        n: usize,
        config: CommConfig,
        plan: Option<FaultPlan>,
        tracer: Tracer,
    ) -> Self {
        assert!(n > 0);
        let sent = (0..n).map(|_| std::array::from_fn(|_| AtomicU64::new(0))).collect();
        World {
            inner: Arc::new(WorldInner {
                n,
                mailbox: Mailbox::default(),
                sent,
                config,
                plan,
                events: EventLog::new(),
                tracer,
                dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
                ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.n
    }

    /// The shared fault log.
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// The shared span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The installed fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.plan.as_ref()
    }

    /// Communication operations completed so far, per rank.
    pub fn op_counts(&self) -> Vec<u64> {
        self.inner.ops.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Mark `rank` dead and wake all waiters so they can observe the death
    /// instead of sleeping out their full deadline.
    pub fn mark_dead(&self, rank: usize) {
        self.inner.dead[rank].store(true, Ordering::SeqCst);
        let _guard = self.inner.mailbox.state.lock();
        self.inner.mailbox.cond.notify_all();
    }

    /// Whether `rank` has died.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.inner.dead[rank].load(Ordering::SeqCst)
    }

    /// Re-admit a previously dead rank (elastic rejoin). Idempotent — every
    /// live rank calls this for each scheduled rejoiner in its own
    /// step-boundary preamble, so no rank can observe a stale dead flag on a
    /// peer it is about to exchange step traffic with.
    pub fn revive(&self, rank: usize) {
        self.inner.dead[rank].store(false, Ordering::SeqCst);
    }

    /// A communicator handle for `rank`.
    pub fn communicator(&self, rank: usize) -> Communicator {
        assert!(rank < self.inner.n);
        Communicator {
            rank,
            world: self.clone(),
            chan_seq: HashMap::new(),
            group_seq: HashMap::new(),
            trace_step: None,
            trace_micro: None,
        }
    }

    /// Snapshot of traffic counters.
    pub fn traffic(&self) -> TrafficReport {
        let per_rank = self
            .inner
            .sent
            .iter()
            .map(|counters| {
                CLASSES
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (class_name(c), counters[i].load(Ordering::Relaxed)))
                    .collect()
            })
            .collect();
        TrafficReport { per_rank }
    }

    /// Reset traffic counters.
    pub fn reset_traffic(&self) {
        for counters in &self.inner.sent {
            for c in counters {
                c.store(0, Ordering::Relaxed);
            }
        }
    }

    fn account(&self, rank: usize, class: CommClass, bytes: u64) {
        let i = CLASSES.iter().position(|&c| c == class).unwrap();
        self.inner.sent[rank][i].fetch_add(bytes, Ordering::Relaxed);
    }

    fn put(&self, src: usize, dst: usize, tag: u64, class: CommClass, payload: Vec<Tensor>) {
        let fault = {
            let mut st = self.inner.mailbox.state.lock();
            let seq = st.posted.entry((src, dst)).or_insert(0);
            let nth = *seq;
            *seq += 1;
            // Fast path: no plan installed → plain insert under one lock.
            let fault = self.inner.plan.as_ref().and_then(|p| p.message_fault(src, dst, nth));
            match fault {
                Some(MessageFault::Delay { .. }) => {}
                other => {
                    let suppressed = match other {
                        Some(MessageFault::Drop { times }) => times,
                        _ => 0,
                    };
                    let prev = st.slots.insert((src, dst, tag), Envelope { payload, suppressed });
                    assert!(prev.is_none(), "duplicate message ({src}->{dst}, tag {tag})");
                    drop(st);
                    if suppressed > 0 {
                        self.inner
                            .events
                            .record(src, FaultEvent::InjectedDrop { src, dst, remaining: suppressed });
                    }
                    self.inner.mailbox.cond.notify_all();
                    return;
                }
            }
            fault
        };
        // Delayed message: stall the sender's link outside the lock, then
        // deliver. Later messages on the same channel queue behind the stall
        // (the sender thread is inside this call), preserving FIFO order.
        if let Some(MessageFault::Delay { millis }) = fault {
            self.inner.events.record(src, FaultEvent::InjectedDelay { src, dst, class, millis });
            std::thread::sleep(Duration::from_millis(millis));
        }
        let mut st = self.inner.mailbox.state.lock();
        let prev = st.slots.insert((src, dst, tag), Envelope { payload, suppressed: 0 });
        assert!(prev.is_none(), "duplicate message ({src}->{dst}, tag {tag})");
        drop(st);
        self.inner.mailbox.cond.notify_all();
    }

    /// Blocking mailbox wait with deadline. `retry_p2p` enables the
    /// retransmit timer that recovers drop-suppressed messages; collectives
    /// pass `false` and fail fast on loss.
    fn take(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        retry_p2p: bool,
    ) -> Result<Vec<Tensor>, CommError> {
        let config = &self.inner.config;
        let start = Instant::now();
        let deadline = start + config.deadline;
        let mut backoff = config.retry_backoff;
        let mut last_retry = start;
        let mut attempt = 0u32;
        let key = (src, dst, tag);
        let mut st = self.inner.mailbox.state.lock();
        loop {
            let deliverable = matches!(st.slots.get(&key), Some(env) if env.suppressed == 0);
            if deliverable {
                return Ok(st.slots.remove(&key).unwrap().payload);
            }
            // Not (yet) deliverable. A dead sender can neither send nor
            // retransmit, so give up immediately.
            if self.is_dead(src) {
                return Err(CommError::PeerDead { rank: dst, peer: src });
            }
            let now = Instant::now();
            if now >= deadline {
                let waited_ms = config.deadline.as_millis() as u64;
                self.inner
                    .events
                    .record(dst, FaultEvent::CommTimeout { rank: dst, peer: src, waited_ms });
                return Err(CommError::Timeout { rank: dst, peer: src, waited_ms });
            }
            // Retransmit timer: if a suppressed message has sat through a
            // full backoff interval, request a retransmit (recover one
            // suppression) and escalate the interval.
            if retry_p2p && now.duration_since(last_retry) >= backoff {
                if let Some(env) = st.slots.get_mut(&key) {
                    if env.suppressed > 0 {
                        env.suppressed -= 1;
                        attempt += 1;
                        self.inner
                            .events
                            .record(dst, FaultEvent::RetransmitRequest { src, dst, attempt });
                        last_retry = now;
                        backoff = (backoff * 2).min(config.max_backoff);
                        continue;
                    }
                }
                last_retry = now;
                backoff = (backoff * 2).min(config.max_backoff);
            }
            let wait = backoff.min(deadline - now);
            let _ = self.inner.mailbox.cond.wait_for(&mut st, wait);
        }
    }
}

/// A rank's endpoint into the world. Not `Clone`: one per rank thread.
pub struct Communicator {
    rank: usize,
    world: World,
    /// Sequence counters per peer channel (send side and recv side advance in
    /// lockstep because each directed channel is FIFO-by-construction).
    chan_seq: HashMap<(usize, usize), u64>,
    /// Sequence counters per collective group.
    group_seq: HashMap<Vec<usize>, u64>,
    /// Trace context: the logical step the owner is executing (set by the
    /// trainer — communication ops don't know the step on their own).
    trace_step: Option<u64>,
    /// Trace context: the microbatch in flight.
    trace_micro: Option<u64>,
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.world.size()
    }

    /// The world this communicator belongs to.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Set the step tag stamped onto spans this communicator emits (clears
    /// the microbatch tag: a new step starts outside any microbatch).
    pub fn set_trace_step(&mut self, step: u64) {
        self.trace_step = Some(step);
        self.trace_micro = None;
    }

    /// Set the microbatch tag stamped onto spans this communicator emits.
    pub fn set_trace_micro(&mut self, micro: Option<u64>) {
        self.trace_micro = micro;
    }

    /// Open a span tagged with this communicator's rank and step/microbatch
    /// context. One relaxed atomic load when tracing is disabled.
    #[inline]
    pub fn trace_span(&self, category: SpanCategory) -> SpanGuard {
        let mut g = self.world.inner.tracer.span(category, self.rank);
        if let Some(step) = self.trace_step {
            g = g.step(step);
        }
        if let Some(micro) = self.trace_micro {
            g = g.micro(micro);
        }
        g
    }

    /// Execute this rank's planned step-boundary crash, if the plan schedules
    /// one for `step`. Returns `true` if the rank just died (the caller must
    /// stop communicating and unwind).
    pub fn planned_crash(&mut self, step: usize) -> bool {
        let crashes = match self.world.plan() {
            Some(plan) => plan.crash_step(self.rank) == Some(step),
            None => false,
        };
        if crashes {
            self.world.events().record(self.rank, FaultEvent::RankCrashed { rank: self.rank, step });
            self.world.mark_dead(self.rank);
        }
        crashes
    }

    /// Per-operation fault hook: counts the op, and executes a planned
    /// mid-step (op-count-triggered) crash. Every public operation calls this
    /// once on entry; with no plan installed it costs one atomic increment
    /// and a branch.
    fn op_hook(&mut self) -> Result<(), CommError> {
        if self.world.is_dead(self.rank) {
            return Err(CommError::Crashed { rank: self.rank });
        }
        let done = self.world.inner.ops[self.rank].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(plan) = self.world.plan() {
            if let Some(limit) = plan.crash_after_ops(self.rank) {
                if done > limit {
                    self.world
                        .events()
                        .record(self.rank, FaultEvent::RankCrashedMidStep { rank: self.rank, ops: done - 1 });
                    self.world.mark_dead(self.rank);
                    return Err(CommError::Crashed { rank: self.rank });
                }
            }
        }
        Ok(())
    }

    fn next_chan_tag(&mut self, src: usize, dst: usize) -> u64 {
        let c = self.chan_seq.entry((src, dst)).or_insert(0);
        let t = *c;
        *c += 1;
        t
    }

    /// Per-group operation tag: a fingerprint of the member list mixed with a
    /// per-group sequence counter. Distinct groups that share rank pairs must
    /// not collide in the mailbox, so the group identity is part of the tag.
    fn next_group_tag(&mut self, group: &[usize]) -> u64 {
        let c = self.group_seq.entry(group.to_vec()).or_insert(0);
        let count = *c;
        *c += 1;
        let mut h: u64 = 0xcbf29ce484222325;
        for &r in group {
            h ^= r as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= count.wrapping_mul(0x9E3779B97F4A7C15);
        h = h.wrapping_mul(0x100000001b3);
        // Reserve the low 16 bits for the member index.
        h << 16
    }

    fn payload_bytes(payload: &[Tensor]) -> u64 {
        payload.iter().map(|t| 4 * t.len() as u64).sum()
    }

    /// Send tensors to `dst` (non-blocking; buffered in the mailbox).
    pub fn send(
        &mut self,
        dst: usize,
        class: CommClass,
        payload: Vec<Tensor>,
    ) -> Result<(), CommError> {
        let _span = self.trace_span(class_category(class)).label("send");
        self.op_hook()?;
        let tag = self.next_chan_tag(self.rank, dst);
        self.world.account(self.rank, class, Self::payload_bytes(&payload));
        self.world.put(self.rank, dst, tag, class, payload);
        Ok(())
    }

    /// Blocking receive of the next message from `src` (retransmit timer
    /// active: recovers injected drops with exponential backoff).
    pub fn recv(&mut self, src: usize) -> Result<Vec<Tensor>, CommError> {
        let _span = self.trace_span(SpanCategory::P2p).label("recv");
        self.op_hook()?;
        let tag = self.next_chan_tag(src, self.rank);
        self.world.take(src, self.rank, tag, true)
    }

    /// Barrier over a group (all members must call with the identical group).
    pub fn barrier(&mut self, group: &[usize]) -> Result<(), CommError> {
        self.allgather(group, CommClass::Broadcast, Tensor::zeros(&[1]))?;
        Ok(())
    }

    /// All-to-all within `group`: `chunks[j]` goes to group member `j`;
    /// returns the chunks received from each member (self-chunk passes
    /// through untouched and un-accounted, as on a real interconnect).
    pub fn alltoall(
        &mut self,
        group: &[usize],
        mut chunks: Vec<Tensor>,
    ) -> Result<Vec<Tensor>, CommError> {
        let _span = self.trace_span(SpanCategory::AllToAll);
        self.op_hook()?;
        assert_eq!(chunks.len(), group.len());
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        // Post sends.
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![std::mem::replace(&mut chunks[j], Tensor::zeros(&[0]))];
            self.world.account(self.rank, CommClass::AllToAll, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | j as u64, CommClass::AllToAll, payload);
        }
        // Collect receives.
        let mut out = Vec::with_capacity(group.len());
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                out.push(std::mem::replace(&mut chunks[me], Tensor::zeros(&[0])));
            } else {
                let mut p = self.world.take(src, self.rank, tag_base | me as u64, false)?;
                assert_eq!(p.len(), 1);
                out.push(p.pop().unwrap());
            }
        }
        Ok(out)
    }

    /// Allgather within `group`: returns every member's tensor, in group
    /// order.
    pub fn allgather(
        &mut self,
        group: &[usize],
        class: CommClass,
        value: Tensor,
    ) -> Result<Vec<Tensor>, CommError> {
        let _span = self.trace_span(class_category(class)).label("allgather");
        self.op_hook()?;
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![value.clone()];
            self.world.account(self.rank, class, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | me as u64, class, payload);
        }
        let mut out = Vec::with_capacity(group.len());
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                out.push(value.clone());
            } else {
                let mut p = self.world.take(src, self.rank, tag_base | j as u64, false)?;
                out.push(p.pop().unwrap());
            }
        }
        Ok(out)
    }

    /// Sum-allreduce within `group`, implemented as reduce-scatter +
    /// allgather so per-rank traffic is ≈ 2×data regardless of group size
    /// (the bandwidth-optimal ring volume — this is what makes the paper's
    /// "gradient-allreduce volume is unchanged by WP" claim measurable).
    /// Deterministic: every chunk is reduced in group order by its owner.
    pub fn allreduce_sum(&mut self, group: &[usize], value: &Tensor) -> Result<Tensor, CommError> {
        let _span = self.trace_span(SpanCategory::AllReduce);
        self.op_hook()?;
        let n = group.len();
        if n == 1 {
            return Ok(value.clone());
        }
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        let len = value.len();
        let chunk_bounds = |j: usize| {
            let lo = len * j / n;
            let hi = len * (j + 1) / n;
            (lo, hi)
        };
        // Reduce-scatter: send my slice of chunk j to its owner j.
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let (lo, hi) = chunk_bounds(j);
            let payload = vec![Tensor::from_slice(&value.data()[lo..hi])];
            self.world.account(self.rank, CommClass::AllReduce, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag_base | j as u64, CommClass::AllReduce, payload);
        }
        let (mlo, mhi) = chunk_bounds(me);
        let mut mine: Vec<f32> = value.data()[mlo..mhi].to_vec();
        // Deterministic accumulation: add contributions in group order.
        let mut contributions: Vec<Option<Tensor>> = vec![None; n];
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let mut p = self.world.take(src, self.rank, tag_base | me as u64, false)?;
            contributions[j] = Some(p.pop().unwrap());
        }
        for (j, c) in contributions.iter().enumerate() {
            if j == me {
                continue;
            }
            let c = c.as_ref().unwrap();
            for (m, &v) in mine.iter_mut().zip(c.data()) {
                *m += v;
            }
        }
        // Allgather the reduced chunks.
        let reduced = Tensor::from_slice(&mine);
        let tag2 = self.next_group_tag(group);
        for (j, &dst) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let payload = vec![reduced.clone()];
            self.world.account(self.rank, CommClass::AllReduce, Self::payload_bytes(&payload));
            self.world.put(self.rank, dst, tag2 | me as u64, CommClass::AllReduce, payload);
        }
        let mut out = vec![0.0f32; len];
        out[mlo..mhi].copy_from_slice(&mine);
        for (j, &src) in group.iter().enumerate() {
            if j == me {
                continue;
            }
            let p = self.world.take(src, self.rank, tag2 | j as u64, false)?;
            let (lo, hi) = chunk_bounds(j);
            out[lo..hi].copy_from_slice(p[0].data());
        }
        Ok(Tensor::from_vec(value.shape(), out))
    }

    /// Broadcast from `group[root_ix]` to the group.
    pub fn broadcast(
        &mut self,
        group: &[usize],
        root_ix: usize,
        value: Option<Tensor>,
    ) -> Result<Tensor, CommError> {
        let _span = self.trace_span(SpanCategory::Broadcast);
        self.op_hook()?;
        let tag_base = self.next_group_tag(group);
        let me = group.iter().position(|&r| r == self.rank).expect("rank not in group");
        if me == root_ix {
            let v = value.expect("root must provide a value");
            for (j, &dst) in group.iter().enumerate() {
                if j == me {
                    continue;
                }
                let payload = vec![v.clone()];
                self.world.account(self.rank, CommClass::AllGather, Self::payload_bytes(&payload));
                self.world.put(self.rank, dst, tag_base | j as u64, CommClass::AllGather, payload);
            }
            Ok(v)
        } else {
            assert!(value.is_none(), "non-root must not provide a value");
            let mut p = self.world.take(group[root_ix], self.rank, tag_base | me as u64, false)?;
            Ok(p.pop().unwrap())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;
    use std::thread;

    fn run_ranks<F>(n: usize, f: F) -> Vec<TrafficReport>
    where
        F: Fn(Communicator) + Sync,
    {
        let world = World::new(n);
        thread::scope(|s| {
            for r in 0..n {
                let comm = world.communicator(r);
                let f = &f;
                s.spawn(move || f(comm));
            }
        });
        vec![world.traffic()]
    }

    #[test]
    fn send_recv_roundtrip_and_fifo_order() {
        run_ranks(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, CommClass::P2p, vec![Tensor::from_slice(&[1.0])]).unwrap();
                c.send(1, CommClass::P2p, vec![Tensor::from_slice(&[2.0])]).unwrap();
            } else {
                let a = c.recv(0).unwrap();
                let b = c.recv(0).unwrap();
                assert_eq!(a[0].data(), &[1.0]);
                assert_eq!(b[0].data(), &[2.0]);
            }
        });
    }

    #[test]
    fn allreduce_sums_deterministically() {
        let group: Vec<usize> = (0..4).collect();
        run_ranks(4, |mut c| {
            let v = Tensor::from_slice(&[c.rank() as f32, 1.0]);
            let g = group.clone();
            let out = c.allreduce_sum(&g, &v).unwrap();
            assert_eq!(out.data(), &[6.0, 4.0]);
            // Repeat to exercise tag sequencing.
            let out2 = c.allreduce_sum(&g, &v).unwrap();
            assert_eq!(out2.data(), &[6.0, 4.0]);
        });
    }

    #[test]
    fn alltoall_exchanges_correct_chunks() {
        let group: Vec<usize> = (0..3).collect();
        run_ranks(3, |mut c| {
            let r = c.rank() as f32;
            let chunks: Vec<Tensor> =
                (0..3).map(|j| Tensor::from_slice(&[r * 10.0 + j as f32])).collect();
            let out = c.alltoall(&group, chunks).unwrap();
            for (j, t) in out.iter().enumerate() {
                // Received from member j: their chunk addressed to me.
                assert_eq!(t.data(), &[j as f32 * 10.0 + r]);
            }
        });
    }

    #[test]
    fn broadcast_distributes_root_value() {
        let group: Vec<usize> = (0..3).collect();
        run_ranks(3, |mut c| {
            let v = if c.rank() == 1 { Some(Tensor::from_slice(&[7.0, 8.0])) } else { None };
            let out = c.broadcast(&group, 1, v).unwrap();
            assert_eq!(out.data(), &[7.0, 8.0]);
        });
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        // Two disjoint groups run different numbers of collectives.
        run_ranks(4, |mut c| {
            let g = if c.rank() < 2 { vec![0, 1] } else { vec![2, 3] };
            let reps = if c.rank() < 2 { 3 } else { 5 };
            for i in 0..reps {
                let v = Tensor::from_slice(&[i as f32]);
                let out = c.allreduce_sum(&g, &v).unwrap();
                assert_eq!(out.data(), &[2.0 * i as f32]);
            }
        });
    }

    #[test]
    fn traffic_accounting_counts_sent_bytes() {
        let world = World::new(2);
        thread::scope(|s| {
            let mut c0 = world.communicator(0);
            let mut c1 = world.communicator(1);
            s.spawn(move || {
                c0.send(1, CommClass::P2p, vec![Tensor::zeros(&[10])]).unwrap();
            });
            s.spawn(move || {
                let _ = c1.recv(0).unwrap();
            });
        });
        let t = world.traffic();
        assert_eq!(t.rank_total(0, CommClass::P2p), 40);
        assert_eq!(t.rank_total(1, CommClass::P2p), 0);
        assert_eq!(t.total(CommClass::AllToAll), 0);
        world.reset_traffic();
        assert_eq!(world.traffic().total(CommClass::P2p), 0);
    }

    #[test]
    fn stress_concurrent_collectives() {
        let group: Vec<usize> = (0..8).collect();
        run_ranks(8, |mut c| {
            let mut rng = Rng::seed_from(c.rank() as u64);
            for _ in 0..20 {
                let v = Tensor::randn(&[16], &mut rng);
                let parts = c.allgather(&group, CommClass::AllGather, v.clone()).unwrap();
                assert_eq!(parts.len(), 8);
                assert_eq!(parts[c.rank()], v);
            }
        });
    }

    #[test]
    fn recv_times_out_with_typed_error_instead_of_hanging() {
        let world = World::with_config(
            2,
            CommConfig { deadline: Duration::from_millis(50), ..CommConfig::default() },
            None,
        );
        let mut c = world.communicator(1);
        let start = Instant::now();
        let err = c.recv(0).unwrap_err();
        assert_eq!(err, CommError::Timeout { rank: 1, peer: 0, waited_ms: 50 });
        assert!(start.elapsed() < Duration::from_secs(5), "deadline not honored");
        assert!(world.events().any(|e| matches!(e, FaultEvent::CommTimeout { .. })));
    }

    #[test]
    fn waiting_on_a_dead_peer_fails_fast() {
        let world = World::new(2);
        world.mark_dead(0);
        let mut c = world.communicator(1);
        assert_eq!(c.recv(0).unwrap_err(), CommError::PeerDead { rank: 1, peer: 0 });
        // The dead rank itself can no longer communicate.
        let mut c0 = world.communicator(0);
        assert_eq!(
            c0.send(1, CommClass::P2p, vec![Tensor::zeros(&[1])]).unwrap_err(),
            CommError::Crashed { rank: 0 }
        );
    }

    #[test]
    fn dropped_p2p_message_recovered_by_retransmit() {
        let plan = FaultPlan::new().drop_message(0, 1, 0, 2);
        let world = World::with_faults(2, plan);
        thread::scope(|s| {
            let mut c0 = world.communicator(0);
            let mut c1 = world.communicator(1);
            s.spawn(move || {
                c0.send(1, CommClass::P2p, vec![Tensor::from_slice(&[9.0])]).unwrap();
            });
            s.spawn(move || {
                assert_eq!(c1.recv(0).unwrap()[0].data(), &[9.0]);
            });
        });
        assert!(world.events().any(|e| matches!(e, FaultEvent::InjectedDrop { .. })));
        assert_eq!(
            world
                .events()
                .count_matching(|e| matches!(e, FaultEvent::RetransmitRequest { .. })),
            2
        );
    }

    #[test]
    fn op_counts_track_operations() {
        let world = World::new(2);
        thread::scope(|s| {
            let mut c0 = world.communicator(0);
            let mut c1 = world.communicator(1);
            s.spawn(move || {
                c0.send(1, CommClass::P2p, vec![Tensor::zeros(&[1])]).unwrap();
                c0.send(1, CommClass::P2p, vec![Tensor::zeros(&[1])]).unwrap();
            });
            s.spawn(move || {
                let _ = c1.recv(0).unwrap();
                let _ = c1.recv(0).unwrap();
            });
        });
        assert_eq!(world.op_counts(), vec![2, 2]);
    }
}
