//! Explicitly unrolled, unit-stride sweep kernels for the elementwise /
//! softmax / un-standardize hot loops.
//!
//! Every function here walks contiguous slices in fixed-width chunks
//! (`W = 8` lanes) with a scalar tail, the shape the autovectorizer lifts to
//! SIMD on any target. Two rules keep the crate's determinism contract:
//!
//! - **Maps** (axpy, scale, scale-shift, …) have no cross-element dependency;
//!   element `i` is computed from inputs `i` only, so lane width is
//!   unobservable in the result.
//! - **Reductions** (lane sums, max) accumulate into `W` independent lanes
//!   and combine them in one fixed order at the end. The order is different
//!   from a serial left fold but is *the same* order on every run, every
//!   thread count, and every input length — results stay bitwise reproducible.
//!
//! These are slice-level primitives; `ops.rs`, `forecast.rs`, the autodiff
//! tape, and the optimizer call them on their own buffers.

/// Lane width for unrolled sweeps. 8 × f32 = one AVX2 register.
pub const W: usize = 8;

/// `y[i] += alpha * x[i]`.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    let mut yc = y.chunks_exact_mut(W);
    let mut xc = x.chunks_exact(W);
    for (yw, xw) in (&mut yc).zip(&mut xc) {
        for i in 0..W {
            yw[i] += alpha * xw[i];
        }
    }
    for (a, &b) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += alpha * b;
    }
}

/// `y[i] *= alpha`.
pub fn scale(y: &mut [f32], alpha: f32) {
    let mut yc = y.chunks_exact_mut(W);
    for yw in &mut yc {
        for v in yw.iter_mut() {
            *v *= alpha;
        }
    }
    for v in yc.into_remainder() {
        *v *= alpha;
    }
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    let mut yc = y.chunks_exact_mut(W);
    let mut xc = x.chunks_exact(W);
    for (yw, xw) in (&mut yc).zip(&mut xc) {
        for i in 0..W {
            yw[i] += xw[i];
        }
    }
    for (a, &b) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *a += b;
    }
}

/// `out[i] = f(a[i], b[i])` for the four arithmetic combiners, written as
/// concrete loops (a generic closure would defeat the unroll).
macro_rules! binary_into {
    ($name:ident, $op:tt) => {
        #[doc = concat!("`out[i] = a[i] ", stringify!($op), " b[i]`.")]
        pub fn $name(out: &mut [f32], a: &[f32], b: &[f32]) {
            assert_eq!(a.len(), b.len(), "binary sweep length mismatch");
            assert_eq!(out.len(), a.len(), "binary sweep output mismatch");
            let mut oc = out.chunks_exact_mut(W);
            let mut ac = a.chunks_exact(W);
            let mut bc = b.chunks_exact(W);
            for ((ow, aw), bw) in (&mut oc).zip(&mut ac).zip(&mut bc) {
                for i in 0..W {
                    ow[i] = aw[i] $op bw[i];
                }
            }
            for ((o, &x), &y) in oc
                .into_remainder()
                .iter_mut()
                .zip(ac.remainder())
                .zip(bc.remainder())
            {
                *o = x $op y;
            }
        }
    };
}

binary_into!(add_into, +);
binary_into!(sub_into, -);
binary_into!(mul_into, *);
binary_into!(div_into, /);

/// Un-standardize sweep: `dst[i] = dst[i] * scale[i] + shift[i]`.
pub fn scale_shift(dst: &mut [f32], scale: &[f32], shift: &[f32]) {
    assert_eq!(dst.len(), scale.len(), "scale_shift length mismatch");
    assert_eq!(dst.len(), shift.len(), "scale_shift length mismatch");
    let mut dc = dst.chunks_exact_mut(W);
    let mut sc = scale.chunks_exact(W);
    let mut hc = shift.chunks_exact(W);
    for ((dw, sw), hw) in (&mut dc).zip(&mut sc).zip(&mut hc) {
        for i in 0..W {
            dw[i] = dw[i] * sw[i] + hw[i];
        }
    }
    for ((d, &s), &h) in dc
        .into_remainder()
        .iter_mut()
        .zip(sc.remainder())
        .zip(hc.remainder())
    {
        *d = *d * s + h;
    }
}

/// Accumulating un-standardize sweep:
/// `dst[i] += src[i] * scale[i] + shift[i]`.
pub fn add_scale_shift(dst: &mut [f32], src: &[f32], scale: &[f32], shift: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_scale_shift length mismatch");
    assert_eq!(dst.len(), scale.len(), "add_scale_shift length mismatch");
    assert_eq!(dst.len(), shift.len(), "add_scale_shift length mismatch");
    let mut dc = dst.chunks_exact_mut(W);
    let mut vc = src.chunks_exact(W);
    let mut sc = scale.chunks_exact(W);
    let mut hc = shift.chunks_exact(W);
    for (((dw, vw), sw), hw) in (&mut dc).zip(&mut vc).zip(&mut sc).zip(&mut hc) {
        for i in 0..W {
            dw[i] += vw[i] * sw[i] + hw[i];
        }
    }
    for (((d, &v), &s), &h) in dc
        .into_remainder()
        .iter_mut()
        .zip(vc.remainder())
        .zip(sc.remainder())
        .zip(hc.remainder())
    {
        *d += v * s + h;
    }
}

/// Maximum of a slice (`-inf` on empty). Lane-split max; `f32::max` ignores
/// NaN in either argument the same way the previous serial fold did.
pub fn max(x: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; W];
    let mut xc = x.chunks_exact(W);
    for xw in &mut xc {
        for i in 0..W {
            lanes[i] = lanes[i].max(xw[i]);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &v in xc.remainder() {
        m = m.max(v);
    }
    for l in lanes {
        m = m.max(l);
    }
    m
}

/// Softmax numerator sweep: `dst[i] = exp(src[i] - shift)`, returning the sum
/// of all numerators. The sum accumulates into `W` lanes combined in a fixed
/// order (tail first, then lanes 0..W), identical across runs.
pub fn exp_shift_sum(dst: &mut [f32], src: &[f32], shift: f32) -> f32 {
    assert_eq!(dst.len(), src.len(), "exp_shift_sum length mismatch");
    let mut lanes = [0.0f32; W];
    let mut dc = dst.chunks_exact_mut(W);
    let mut sc = src.chunks_exact(W);
    for (dw, sw) in (&mut dc).zip(&mut sc) {
        for i in 0..W {
            let e = (sw[i] - shift).exp();
            dw[i] = e;
            lanes[i] += e;
        }
    }
    let mut z = 0.0f32;
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        let e = (s - shift).exp();
        *d = e;
        z += e;
    }
    for l in lanes {
        z += l;
    }
    z
}

/// Dot product into `W` lanes with fixed combine order (tail, then lanes).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut lanes = [0.0f32; W];
    let mut ac = a.chunks_exact(W);
    let mut bc = b.chunks_exact(W);
    for (aw, bw) in (&mut ac).zip(&mut bc) {
        for i in 0..W {
            lanes[i] += aw[i] * bw[i];
        }
    }
    let mut s = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        s += x * y;
    }
    for l in lanes {
        s += l;
    }
    s
}

/// Triple-product reduction `Σ a[i]·b[i]·c[i]` (RMSNorm backward's
/// `Σ γ·d·x`), lane-split with the same fixed combine order as [`dot`].
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot3 length mismatch");
    assert_eq!(a.len(), c.len(), "dot3 length mismatch");
    let mut lanes = [0.0f32; W];
    let mut ac = a.chunks_exact(W);
    let mut bc = b.chunks_exact(W);
    let mut cc = c.chunks_exact(W);
    for ((aw, bw), cw) in (&mut ac).zip(&mut bc).zip(&mut cc) {
        for i in 0..W {
            lanes[i] += aw[i] * bw[i] * cw[i];
        }
    }
    let mut s = 0.0f32;
    for ((&x, &y), &z) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(cc.remainder())
    {
        s += x * y * z;
    }
    for l in lanes {
        s += l;
    }
    s
}

/// Sum of squares into `W` lanes with fixed combine order (tail, then lanes).
pub fn sum_sq(x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; W];
    let mut xc = x.chunks_exact(W);
    for xw in &mut xc {
        for i in 0..W {
            lanes[i] += xw[i] * xw[i];
        }
    }
    let mut s = 0.0f32;
    for &v in xc.remainder() {
        s += v * v;
    }
    for l in lanes {
        s += l;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn maps_match_scalar_reference_on_odd_lengths() {
        for n in [0, 1, 7, 8, 9, 31, 64, 65] {
            let a = seq(n);
            let b: Vec<f32> = seq(n).iter().map(|x| x + 0.5).collect();

            let mut y = a.clone();
            axpy(&mut y, 0.25, &b);
            for i in 0..n {
                assert_eq!(y[i], a[i] + 0.25 * b[i]);
            }

            let mut out = vec![0.0; n];
            mul_into(&mut out, &a, &b);
            for i in 0..n {
                assert_eq!(out[i], a[i] * b[i]);
            }

            let mut d = a.clone();
            scale_shift(&mut d, &b, &a);
            for i in 0..n {
                assert_eq!(d[i], a[i] * b[i] + a[i]);
            }
        }
    }

    #[test]
    fn reductions_are_deterministic_and_accurate() {
        for n in [0usize, 1, 7, 9, 63, 64, 1000] {
            let x = seq(n);
            let m = max(&x);
            let m_ref = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(m, m_ref);

            let s = sum_sq(&x);
            let s64: f64 = x.iter().map(|&v| (v as f64) * (v as f64)).sum();
            assert!((s as f64 - s64).abs() <= 1e-4 * s64.abs() + 1e-6);
            // Bitwise repeatable, and dot(x, x) takes the same lane path.
            assert_eq!(s.to_bits(), sum_sq(&x).to_bits());
            assert_eq!(dot(&x, &x).to_bits(), s.to_bits());
            let ones = vec![1.0f32; n];
            assert_eq!(dot3(&x, &x, &ones).to_bits(), s.to_bits());
        }
    }

    #[test]
    fn exp_shift_sum_matches_elementwise() {
        let x = seq(37);
        let shift = max(&x);
        let mut dst = vec![0.0; 37];
        let z = exp_shift_sum(&mut dst, &x, shift);
        for i in 0..37 {
            assert_eq!(dst[i], (x[i] - shift).exp());
        }
        let z64: f64 = x.iter().map(|&v| ((v - shift) as f64).exp()).sum();
        assert!((z as f64 - z64).abs() < 1e-4 * z64);
    }

    #[test]
    fn nan_propagates_through_sweeps() {
        let mut y = vec![1.0f32; 9];
        let mut x = vec![1.0f32; 9];
        x[4] = f32::NAN;
        axpy(&mut y, 1.0, &x);
        assert!(y[4].is_nan());
        assert!(sum_sq(&x).is_nan());
    }
}
