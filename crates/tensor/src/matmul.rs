//! The GEMM family: `matmul` (NN), `matmul_nt` (NBᵀ), `matmul_tn` (AᵀB), in
//! f32 and bf16-storage variants, all lowered to the one packed,
//! cache-blocked micro-kernel in [`crate::gemm`].
//!
//! Layout is handled entirely in the packing stage, so every variant runs the
//! identical branch-free inner loop — in particular `matmul_nt` no longer
//! computes one strided dot product per output element, and no variant skips
//! zero multiplicands (a data-dependent branch that also suppressed NaN/Inf
//! propagation: `0·NaN` must stay NaN).
//!
//! See the [`crate::gemm`] module docs for the blocking scheme and the
//! determinism argument (fixed per-element accumulation order, bitwise
//! identical at any thread count).

use crate::bf16::Bf16Tensor;
use crate::gemm::gemm;
use crate::Tensor;

/// `C = A @ B` for `A: [m, k]`, `B: [k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros(&[a.shape()[0], b.shape()[1]]);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A @ B` written into a preallocated output (contents overwritten).
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), &[m, n], "output shape mismatch");
    gemm(m, n, k, a.data(), false, b.data(), false, c.data_mut());
}

/// `C = A^T @ B` for `A: [k, m]`, `B: [k, n]` — the shape that appears in
/// weight gradients (`dW = X^T dY`), computed without materializing `A^T`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_tn");
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, n, k, a.data(), true, b.data(), false, c.data_mut());
    c
}

/// `C = A @ B^T` for `A: [m, k]`, `B: [n, k]` — the shape that appears in
/// input gradients (`dX = dY W^T`) and attention scores (`Q K^T`), computed
/// without materializing `B^T`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_nt");
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, n, k, a.data(), false, b.data(), true, c.data_mut());
    c
}

/// `C = A @ B` on bf16-stored operands: `A: [m, k]`, `B: [k, n]`. Panels are
/// widened to f32 during packing (half the source bandwidth of the f32 path)
/// and all arithmetic accumulates in f32. Output is a full-precision tensor.
pub fn matmul_bf16(a: &Bf16Tensor, b: &Bf16Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_bf16 lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_bf16 rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, n, k, a.bits(), false, b.bits(), false, c.data_mut());
    c
}

/// `C = A^T @ B` on bf16-stored operands: `A: [k, m]`, `B: [k, n]`.
pub fn matmul_tn_bf16(a: &Bf16Tensor, b: &Bf16Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_tn_bf16");
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, n, k, a.bits(), true, b.bits(), false, c.data_mut());
    c
}

/// `C = A @ B^T` on bf16-stored operands: `A: [m, k]`, `B: [n, k]`.
pub fn matmul_nt_bf16(a: &Bf16Tensor, b: &Bf16Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_nt_bf16");
    let mut c = Tensor::zeros(&[m, n]);
    gemm(m, n, k, a.bits(), false, b.bits(), true, c.data_mut());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += (a.at(&[i, kk]) * b.at(&[kk, j])) as f64;
                }
                *c.at_mut(&[i, j]) = s as f32;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[80, 70], &mut rng);
        let b = Tensor::randn(&[70, 90], &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-3);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(&[6, 6], &mut rng);
        let mut eye = Tensor::zeros(&[6, 6]);
        for i in 0..6 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[11, 6], &mut rng);
        let b = Tensor::randn(&[11, 8], &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.t(), &b)) < 1e-4);

        let c = Tensor::randn(&[9, 7], &mut rng);
        let d = Tensor::randn(&[5, 7], &mut rng);
        assert!(matmul_nt(&c, &d).max_abs_diff(&matmul(&c, &d.t())) < 1e-4);
    }

    /// All three variants share one accumulation order, so transposing an
    /// operand source never changes a single bit of the result.
    #[test]
    fn variants_are_bitwise_identical_under_transposition() {
        let mut rng = Rng::seed_from(12);
        for &(m, n, k) in &[(7, 9, 5), (70, 90, 80)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let nn = matmul(&a, &b);
            let tn = matmul_tn(&a.t(), &b);
            let nt = matmul_nt(&a, &b.t());
            for (x, y) in nn.data().iter().zip(tn.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "tn differs at {m}x{n}x{k}");
            }
            for (x, y) in nn.data().iter().zip(nt.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "nt differs at {m}x{n}x{k}");
            }
        }
    }

    /// Zero multiplicands must not short-circuit the accumulation: `0 · NaN`
    /// is NaN and `0 · ∞` is NaN, and both must reach the output. (The old
    /// kernels skipped `a == 0.0` rows as an "optimization", silently turning
    /// NaN-corrupted operands into finite outputs.)
    #[test]
    fn nan_and_inf_propagate_through_zero_rows() {
        for variant in ["nn", "tn", "nt"] {
            // A has an all-zero row; B carries a NaN and an Inf.
            let a = Tensor::from_vec(&[2, 2], vec![0.0, 0.0, 1.0, 2.0]);
            let mut b = Tensor::from_vec(&[2, 2], vec![1.0, f32::NAN, f32::INFINITY, 4.0]);
            let c = match variant {
                "nn" => matmul(&a, &b),
                "tn" => matmul_tn(&a.t(), &b),
                _ => {
                    b = b.t();
                    matmul_nt(&a, &b)
                }
            };
            // Row 0 of C multiplies the zero row against NaN/Inf columns.
            assert!(
                c.at(&[0, 0]).is_nan() && c.at(&[0, 1]).is_nan(),
                "{variant}: zero row must produce NaN against NaN/Inf operands, got {:?}",
                c.data()
            );
            assert!(!c.all_finite());
        }
    }

    #[test]
    fn bf16_variants_match_f32_within_bf16_eps() {
        use crate::bf16::BF16_EPS;
        let mut rng = Rng::seed_from(5);
        for &(m, n, k) in &[(13, 11, 9), (70, 90, 80)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            // Reference: f32 GEMM over the *rounded* operands — isolates the
            // storage rounding from the kernel.
            let ar = a.to_bf16();
            let br = b.to_bf16();
            let reference = matmul(&ar.widen(), &br.widen());
            let c_nn = matmul_bf16(&ar, &br);
            assert_eq!(c_nn.data(), reference.data(), "bf16 NN must equal widen-then-f32-GEMM");
            // And the end-to-end deviation from the unrounded f32 path obeys
            // the k-term accumulation bound ~ 2·k·BF16_EPS on unit-scale data.
            let full = matmul(&a, &b);
            let bound = 2.0 * k as f32 * BF16_EPS * (k as f32).sqrt().max(1.0);
            assert!(
                c_nn.max_abs_diff(&full) <= bound,
                "bf16 GEMM deviates {} > bound {bound} at {m}x{n}x{k}",
                c_nn.max_abs_diff(&full)
            );
            // Transposed-source variants agree bitwise with NN on rounded data.
            let c_tn = matmul_tn_bf16(&ar.transpose_2d(), &br);
            let c_nt = matmul_nt_bf16(&ar, &br.transpose_2d());
            assert_eq!(c_nn.data(), c_tn.data());
            assert_eq!(c_nn.data(), c_nt.data());
        }
    }

    #[test]
    fn tn_parallel_path_matches_and_is_thread_count_stable() {
        // 90·80·70 multiply-adds exceeds PAR_THRESHOLD, so this exercises the
        // packed row-block path.
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[90, 80], &mut rng);
        let b = Tensor::randn(&[90, 70], &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&naive(&a.t(), &b)) < 1e-3);
        rayon::set_thread_override(Some(1));
        let reference = matmul_tn(&a, &b);
        for t in [2, 3, 8] {
            rayon::set_thread_override(Some(t));
            let out = matmul_tn(&a, &b);
            assert!(
                out.data().iter().zip(reference.data()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "matmul_tn not bitwise stable at {t} threads"
            );
        }
        rayon::set_thread_override(None);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let b = Tensor::randn(&[4, 4], &mut rng);
        let mut c = Tensor::full(&[4, 4], 123.0); // stale contents must be overwritten
        matmul_into(&a, &b, &mut c);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }
}
