//! Rayon-parallel blocked matrix multiplication.
//!
//! The kernel is a classic row-major ikj loop with a k-panel so the inner loop
//! is a unit-stride fused multiply-add over the output row — this vectorizes
//! well and has no per-element bounds checks after slice hoisting. Rows of the
//! output are distributed over the rayon pool once `m * n * k` crosses a
//! threshold; below it the sequential kernel avoids the fork-join overhead.

use crate::Tensor;
use rayon::prelude::*;

/// Above this many multiply-adds, parallelize over output rows.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

#[inline]
fn mm_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    debug_assert_eq!(out_row.len(), n);
    for (k, &aik) in a_row.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[k * n..(k + 1) * n];
        for (o, &bkj) in out_row.iter_mut().zip(b_row) {
            *o += aik * bkj;
        }
    }
}

/// `C = A @ B` for `A: [m, k]`, `B: [k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut c = Tensor::zeros(&[a.shape()[0], b.shape()[1]]);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A @ B` written into a preallocated output (contents overwritten).
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
    assert_eq!(c.shape(), &[m, n], "output shape mismatch");

    let a_data = a.data();
    let b_data = b.data();
    let c_data = c.data_mut();
    c_data.fill(0.0);

    if m * n * k >= PAR_THRESHOLD {
        c_data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| mm_row(&a_data[i * k..(i + 1) * k], b_data, n, out_row));
    } else {
        for i in 0..m {
            mm_row(&a_data[i * k..(i + 1) * k], b_data, n, &mut c_data[i * n..(i + 1) * n]);
        }
    }
}

/// `C = A^T @ B` for `A: [k, m]`, `B: [k, n]` — the shape that appears in
/// weight gradients (`dW = X^T dY`), computed without materializing `A^T`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_tn");
    let a_data = a.data();
    let b_data = b.data();
    let mut c = Tensor::zeros(&[m, n]);
    let c_data = c.data_mut();

    // C[i, j] = sum_k A[k, i] * B[k, j]; accumulate row-panels of B scaled by A[k, i].
    if m * n * k >= PAR_THRESHOLD {
        // Row-blocked parallel path. Reading A column-wise (`a_data[kk*m + i]`,
        // stride m) inside the hot loop thrashes the cache, so each worker
        // first packs the A-panel of its row block into a [rows, k] scratch
        // (contiguous reads of A, small in-cache writes); the compute loop
        // then streams both the packed panel and B at unit stride. The
        // per-element accumulation order (kk ascending) is unchanged, so the
        // packed path is bitwise identical to the sequential one.
        const ROW_BLOCK: usize = 32;
        c_data.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each_init(
            || vec![0.0f32; ROW_BLOCK * k],
            |pack, (blk, c_block)| {
                let i0 = blk * ROW_BLOCK;
                let rows = c_block.len() / n;
                for kk in 0..k {
                    let a_row = &a_data[kk * m + i0..kk * m + i0 + rows];
                    for (r, &aki) in a_row.iter().enumerate() {
                        pack[r * k + kk] = aki;
                    }
                }
                for (r, out_row) in c_block.chunks_mut(n).enumerate() {
                    for (kk, &aki) in pack[r * k..(r + 1) * k].iter().enumerate() {
                        if aki == 0.0 {
                            continue;
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                            *o += aki * bkj;
                        }
                    }
                }
            },
        );
    } else {
        for kk in 0..k {
            let a_row = &a_data[kk * m..(kk + 1) * m];
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut c_data[i * n..(i + 1) * n];
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aki * bkj;
                }
            }
        }
    }
    c
}

/// `C = A @ B^T` for `A: [m, k]`, `B: [n, k]` — the shape that appears in
/// input gradients (`dX = dY W^T`) and attention scores (`Q K^T`), computed
/// without materializing `B^T`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2);
    assert_eq!(b.ndim(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch in matmul_nt");
    let a_data = a.data();
    let b_data = b.data();
    let mut c = Tensor::zeros(&[m, n]);
    let c_data = c.data_mut();

    let row_job = |i: usize, out_row: &mut [f32]| {
        let a_row = &a_data[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o = acc;
        }
    };

    if m * n * k >= PAR_THRESHOLD {
        c_data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| row_job(i, out_row));
    } else {
        for (i, out_row) in c_data.chunks_mut(n).enumerate() {
            row_job(i, out_row);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += (a.at(&[i, kk]) * b.at(&[kk, j])) as f64;
                }
                *c.at_mut(&[i, j]) = s as f32;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[7, 5], &mut rng);
        let b = Tensor::randn(&[5, 9], &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let mut rng = Rng::seed_from(2);
        let a = Tensor::randn(&[80, 70], &mut rng);
        let b = Tensor::randn(&[70, 90], &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-3);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(&[6, 6], &mut rng);
        let mut eye = Tensor::zeros(&[6, 6]);
        for i in 0..6 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(&[11, 6], &mut rng);
        let b = Tensor::randn(&[11, 8], &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.t(), &b)) < 1e-4);

        let c = Tensor::randn(&[9, 7], &mut rng);
        let d = Tensor::randn(&[5, 7], &mut rng);
        assert!(matmul_nt(&c, &d).max_abs_diff(&matmul(&c, &d.t())) < 1e-4);
    }

    #[test]
    fn tn_packed_parallel_path_matches_and_is_thread_count_stable() {
        // 90·80·70 multiply-adds exceeds PAR_THRESHOLD, so this exercises the
        // packed row-block path.
        let mut rng = Rng::seed_from(6);
        let a = Tensor::randn(&[90, 80], &mut rng);
        let b = Tensor::randn(&[90, 70], &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&naive(&a.t(), &b)) < 1e-3);
        rayon::set_thread_override(Some(1));
        let reference = matmul_tn(&a, &b);
        for t in [2, 3, 8] {
            rayon::set_thread_override(Some(t));
            let out = matmul_tn(&a, &b);
            assert!(
                out.data().iter().zip(reference.data()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "matmul_tn not bitwise stable at {t} threads"
            );
        }
        rayon::set_thread_override(None);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let b = Tensor::randn(&[4, 4], &mut rng);
        let mut c = Tensor::full(&[4, 4], 123.0); // stale contents must be overwritten
        matmul_into(&a, &b, &mut c);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }
}
