//! bfloat16 as a real storage format.
//!
//! The paper runs all compute-intensive kernels in BF16 while keeping
//! embeddings, master weights, and gradient reductions in FP32 (§V-A "Mixed
//! precision"). [`Bf16Tensor`] reproduces the *storage* half of that policy
//! honestly: a `u16` buffer holding the top 16 bits of each f32
//! (round-to-nearest-even), half the bytes of a [`Tensor`]. The *compute*
//! half lives in the GEMM core ([`crate::gemm`]): bf16 panels are widened to
//! f32 in registers during packing and every multiply/accumulate runs in f32,
//! so a bf16 GEMM reads half the source bandwidth while producing
//! full-precision accumulations.
//!
//! [`round_bf16`] (round f32 → bf16 → f32) is kept for call sites that only
//! want the rounding effect without the storage change.

use crate::Tensor;

/// Round an f32 to its nearest bf16 bit pattern (round-to-nearest-even).
/// NaN is canonicalized to a quiet NaN pattern so the carry in the rounding
/// add can never turn a NaN payload into an infinity.
#[inline]
pub fn bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) | 0x0040) as u16;
    }
    let lsb = (bits >> 16) & 1;
    (bits.wrapping_add(0x7FFF + lsb) >> 16) as u16
}

/// Widen a bf16 bit pattern back to f32 (exact: bf16 ⊂ f32).
#[inline]
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// Round an f32 to bfloat16 precision (RNE) and widen back to f32.
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    bf16_to_f32(bf16_bits(x))
}

/// A dense, row-major, contiguous bfloat16 tensor: the same layout contract
/// as [`Tensor`], at half the bytes per element.
#[derive(Clone, Debug, PartialEq)]
pub struct Bf16Tensor {
    shape: Vec<usize>,
    data: Vec<u16>,
}

impl Bf16Tensor {
    /// Round a full-precision tensor into bf16 storage.
    pub fn from_f32(t: &Tensor) -> Self {
        Bf16Tensor {
            shape: t.shape().to_vec(),
            data: t.data().iter().map(|&x| bf16_bits(x)).collect(),
        }
    }

    /// Wrap raw bf16 bit patterns. Panics if the length does not match.
    pub fn from_bits(shape: &[usize], data: Vec<u16>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} != shape {:?}", data.len(), shape);
        Bf16Tensor { shape: shape.to_vec(), data }
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw bf16 bit patterns (row-major).
    #[inline]
    pub fn bits(&self) -> &[u16] {
        &self.data
    }

    /// Storage footprint in bytes (what the halved-bandwidth claim is about).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// Widen every element back to an f32 [`Tensor`] (exact).
    pub fn widen(&self) -> Tensor {
        Tensor::from_vec(&self.shape, self.data.iter().map(|&b| bf16_to_f32(b)).collect())
    }

    /// Transpose a 2-D bf16 tensor (bit-pattern moves, no re-rounding).
    pub fn transpose_2d(&self) -> Bf16Tensor {
        assert_eq!(self.ndim(), 2, "transpose_2d requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0u16; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Bf16Tensor { shape: vec![n, m], data: out }
    }
}

impl Tensor {
    /// Round into bf16 storage (a real `u16` buffer, half the bytes).
    pub fn to_bf16(&self) -> Bf16Tensor {
        Bf16Tensor::from_f32(self)
    }

    /// Round every element to bf16 precision and widen back: the pure
    /// rounding effect, without the storage change.
    pub fn bf16_round_trip(&self) -> Tensor {
        self.map(round_bf16)
    }
}

/// Relative rounding error bound for bf16 (8-bit mantissa): 2^-8.
pub const BF16_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn exact_values_pass_through() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -4.0, 1.5] {
            assert_eq!(round_bf16(x), x);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = Rng::seed_from(6);
        for _ in 0..10_000 {
            let x = rng.uniform(-1e6, 1e6);
            if x == 0.0 {
                continue;
            }
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() <= BF16_EPS, "x={x} r={r}");
        }
    }

    #[test]
    fn idempotent() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..1000 {
            let x = rng.normal() * 100.0;
            let once = round_bf16(x);
            assert_eq!(round_bf16(once), once);
        }
    }

    #[test]
    fn preserves_sign_and_specials() {
        assert_eq!(round_bf16(-0.0).to_bits(), (-0.0f32).to_bits());
        assert!(round_bf16(f32::INFINITY).is_infinite());
        assert!(round_bf16(f32::NEG_INFINITY).is_infinite());
        assert!(round_bf16(f32::NAN).is_nan(), "NaN must stay NaN through rounding");
        assert!(bf16_to_f32(bf16_bits(f32::NAN)).is_nan());
        let mut rng = Rng::seed_from(8);
        for _ in 0..100 {
            let x = rng.normal();
            assert_eq!(round_bf16(x).is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn storage_is_half_and_round_trips_exactly() {
        let mut rng = Rng::seed_from(9);
        let t = Tensor::randn(&[8, 8], &mut rng);
        let b = t.to_bf16();
        assert_eq!(b.storage_bytes(), t.len() * 2);
        assert_eq!(b.shape(), t.shape());
        // widen() is exact on stored bits: a second round trip is identity.
        let w = b.widen();
        assert_eq!(w.to_bf16().bits(), b.bits());
        // And widen() agrees with the pure rounding map.
        assert_eq!(w.data(), t.bf16_round_trip().data());
    }

    #[test]
    fn tensor_round_trip_error_small() {
        let mut rng = Rng::seed_from(9);
        let t = Tensor::randn(&[64], &mut rng);
        let r = t.to_bf16().widen();
        for (a, b) in t.data().iter().zip(r.data()) {
            assert!((a - b).abs() <= a.abs() * BF16_EPS + 1e-30);
        }
    }

    #[test]
    fn transpose_2d_round_trips() {
        let mut rng = Rng::seed_from(10);
        let t = Tensor::randn(&[5, 3], &mut rng).to_bf16();
        let back = t.transpose_2d().transpose_2d();
        assert_eq!(t, back);
    }
}
