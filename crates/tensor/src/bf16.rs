//! Software bfloat16 emulation.
//!
//! The paper runs all compute-intensive kernels in BF16 while keeping
//! embeddings, master weights, and gradient reductions in FP32 (§V-A "Mixed
//! precision"). We reproduce that policy in software: [`round_bf16`] rounds an
//! f32 to the nearest representable bfloat16 value (round-to-nearest-even)
//! and returns it widened back to f32, so a "BF16 kernel" is an f32 kernel
//! whose inputs/outputs pass through this rounding.

use crate::Tensor;

/// Round an f32 to bfloat16 precision (RNE) and widen back to f32.
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    let bits = x.to_bits();
    // bf16 keeps the top 16 bits. Round to nearest, ties to even.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7FFF + lsb);
    f32::from_bits(rounded & 0xFFFF_0000)
}

impl Tensor {
    /// Tensor with every element rounded to bfloat16 precision.
    pub fn to_bf16(&self) -> Tensor {
        self.map(round_bf16)
    }
}

/// Relative rounding error bound for bf16 (8-bit mantissa): 2^-8.
pub const BF16_EPS: f32 = 1.0 / 256.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn exact_values_pass_through() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -4.0, 1.5] {
            assert_eq!(round_bf16(x), x);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = Rng::seed_from(6);
        for _ in 0..10_000 {
            let x = rng.uniform(-1e6, 1e6);
            if x == 0.0 {
                continue;
            }
            let r = round_bf16(x);
            assert!(((r - x) / x).abs() <= BF16_EPS, "x={x} r={r}");
        }
    }

    #[test]
    fn idempotent() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..1000 {
            let x = rng.normal() * 100.0;
            let once = round_bf16(x);
            assert_eq!(round_bf16(once), once);
        }
    }

    #[test]
    fn preserves_sign_and_specials() {
        assert_eq!(round_bf16(-0.0).to_bits(), (-0.0f32).to_bits());
        assert!(round_bf16(f32::INFINITY).is_infinite());
        assert!(round_bf16(f32::NEG_INFINITY).is_infinite());
        let mut rng = Rng::seed_from(8);
        for _ in 0..100 {
            let x = rng.normal();
            assert_eq!(round_bf16(x).is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn tensor_round_trip_error_small() {
        let mut rng = Rng::seed_from(9);
        let t = Tensor::randn(&[64], &mut rng);
        let r = t.to_bf16();
        for (a, b) in t.data().iter().zip(r.data()) {
            assert!((a - b).abs() <= a.abs() * BF16_EPS + 1e-30);
        }
    }
}
