//! Deterministic random number generation.
//!
//! The entire workspace routes randomness through this module so that every
//! experiment is reproducible from a single `u64` seed. The paper requires a
//! subtle seeding discipline for distributed diffusion training (§VI-B): the
//! diffusion time `t` must share a seed across all model-parallel ranks
//! (SP/PP/WP) while the Gaussian field `z` is independent per rank.
//! [`Rng::stream`] provides cheap, independent derived streams for exactly
//! this purpose.

/// SplitMix64 core step. Passes BigCrush; ideal for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic RNG (SplitMix64) with Gaussian sampling.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    /// Cached second Box–Muller variate.
    gauss_cache: Option<f32>,
}

/// A serializable copy of an [`Rng`]'s state, for checkpoint-restart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RngSnapshot {
    pub state: u64,
    pub gauss_cache: Option<f32>,
}

impl Rng {
    /// Construct from a seed. Equal seeds yield identical streams.
    pub fn seed_from(seed: u64) -> Self {
        // One warm-up mix so that small consecutive seeds decorrelate.
        let mut state = seed;
        let _ = splitmix64(&mut state);
        Rng { state, gauss_cache: None }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform f32 in `[0, 1)` with 24 bits of mantissa.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of mantissa.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f32 in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal variate via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.gauss_cache.take() {
            return v;
        }
        // Avoid u == 0 for the log.
        let u = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let v = self.next_f64();
        let r = (-2.0 * u.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * v).sin_cos();
        self.gauss_cache = Some((r * s) as f32);
        (r * c) as f32
    }

    /// Derive an independent stream keyed by `key`. Streams with distinct keys
    /// (or from distinct parent states) are statistically independent; deriving
    /// does not advance `self`.
    pub fn stream(&self, key: u64) -> Rng {
        let mut s = self.state ^ key.wrapping_mul(0xD1342543DE82EF95).wrapping_add(0x2545F4914F6CDD1D);
        let _ = splitmix64(&mut s);
        Rng { state: s, gauss_cache: None }
    }

    /// Capture the full generator state (checkpoint-restart: restoring a
    /// snapshot continues the stream bitwise-identically, including a cached
    /// Box–Muller variate).
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot { state: self.state, gauss_cache: self.gauss_cache }
    }

    /// Rebuild a generator from a [`snapshot`](Rng::snapshot).
    pub fn restore(snap: RngSnapshot) -> Rng {
        Rng { state: snap.state, gauss_cache: snap.gauss_cache }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n).
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::seed_from(9);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
            let y = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let root = Rng::seed_from(7);
        let mut s1 = root.stream(0);
        let mut s1b = root.stream(0);
        let mut s2 = root.stream(1);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from(13);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(21);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_restore_resumes_bitwise() {
        let mut r = Rng::seed_from(77);
        let _ = r.normal(); // leave a cached Box–Muller variate in flight
        let snap = r.snapshot();
        let expect: Vec<f32> = (0..32).map(|_| r.normal()).collect();
        let mut resumed = Rng::restore(snap);
        let got: Vec<f32> = (0..32).map(|_| resumed.normal()).collect();
        assert_eq!(expect.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                   got.iter().map(|f| f.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn choose_indices_distinct() {
        let mut r = Rng::seed_from(5);
        let ix = r.choose_indices(20, 10);
        let mut s = ix.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }
}
