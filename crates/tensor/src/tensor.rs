//! The [`Tensor`] type: an owned, contiguous, row-major f32 array.

use crate::rng::Rng;

/// A dense, row-major, contiguous f32 tensor with a dynamic shape.
///
/// Invariant: `data.len() == shape.iter().product()`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Create a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Create a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Wrap an existing buffer. Panics if the length does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} != shape {:?}", data.len(), shape);
        Tensor { shape: shape.to_vec(), data }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: vec![data.len()], data: data.to_vec() }
    }

    /// Standard-normal random tensor.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(rng.normal());
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// Uniform random tensor on `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(lo + (hi - lo) * rng.next_f32());
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape in place to a new shape with the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?} changes element count", self.shape, shape);
        self.shape = shape.to_vec();
        self
    }

    /// Row-major linear offset for a multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            debug_assert!(ix < dim, "index {ix} out of bounds for dim {i} ({dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Element access by multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// For a 2-D tensor, the `r`-th row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// For a 2-D tensor, the `r`-th row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Transpose a 2-D tensor.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "t() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Concatenate 2-D tensors along rows (axis 0). All must share column count.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let cols = parts[0].shape[1];
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.ndim(), 2);
            assert_eq!(p.shape[1], cols, "column mismatch in concat_rows");
            rows += p.shape[0];
            data.extend_from_slice(&p.data);
        }
        Tensor { shape: vec![rows, cols], data }
    }

    /// Concatenate 2-D tensors along columns (axis 1). All must share row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let rows = parts[0].shape[0];
        let total_cols: usize = parts.iter().map(|p| p.shape[1]).sum();
        let mut data = vec![0.0f32; rows * total_cols];
        for r in 0..rows {
            let mut c0 = 0;
            for p in parts {
                assert_eq!(p.ndim(), 2);
                assert_eq!(p.shape[0], rows, "row mismatch in concat_cols");
                let w = p.shape[1];
                data[r * total_cols + c0..r * total_cols + c0 + w].copy_from_slice(p.row(r));
                c0 += w;
            }
        }
        Tensor { shape: vec![rows, total_cols], data }
    }

    /// Extract columns `[c0, c1)` of a 2-D tensor.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (rows, cols) = (self.shape[0], self.shape[1]);
        assert!(c0 <= c1 && c1 <= cols);
        let w = c1 - c0;
        let mut data = Vec::with_capacity(rows * w);
        for r in 0..rows {
            data.extend_from_slice(&self.data[r * cols + c0..r * cols + c1]);
        }
        Tensor { shape: vec![rows, w], data }
    }

    /// Extract rows `[r0, r1)` of a 2-D tensor.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (rows, cols) = (self.shape[0], self.shape[1]);
        assert!(r0 <= r1 && r1 <= rows);
        Tensor { shape: vec![r1 - r0, cols], data: self.data[r0 * cols..r1 * cols].to_vec() }
    }

    /// Maximum absolute difference to another tensor of the same shape.
    /// NaN differences propagate (return NaN) so comparisons against
    /// NaN-corrupted outputs fail loudly instead of passing silently.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, |m, d| if d.is_nan() { f32::NAN } else { m.max(d) })
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(&[2, 3], vec![0., 1., 2., 3., 4., 5.]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.row(1), &[3., 4., 5.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![0., 1., 2., 3., 4., 5.]).reshape(&[3, 2]);
        assert_eq!(t.at(&[2, 1]), 5.0);
        assert_eq!(t.shape(), &[3, 2]);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = Rng::seed_from(7);
        let t = Tensor::randn(&[4, 5], &mut rng);
        let back = t.t().t();
        assert_eq!(t, back);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2, 3], vec![5., 6., 7., 8., 9., 10.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 5]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 5), b);

        let r = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(r.shape(), &[4, 2]);
        assert_eq!(r.slice_rows(2, 4), a);
    }

    #[test]
    fn max_abs_diff_propagates_nan() {
        let a = Tensor::from_slice(&[1.0, f32::NAN]);
        let b = Tensor::from_slice(&[1.0, 0.0]);
        assert!(a.max_abs_diff(&b).is_nan(), "NaN must not be masked");
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::seed_from(42);
        let mut r2 = Rng::seed_from(42);
        assert_eq!(Tensor::randn(&[8], &mut r1), Tensor::randn(&[8], &mut r2));
    }

    #[test]
    fn randn_has_roughly_unit_moments() {
        let mut rng = Rng::seed_from(3);
        let t = Tensor::randn(&[10_000], &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
