//! Minimal radix-2 complex FFT.
//!
//! Used by `aeris-earthsim`'s spectral Poisson solver (inverting vorticity to
//! a streamfunction on a doubly periodic domain) and by `aeris-evaluation`'s
//! zonal power spectra. Lengths must be powers of two.

use std::f64::consts::PI;

/// In-place iterative Cooley–Tukey FFT on interleaved complex data
/// `(re, im)` pairs. `inverse` applies the conjugate transform *without* the
/// 1/n normalization (callers normalize).
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward 2-D FFT of a real `ny × nx` field; returns interleaved complex
/// spectra as two `ny*nx` vectors (row-major).
pub fn fft2_forward(field: &[f32], ny: usize, nx: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(field.len(), ny * nx);
    let mut re: Vec<f64> = field.iter().map(|&v| v as f64).collect();
    let mut im = vec![0.0f64; ny * nx];
    // FFT along rows (x).
    for r in 0..ny {
        fft_inplace(&mut re[r * nx..(r + 1) * nx], &mut im[r * nx..(r + 1) * nx], false);
    }
    // FFT along columns (y).
    let mut cre = vec![0.0f64; ny];
    let mut cim = vec![0.0f64; ny];
    for c in 0..nx {
        for r in 0..ny {
            cre[r] = re[r * nx + c];
            cim[r] = im[r * nx + c];
        }
        fft_inplace(&mut cre, &mut cim, false);
        for r in 0..ny {
            re[r * nx + c] = cre[r];
            im[r * nx + c] = cim[r];
        }
    }
    (re, im)
}

/// Inverse 2-D FFT back to a real field (imaginary residue discarded),
/// including the 1/(ny·nx) normalization.
pub fn fft2_inverse(re: &mut [f64], im: &mut [f64], ny: usize, nx: usize) -> Vec<f32> {
    assert_eq!(re.len(), ny * nx);
    let mut cre = vec![0.0f64; ny];
    let mut cim = vec![0.0f64; ny];
    for c in 0..nx {
        for r in 0..ny {
            cre[r] = re[r * nx + c];
            cim[r] = im[r * nx + c];
        }
        fft_inplace(&mut cre, &mut cim, true);
        for r in 0..ny {
            re[r * nx + c] = cre[r];
            im[r * nx + c] = cim[r];
        }
    }
    for r in 0..ny {
        fft_inplace(&mut re[r * nx..(r + 1) * nx], &mut im[r * nx..(r + 1) * nx], true);
    }
    let norm = 1.0 / (ny * nx) as f64;
    re.iter().map(|&v| (v * norm) as f32).collect()
}

/// Power spectrum along the last (x) axis of a real `ny × nx` field, averaged
/// over rows: returns `nx/2 + 1` band powers.
pub fn zonal_power_spectrum(field: &[f32], ny: usize, nx: usize) -> Vec<f64> {
    assert_eq!(field.len(), ny * nx);
    let half = nx / 2;
    let mut power = vec![0.0f64; half + 1];
    let mut re = vec![0.0f64; nx];
    let mut im = vec![0.0f64; nx];
    for r in 0..ny {
        for c in 0..nx {
            re[c] = field[r * nx + c] as f64;
            im[c] = 0.0;
        }
        fft_inplace(&mut re, &mut im, false);
        for k in 0..=half {
            power[k] += (re[k] * re[k] + im[k] * im[k]) / (nx * nx) as f64;
        }
    }
    for p in &mut power {
        *p /= ny as f64;
    }
    power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_1d() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        fft_inplace(&mut re, &mut im, true);
        for (a, b) in re.iter().zip(&orig) {
            assert!((a / n as f64 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 32;
        let k = 5;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im, false);
        for bin in 0..n {
            let mag = (re[bin] * re[bin] + im[bin] * im[bin]).sqrt();
            if bin == k || bin == n - k {
                assert!((mag - n as f64 / 2.0).abs() < 1e-6, "bin {bin} mag {mag}");
            } else {
                assert!(mag < 1e-6, "leakage in bin {bin}: {mag}");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let (ny, nx) = (8, 16);
        let field: Vec<f32> = (0..ny * nx).map(|i| ((i * 13 + 5) % 17) as f32 - 8.0).collect();
        let (mut re, mut im) = fft2_forward(&field, ny, nx);
        let back = fft2_inverse(&mut re, &mut im, ny, nx);
        for (a, b) in back.iter().zip(&field) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn parseval_zonal_spectrum() {
        let (ny, nx) = (4, 32);
        let field: Vec<f32> = (0..ny * nx).map(|i| ((i * 7 + 1) % 13) as f32 * 0.1).collect();
        let spec = zonal_power_spectrum(&field, ny, nx);
        // Sum of per-row mean squares equals sum of spectrum (one-sided:
        // double interior bins).
        let mut total_ms = 0.0f64;
        for r in 0..ny {
            let row = &field[r * nx..(r + 1) * nx];
            total_ms += row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / nx as f64;
        }
        total_ms /= ny as f64;
        let mut spec_sum = spec[0] + spec[nx / 2];
        for k in 1..nx / 2 {
            spec_sum += 2.0 * spec[k];
        }
        assert!((total_ms - spec_sum).abs() < 1e-8, "{total_ms} vs {spec_sum}");
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_inplace(&mut re, &mut im, false);
    }
}
