//! The packed, cache-blocked GEMM core shared by every layout variant.
//!
//! All six public GEMM entry points (`matmul`/`matmul_nt`/`matmul_tn`, f32 and
//! bf16) lower to one driver, [`gemm`], that follows the classic three-stage
//! BLIS/GotoBLAS structure scaled down to this workspace's shapes:
//!
//! 1. **Pack B** once into column panels of [`NR`] columns, each stored as a
//!    contiguous `[k, NR]` strip (zero-padded tail panel). A transposed source
//!    (`matmul_nt`'s `B: [n, k]`) is transposed *during* the pack, so the
//!    compute stage never sees a strided operand — this is what removes
//!    `matmul_nt`'s one-strided-dot-per-element behaviour.
//! 2. **Pack A** per row block of [`MC`] rows into interleaved micro-panels:
//!    micro-panel `t` holds rows `t·MR .. t·MR+MR` laid out `[k, MR]`, so the
//!    micro-kernel reads one contiguous `MR`-chunk of A and one contiguous
//!    `NR`-chunk of B per `k` step. `matmul_tn`'s transposed A packs here the
//!    same way (extending the A-panel packing its parallel path already used).
//! 3. **Micro-kernel**: an `MR × NR` register tile accumulated over the full
//!    `k` extent with an explicitly unrolled multiply-add over unit-stride
//!    slices. The loop body is shape-independent and branch-free (no
//!    data-dependent skips), so the autovectorizer lifts the `NR`-wide inner
//!    loop to SIMD; on x86-64 with AVX2+FMA available at runtime, a
//!    `#[target_feature]`-compiled instantiation uses fused multiply-adds.
//!
//! bf16 operands (`u16` bit patterns) are widened to f32 **during packing**,
//! so the memory traffic against the large source matrices is halved while
//! every arithmetic operation — multiplies and the accumulator — stays f32.
//! This is the paper's "BF16 compute with FP32 accumulation" policy (§V-A)
//! realized in software.
//!
//! # Determinism
//!
//! Every output element is produced by exactly one micro-kernel accumulator
//! that sums `A[i,kk]·B[kk,j]` for `kk = 0, 1, …, k−1` in ascending order —
//! the block decomposition changes *which rows a worker computes*, never the
//! per-element order of floating-point operations. Parallelism is over
//! disjoint row blocks of C (fixed [`MC`]-row chunks, independent of the
//! worker count), so results are bitwise identical at any thread count.
//! Remainder tiles reuse the same kernel against zero-padded panel lanes;
//! padded lanes feed accumulators that are never written back, so edges follow
//! the identical accumulation order too.

use rayon::prelude::*;

/// Register-tile rows per micro-panel.
pub const MR: usize = 4;
/// Register-tile columns per B panel (two 8-lane AVX2 vectors).
pub const NR: usize = 16;
/// Rows of C per parallel block (a multiple of `MR`; sized so a packed A
/// block of `MC·k` f32 stays L2-resident for the model's `k` range).
pub const MC: usize = 32;

/// Above this many multiply-adds, the row-block loop fans out over the rayon
/// pool; below it, the same loops run on the calling thread (identical
/// numbers either way — the threshold is purely a fork-join economy).
pub const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// A GEMM operand element: anything that widens to f32. Arithmetic is always
/// f32; implementors only define the storage format.
pub trait Scalar: Copy + Send + Sync {
    fn widen(self) -> f32;
}

impl Scalar for f32 {
    #[inline(always)]
    fn widen(self) -> f32 {
        self
    }
}

/// bf16 stored as its raw bit pattern: the top 16 bits of the f32 it rounds.
impl Scalar for u16 {
    #[inline(always)]
    fn widen(self) -> f32 {
        f32::from_bits((self as u32) << 16)
    }
}

/// True once the CPU is known to support the AVX2+FMA micro-kernel build.
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 yes, 2 no
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Pack panel `p` of B (columns `p·NR .. p·NR+NR`) into `dst: [k, NR]`,
/// widening to f32 and zero-padding columns past `n`.
///
/// `b` is `[k, n]` row-major when `trans` is false, `[n, k]` row-major when
/// true (the `matmul_nt` layout, read as its transpose).
fn pack_b_panel<T: Scalar>(b: &[T], k: usize, n: usize, trans: bool, p: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), k * NR);
    let j0 = p * NR;
    let w = NR.min(n - j0);
    if !trans {
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let out = &mut dst[kk * NR..kk * NR + NR];
            for (o, &s) in out.iter_mut().zip(src) {
                *o = s.widen();
            }
            out[w..].fill(0.0);
        }
    } else {
        // Read each source row (a column of Bᵀ) at unit stride; the strided
        // writes land in the small in-cache destination panel.
        if w < NR {
            dst.fill(0.0);
        }
        for j in 0..w {
            let src = &b[(j0 + j) * k..(j0 + j) * k + k];
            for (kk, &s) in src.iter().enumerate() {
                dst[kk * NR + j] = s.widen();
            }
        }
    }
}

/// Pack rows `i0 .. i0+rows` of A into interleaved `[k, MR]` micro-panels,
/// widening to f32 and zero-padding rows past the block.
///
/// `a` is `[m, k]` row-major when `trans` is false, `[k, m]` row-major when
/// true (the `matmul_tn` layout, read as its transpose).
fn pack_a_block<T: Scalar>(
    a: &[T],
    m: usize,
    k: usize,
    trans: bool,
    i0: usize,
    rows: usize,
    dst: &mut [f32],
) {
    let tiles = rows.div_ceil(MR);
    debug_assert!(dst.len() >= tiles * MR * k);
    for t in 0..tiles {
        let r0 = t * MR;
        let live = MR.min(rows - r0);
        let panel = &mut dst[t * MR * k..(t + 1) * MR * k];
        if !trans {
            for i in 0..live {
                let src = &a[(i0 + r0 + i) * k..(i0 + r0 + i) * k + k];
                for (kk, &s) in src.iter().enumerate() {
                    panel[kk * MR + i] = s.widen();
                }
            }
            if live < MR {
                for kk in 0..k {
                    panel[kk * MR + live..kk * MR + MR].fill(0.0);
                }
            }
        } else {
            // A is [k, m]: each k-row contributes MR consecutive elements.
            for kk in 0..k {
                let src = &a[kk * m + i0 + r0..kk * m + i0 + r0 + live];
                let out = &mut panel[kk * MR..kk * MR + MR];
                for (o, &s) in out.iter_mut().zip(src) {
                    *o = s.widen();
                }
                out[live..].fill(0.0);
            }
        }
    }
}

/// The register-tile micro-kernel: accumulate `MR × NR` outputs over the full
/// `k` extent. `ap` is one `[k, MR]` micro-panel, `bp` one `[k, NR]` B panel.
///
/// `FMA` selects fused multiply-add: `true` only inside the
/// `#[target_feature(enable = "avx2,fma")]` instantiation, where `mul_add`
/// compiles to a single vfmadd; elsewhere it would fall back to a libm call.
#[inline(always)]
fn micro_kernel<const FMA: bool>(k: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        for i in 0..MR {
            let aik = a[i];
            for j in 0..NR {
                if FMA {
                    acc[i][j] = aik.mul_add(b[j], acc[i][j]);
                } else {
                    acc[i][j] += aik * b[j];
                }
            }
        }
    }
    acc
}

/// Compute one row block of C from its packed A block and the shared packed
/// B panels. `c_block` is `[rows, n]`, fully overwritten.
#[inline(always)]
fn compute_block_body<const FMA: bool>(
    apack: &[f32],
    bpack: &[f32],
    k: usize,
    n: usize,
    rows: usize,
    c_block: &mut [f32],
) {
    let tiles = rows.div_ceil(MR);
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let bp = &bpack[p * k * NR..(p + 1) * k * NR];
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for t in 0..tiles {
            let ap = &apack[t * MR * k..(t + 1) * MR * k];
            let acc = micro_kernel::<FMA>(k, ap, bp);
            let live = MR.min(rows - t * MR);
            for (i, acc_row) in acc.iter().enumerate().take(live) {
                let row = t * MR + i;
                c_block[row * n + j0..row * n + j0 + w].copy_from_slice(&acc_row[..w]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn compute_block_avx2(
    apack: &[f32],
    bpack: &[f32],
    k: usize,
    n: usize,
    rows: usize,
    c_block: &mut [f32],
) {
    compute_block_body::<true>(apack, bpack, k, n, rows, c_block);
}

/// Runtime-dispatched block compute: AVX2+FMA build when the CPU has it,
/// portable build otherwise. The choice is machine-global, so it can never
/// differ between threads or between runs on the same host.
#[inline]
fn compute_block(apack: &[f32], bpack: &[f32], k: usize, n: usize, rows: usize, c_block: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: fma_available() checked avx2+fma support at runtime.
        unsafe { compute_block_avx2(apack, bpack, k, n, rows, c_block) };
        return;
    }
    compute_block_body::<false>(apack, bpack, k, n, rows, c_block);
}

/// `C = op(A) · op(B)` through the packed core.
///
/// - `a` is `[m, k]` row-major, or `[k, m]` when `a_trans` (read as Aᵀ);
/// - `b` is `[k, n]` row-major, or `[n, k]` when `b_trans` (read as Bᵀ);
/// - `c` is `[m, n]` row-major and fully overwritten.
///
/// Operand storage may mix f32 and bf16 freely; all arithmetic is f32.
#[allow(clippy::too_many_arguments)]
pub fn gemm<TA: Scalar, TB: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[TA],
    a_trans: bool,
    b: &[TB],
    b_trans: bool,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A buffer length");
    assert_eq!(b.len(), k * n, "B buffer length");
    assert_eq!(c.len(), m * n, "C buffer length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }

    let panels = n.div_ceil(NR);
    let mut bpack = vec![0.0f32; panels * k * NR];
    let parallel = m * n * k >= PAR_THRESHOLD;

    if parallel {
        bpack
            .par_chunks_mut(k * NR)
            .enumerate()
            .for_each(|(p, dst)| pack_b_panel(b, k, n, b_trans, p, dst));
        c.par_chunks_mut(MC * n).enumerate().for_each_init(
            || vec![0.0f32; MC * k],
            |apack, (blk, c_block)| {
                let i0 = blk * MC;
                let rows = c_block.len() / n;
                pack_a_block(a, m, k, a_trans, i0, rows, apack);
                compute_block(apack, &bpack, k, n, rows, c_block);
            },
        );
    } else {
        for (p, dst) in bpack.chunks_mut(k * NR).enumerate() {
            pack_b_panel(b, k, n, b_trans, p, dst);
        }
        let mut apack = vec![0.0f32; MC.min(m.div_ceil(MR) * MR) * k];
        for (blk, c_block) in c.chunks_mut(MC * n).enumerate() {
            let i0 = blk * MC;
            let rows = c_block.len() / n;
            pack_a_block(a, m, k, a_trans, i0, rows, &mut apack);
            compute_block(&apack, &bpack, k, n, rows, c_block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f64 reference with the same operand layouts.
    fn naive(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        a_trans: bool,
        b: &[f32],
        b_trans: bool,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    let av = if a_trans { a[kk * m + i] } else { a[i * k + kk] };
                    let bv = if b_trans { b[j * k + kk] } else { b[kk * n + j] };
                    s += (av * bv) as f64;
                }
                c[i * n + j] = s as f32;
            }
        }
        c
    }

    #[test]
    fn all_layouts_match_reference_on_edge_shapes() {
        let mut rng = crate::Rng::seed_from(17);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (17, 19, 23), (33, 16, 4), (5, 33, 65)] {
            let a_nn: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let b_nn: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a_nn, false, &b_nn, false, &mut c);
            let r = naive(m, n, k, &a_nn, false, &b_nn, false);
            for (x, y) in c.iter().zip(&r) {
                assert!((x - y).abs() < 1e-3, "NN mismatch at {m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_k_gives_zero_output() {
        let mut c = vec![7.0f32; 6];
        gemm::<f32, f32>(2, 3, 0, &[], false, &[], false, &mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }
}
