//! Elementwise and reduction operations on [`Tensor`].
//!
//! All binary ops require exactly matching shapes (no implicit broadcasting —
//! the layers in `aeris-nn` broadcast explicitly where the architecture needs
//! it, which keeps shape errors loud).

use crate::{pairwise_sum, sweeps, Tensor};

impl Tensor {
    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(self.shape(), data)
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip_map");
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(self.shape(), data)
    }

    /// Elementwise addition (unrolled sweep).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let mut out = vec![0.0f32; self.len()];
        sweeps::add_into(&mut out, self.data(), other.data());
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise subtraction (unrolled sweep).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        let mut out = vec![0.0f32; self.len()];
        sweeps::sub_into(&mut out, self.data(), other.data());
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise (Hadamard) product (unrolled sweep).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in mul");
        let mut out = vec![0.0f32; self.len()];
        sweeps::mul_into(&mut out, self.data(), other.data());
        Tensor::from_vec(self.shape(), out)
    }

    /// Elementwise division (unrolled sweep).
    pub fn div(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in div");
        let mut out = vec![0.0f32; self.len()];
        sweeps::div_into(&mut out, self.data(), other.data());
        Tensor::from_vec(self.shape(), out)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        sweeps::add_assign(self.data_mut(), other.data());
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        sweeps::axpy(self.data_mut(), alpha, other.data());
    }

    /// Scalar multiple as a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        sweeps::scale(out.data_mut(), alpha);
        out
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f32) {
        sweeps::scale(self.data_mut(), alpha);
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        self.map(|x| x + c)
    }

    /// Sum of all elements (pairwise, f64 accumulate).
    pub fn sum(&self) -> f64 {
        pairwise_sum(self.data())
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sum() / self.len() as f64
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let ss = pairwise_sum(&self.data().iter().map(|&x| {
            let d = x as f64 - m;
            (d * d) as f32
        }).collect::<Vec<_>>());
        ss / self.len() as f64
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Largest absolute value.
    pub fn abs_max(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Euclidean norm (f64 accumulate).
    pub fn norm(&self) -> f64 {
        pairwise_sum(&self.data().iter().map(|&x| x * x).collect::<Vec<_>>()).sqrt()
    }

    /// Dot product of two same-shaped tensors (f64 accumulate).
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in dot");
        pairwise_sum(
            &self
                .data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| a * b)
                .collect::<Vec<_>>(),
        )
    }

    /// Clamp every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Row-wise softmax of a 2-D tensor (numerically stable).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let row = self.row(r);
            let m = sweeps::max(row);
            let dst = &mut out[r * cols..(r + 1) * cols];
            let z = sweeps::exp_shift_sum(dst, row, m);
            sweeps::scale(dst, 1.0 / z);
        }
        Tensor::from_vec(self.shape(), out)
    }

    /// Row means of a 2-D tensor (returns `[rows]`).
    pub fn row_means(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (rows, cols) = (self.shape()[0], self.shape()[1]);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            out.push((pairwise_sum(self.row(r)) / cols as f64) as f32);
        }
        Tensor::from_vec(&[rows], out)
    }

    /// Index of the maximum element.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut bv = f32::NEG_INFINITY;
        for (i, &x) in self.data().iter().enumerate() {
            if x > bv {
                bv = x;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(b.div(&a).data(), &[4., 2.5, 2.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.add_scalar(1.0).data(), &[2., 3., 4.]);
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_slice(&[1., 1.]);
        let b = Tensor::from_slice(&[2., 3.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3., 4.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[4., 5.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1., 2., 3., 4.]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.variance() - 1.25).abs() < 1e-9);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.abs_max(), 4.0);
        assert!((t.norm() - 30f64.sqrt()).abs() < 1e-6);
        assert_eq!(t.argmax(), 3);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut rng = Rng::seed_from(11);
        let t = Tensor::randn(&[5, 16], &mut rng).scale(4.0);
        let s = t.softmax_rows();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            let row_max = t.row(r).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert!(row_max.is_finite());
        }
        // Softmax is monotone: argmax preserved per-row.
        for r in 0..5 {
            let am_in = Tensor::from_slice(t.row(r)).argmax();
            let am_out = Tensor::from_slice(s.row(r)).argmax();
            assert_eq!(am_in, am_out);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let shifted = t.add_scalar(100.0);
        assert!(t.softmax_rows().max_abs_diff(&shifted.softmax_rows()) < 1e-6);
    }

    #[test]
    fn dot_and_row_means() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!(a.dot(&b), 32.0);
        let m = Tensor::from_vec(&[2, 2], vec![1., 3., 5., 7.]).row_means();
        assert_eq!(m.data(), &[2., 6.]);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_slice(&[-2., 0.5, 9.]).clamp(-1.0, 1.0);
        assert_eq!(t.data(), &[-1., 0.5, 1.]);
    }
}
