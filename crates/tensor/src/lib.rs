//! Dense f32 tensor substrate for the AERIS reproduction.
//!
//! This crate provides the numerical foundation used by every other crate in
//! the workspace:
//!
//! - [`Tensor`]: a contiguous, row-major, dynamically shaped f32 array with
//!   elementwise / reduction / linear-algebra operations,
//! - [`gemm`]: the shared packed, cache-blocked, register-tiled GEMM core all
//!   three matmul layouts (and the bf16 paths) lower to,
//! - [`matmul()`] / [`matmul_nt()`] / [`matmul_tn()`]: rayon-parallel entry
//!   points over that core, plus [`matmul_bf16()`]-family twins that read
//!   bf16 operands,
//! - [`sweeps`]: unrolled unit-stride sweep kernels for the elementwise /
//!   softmax / un-standardize hot loops,
//! - [`rng::Rng`]: a deterministic SplitMix64-based random number generator
//!   with Gaussian sampling and seed-derived independent streams,
//! - [`Bf16Tensor`]: real bfloat16 storage (u16 buffers, half the bytes),
//!   widened to f32 in registers inside the GEMM packing paths — the paper's
//!   BF16-compute / FP32-accumulate mixed-precision policy.
//!
//! Design notes (per the HPC guides): tensors are always contiguous and owned,
//! hot loops avoid allocation by writing into preallocated outputs where it
//! matters, and reductions that feed tests use pairwise summation so results
//! are stable across run-to-run and chunking changes. Every kernel keeps a
//! fixed per-element accumulation order, so results are bitwise identical at
//! any thread count (see `gemm` module docs for the argument).

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod bf16;
pub mod fft;
pub mod gemm;
pub mod matmul;
pub mod ops;
pub mod rng;
pub mod sweeps;
pub mod tensor;

pub use bf16::{Bf16Tensor, BF16_EPS};
pub use matmul::{matmul, matmul_into, matmul_tn, matmul_nt};
pub use matmul::{matmul_bf16, matmul_tn_bf16, matmul_nt_bf16};
pub use rng::{Rng, RngSnapshot};
pub use tensor::Tensor;

/// Pairwise (tree) summation of a slice: O(log n) rounding-error growth and a
/// deterministic result independent of external chunking.
pub fn pairwise_sum(xs: &[f32]) -> f64 {
    const LEAF: usize = 64;
    fn go(xs: &[f32]) -> f64 {
        if xs.len() <= LEAF {
            xs.iter().map(|&x| x as f64).sum()
        } else {
            let mid = xs.len() / 2;
            go(&xs[..mid]) + go(&xs[mid..])
        }
    }
    go(xs)
}

/// Relative-or-absolute closeness test used across the workspace's tests.
pub fn close(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_sum_matches_naive_on_small_input() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.25).collect();
        let naive: f64 = xs.iter().map(|&x| x as f64).sum();
        assert!((pairwise_sum(&xs) - naive).abs() < 1e-9);
    }

    #[test]
    fn pairwise_sum_empty_is_zero() {
        assert_eq!(pairwise_sum(&[]), 0.0);
    }

    #[test]
    fn close_handles_relative_and_absolute() {
        assert!(close(1e6, 1e6 + 1.0, 1e-5));
        assert!(close(0.0, 1e-7, 1e-6));
        assert!(!close(1.0, 2.0, 1e-3));
    }
}
