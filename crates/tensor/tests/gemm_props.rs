//! Property tests for the packed GEMM core: every layout variant, f32 and
//! bf16, against an f64 naive reference over odd, non-block-multiple shapes.
//!
//! The packed kernel has three distinct code regions — full MR×NR interior
//! tiles, partial edge tiles (zero-padded pack lanes), and the k loop — and
//! shapes drawn from `1..50` hit all of them: most draws are not multiples of
//! MR=4, NR=16, or the MC row blocking, so the remainder lanes are exercised
//! constantly rather than only at hand-picked sizes.

use aeris_tensor::{
    matmul, matmul_bf16, matmul_nt, matmul_nt_bf16, matmul_tn, matmul_tn_bf16, Rng, Tensor,
    BF16_EPS,
};
use proptest::prelude::*;

/// f64 naive `A[m,k] · B[k,n]`, k-ascending like the packed kernel.
fn reference(a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for p in 0..k {
            let aik = a.data()[i * k + p] as f64;
            for j in 0..n {
                c[i * n + j] += aik * b.data()[p * n + j] as f64;
            }
        }
    }
    c
}

/// Max |got − want| over the output, scaled by the largest |want| (so the
/// tolerance is relative to the problem's magnitude, not elementwise).
fn scaled_max_err(got: &Tensor, want: &[f64]) -> f64 {
    let scale = want.iter().fold(1e-6f64, |m, &w| m.max(w.abs()));
    got.data()
        .iter()
        .zip(want)
        .fold(0.0f64, |m, (&g, &w)| m.max((g as f64 - w).abs()))
        / scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three f32 layouts agree with the f64 reference to f32 rounding,
    /// and agree with each other bitwise (same accumulation order).
    #[test]
    fn f32_variants_match_f64_reference(
        m in 1usize..50,
        n in 1usize..50,
        k in 1usize..50,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = reference(&a, &b);

        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.t(), &b);
        let c_nt = matmul_nt(&a, &b.t());

        // f32 rounding grows like sqrt(k) for random-sign sums; 16·eps·sqrt(k)
        // is a comfortable envelope for k < 50.
        let tol = 16.0 * f32::EPSILON as f64 * (k as f64).sqrt();
        prop_assert!(scaled_max_err(&c, &want) <= tol,
            "matmul err {} > {tol} at ({m},{n},{k})", scaled_max_err(&c, &want));

        // Layout variants share the packed kernel: bitwise equal.
        let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&c), bits(&c_tn), "tn differs at ({},{},{})", m, n, k);
        prop_assert_eq!(bits(&c), bits(&c_nt), "nt differs at ({},{},{})", m, n, k);
    }

    /// bf16 storage paths: agreement with the f64 reference computed over the
    /// *rounded* operands is pure f32-accumulation error; agreement with the
    /// unrounded reference is bounded by the documented BF16_EPS envelope.
    #[test]
    fn bf16_variants_match_f64_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from(seed ^ 0xbf16);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let (ah, bh) = (a.to_bf16(), b.to_bf16());

        // Reference over the operands the kernel actually sees.
        let want = reference(&ah.widen(), &bh.widen());
        let c = matmul_bf16(&ah, &bh);
        let tol = 16.0 * f32::EPSILON as f64 * (k as f64).sqrt();
        prop_assert!(scaled_max_err(&c, &want) <= tol,
            "bf16 accumulation err {} > {tol} at ({m},{n},{k})", scaled_max_err(&c, &want));

        // Against the unrounded reference, error is dominated by the two
        // input roundings: 2·BF16_EPS per product, ~sqrt(k) cancellation.
        let full = reference(&a, &b);
        let bound = 2.0 * BF16_EPS as f64 * (k as f64).sqrt() + tol;
        prop_assert!(scaled_max_err(&c, &full) <= bound,
            "bf16 vs unrounded err {} > {bound} at ({m},{n},{k})", scaled_max_err(&c, &full));

        // Layout variants again bitwise equal.
        let c_tn = matmul_tn_bf16(&ah.transpose_2d(), &bh);
        let c_nt = matmul_nt_bf16(&ah, &bh.transpose_2d());
        let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&c), bits(&c_tn), "bf16 tn differs at ({},{},{})", m, n, k);
        prop_assert_eq!(bits(&c), bits(&c_nt), "bf16 nt differs at ({},{},{})", m, n, k);
    }
}
