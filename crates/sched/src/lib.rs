//! # aeris-sched — deadline-aware two-tier scheduling
//!
//! The scheduling subsystem the serving engine delegates admission and
//! dispatch to. It is deliberately model-agnostic: every primitive here is
//! generic over the task type (the serve engine instantiates them with its
//! member-step tasks), so the policies can be unit-tested with plain
//! integers and reused by future engines.
//!
//! The pieces, composed by `aeris-serve`:
//!
//! - [`Tier`] / [`TierRouter`]: classify each request into a **fast** tier
//!   (one-step distilled model) or a **quality** tier (full multi-step
//!   sampler), either explicitly or inferred from deadline slack against the
//!   measured quality-tier service time.
//! - [`ServiceEstimator`]: per-tier exponentially-weighted service-time
//!   estimates (seconds per member-step), fed by the workers after every
//!   batch, consumed by the router and by dispatch-time shedding.
//! - [`DispatchQueue`]: the pending-work pool. Dispatch order is
//!   **earliest-deadline-first** for deadlined tasks, **weighted fair
//!   queueing** (virtual-time tags per tenant) for the rest; batches are
//!   formed by sweeping same-shape tasks in priority order.
//! - [`QuotaTable`]: per-tenant token buckets — admission-time rate limits
//!   so one tenant cannot monopolize the engine — plus the per-tenant WFQ
//!   weights the dispatch queue consumes.
//! - [`ReplicaPool`]: N interchangeable replicas of an immutable model,
//!   workers pinned round-robin. Replicas must be bitwise-identical copies;
//!   the pool only distributes them, the engine's determinism tests prove
//!   the copies are exact.
//!
//! Every policy here shapes *latency and ordering only*. Tasks carry their
//! own RNG streams (the engine's discipline), so which tier pool, replica,
//! batch, or dispatch order a task sees can never change its numbers — the
//! bitwise-determinism contract of the serve engine survives scheduling.

pub mod dispatch;
pub mod estimator;
pub mod pool;
pub mod tenant;
pub mod tier;

pub use dispatch::{DispatchQueue, QueueMetrics, TaskMeta};
pub use estimator::ServiceEstimator;
pub use pool::ReplicaPool;
pub use tenant::{QuotaConfig, QuotaDecision, QuotaTable, TenantPolicy};
pub use tier::{RouterConfig, Tier, TierRouter};
