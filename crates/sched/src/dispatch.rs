//! The dispatch queue: EDF for deadlined work, weighted fair queueing for
//! the rest, shape-compatible batch formation, and a hold gate.
//!
//! ## Ordering invariants
//!
//! 1. **Deadlined before undeadlined.** A task with a deadline is, by
//!    definition, the one that can still be lost; undeadlined work is
//!    best-effort and waits. (Abuse of this rule — tagging everything with a
//!    deadline — is contained by the admission-time token buckets in
//!    [`crate::tenant`], which cap how much work a tenant can have admitted
//!    at all.)
//! 2. **Earliest deadline first** among deadlined tasks, submission order
//!    breaking ties. EDF is optimal for meetable deadline sets on one
//!    server, and a tight-deadline request submitted *after* a loose one
//!    overtakes it — the property the tier-1 EDF test pins.
//! 3. **Weighted fair queueing** among undeadlined tasks: each push gets a
//!    virtual-finish tag `max(V, F_tenant) + cost/weight` (start-time fair
//!    queueing with the global virtual clock `V` advanced on dispatch);
//!    tasks dispatch in tag order. Over a backlog, tenants therefore
//!    receive service proportional to their weights, and a one-task tenant
//!    overtakes a flooding tenant's backlog instead of queueing behind it.
//!    Deadlined pushes accrue `F_tenant` too, so a tenant burning its quota
//!    on deadline traffic pushes its own best-effort work back, not other
//!    tenants'.
//!
//! Batches are formed by sweeping same-`shape` tasks in priority order, so
//! the batch is "the most urgent compatible work", not "the oldest". The
//! queue never reorders *numbers* — tasks carry their own RNG streams — it
//! only reorders *time*.

use aeris_obs::MetricSeries;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Optional dispatch instrumentation, installed with
/// [`DispatchQueue::instrument`]. Recording is lock-free on the series
/// side, so the cost inside the queue lock is a few atomic adds per
/// dispatched task.
#[derive(Clone)]
pub struct QueueMetrics {
    /// Enqueue → dispatch wait per task, milliseconds (EDF and WFQ alike).
    pub wait_ms: MetricSeries,
    /// WFQ virtual-time lag at dispatch: how far the task's finish tag sat
    /// behind the global virtual clock (0 for a task dispatched at the
    /// frontier; deadlined tasks are not measured — they bypass WFQ).
    pub virtual_lag: MetricSeries,
}

/// Scheduling metadata a task is pushed with. The queue owns the policy;
/// the caller owns the meaning of `shape` (batch compatibility) and `cost`
/// (work units, e.g. remaining member-steps).
#[derive(Clone, Debug)]
pub struct TaskMeta {
    /// Absolute deadline, if the request has one (EDF class).
    pub deadline: Option<Instant>,
    /// Owning tenant (WFQ accounting key).
    pub tenant: Arc<str>,
    /// Tenant WFQ weight (> 0; larger = more service under backlog).
    pub weight: f64,
    /// Work units this task still represents (virtual-time increment).
    pub cost: f64,
    /// Batch-compatibility key: only equal-`shape` tasks share one batched
    /// model evaluation.
    pub shape: u64,
}

struct Entry<T> {
    meta: TaskMeta,
    seq: u64,
    /// WFQ virtual finish tag (undeadlined ordering key).
    finish: f64,
    /// When the task entered the queue (wait-time instrumentation).
    enqueued: Instant,
    task: T,
}

impl<T> Entry<T> {
    /// Strict priority order: deadlined first (EDF, seq tiebreak), then
    /// undeadlined by virtual finish tag (seq tiebreak).
    fn before(&self, other: &Entry<T>) -> bool {
        match (self.meta.deadline, other.meta.deadline) {
            (Some(a), Some(b)) => (a, self.seq) < (b, other.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                (self.finish, self.seq) < (other.finish, other.seq)
            }
        }
    }
}

struct Inner<T> {
    entries: Vec<Entry<T>>,
    tenant_finish: HashMap<Arc<str>, f64>,
    /// Global virtual clock: advanced to the finish tag of each dispatched
    /// undeadlined task, so idle tenants re-enter at the current frontier
    /// instead of with ancient (unfairly small) tags.
    vtime: f64,
    next_seq: u64,
    open: bool,
    /// Test/drain gate: while held (and open), dispatch blocks even with
    /// work pending — lets tests build a deterministic backlog.
    held: bool,
    /// Wait/lag instrumentation, when installed.
    metrics: Option<QueueMetrics>,
}

/// Thread-shared pending-work pool with EDF + WFQ dispatch order.
pub struct DispatchQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

impl<T> Default for DispatchQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DispatchQueue<T> {
    pub fn new() -> Self {
        DispatchQueue {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tenant_finish: HashMap::new(),
                vtime: 0.0,
                next_seq: 0,
                open: true,
                held: false,
                metrics: None,
            }),
            available: Condvar::new(),
        }
    }

    /// Install dispatch instrumentation: every subsequently dispatched task
    /// records its queue wait (ms) and, for WFQ tasks, its virtual-time lag.
    pub fn instrument(&self, metrics: QueueMetrics) {
        self.inner.lock().metrics = Some(metrics);
    }

    fn tag(inner: &mut Inner<T>, meta: &TaskMeta) -> f64 {
        let weight = if meta.weight > 0.0 { meta.weight } else { 1.0 };
        let prev = inner.tenant_finish.get(&meta.tenant).copied().unwrap_or(0.0);
        let start = inner.vtime.max(prev);
        let finish = start + meta.cost.max(0.0) / weight;
        inner.tenant_finish.insert(Arc::clone(&meta.tenant), finish);
        finish
    }

    /// Enqueue one task.
    pub fn push(&self, task: T, meta: TaskMeta) {
        let enqueued = Instant::now();
        let mut inner = self.inner.lock();
        let finish = Self::tag(&mut inner, &meta);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(Entry { meta, seq, finish, enqueued, task });
        drop(inner);
        self.available.notify_one();
    }

    /// Enqueue several tasks atomically (one request's members land as one
    /// contiguous run so an idle worker's next sweep can batch them).
    pub fn push_many(&self, tasks: impl IntoIterator<Item = (T, TaskMeta)>) {
        let enqueued = Instant::now();
        let mut inner = self.inner.lock();
        for (task, meta) in tasks {
            let finish = Self::tag(&mut inner, &meta);
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.entries.push(Entry { meta, seq, finish, enqueued, task });
        }
        drop(inner);
        self.available.notify_all();
    }

    /// Number of pending tasks.
    pub fn depth(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Gate dispatch: workers block (even with work pending) until
    /// [`DispatchQueue::release`] or [`DispatchQueue::close`]. Used by tests
    /// to build a deterministic backlog and by drains that must quiesce.
    pub fn hold(&self) {
        self.inner.lock().held = true;
    }

    /// Re-open dispatch after [`DispatchQueue::hold`].
    pub fn release(&self) {
        self.inner.lock().held = false;
        self.available.notify_all();
    }

    /// Stop blocking on empty: workers drain what remains, then exit. Also
    /// releases any hold (a held, closed queue would deadlock its drain).
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.open = false;
        inner.held = false;
        drop(inner);
        self.available.notify_all();
    }

    /// Index of the highest-priority entry, `None` when empty.
    fn best_index(entries: &[Entry<T>]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match best {
                None => best = Some(i),
                Some(b) if e.before(&entries[b]) => best = Some(i),
                _ => {}
            }
        }
        best
    }

    /// Highest-priority entry whose shape matches, `None` if none does.
    fn best_matching(entries: &[Entry<T>], shape: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            if e.meta.shape != shape {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) if e.before(&entries[b]) => best = Some(i),
                _ => {}
            }
        }
        best
    }

    fn take(inner: &mut Inner<T>, idx: usize) -> T {
        let entry = inner.entries.remove(idx);
        if let Some(m) = &inner.metrics {
            m.wait_ms.record(entry.enqueued.elapsed().as_secs_f64() * 1e3);
            if entry.meta.deadline.is_none() {
                // How far behind the fair-share frontier this task's tag sat
                // when it finally dispatched (0 = dispatched at the frontier).
                m.virtual_lag.record((inner.vtime - entry.finish).max(0.0));
            }
        }
        if entry.meta.deadline.is_none() {
            inner.vtime = inner.vtime.max(entry.finish);
        }
        entry.task
    }

    /// Block for work and form a shape-compatible batch of at most
    /// `max_batch` tasks, highest scheduling priority first. Returns `None`
    /// when the queue is closed and empty (worker exit signal).
    pub fn next_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock();
        loop {
            if inner.held && inner.open {
                self.available.wait(&mut inner);
                continue;
            }
            if !inner.entries.is_empty() {
                break;
            }
            if !inner.open {
                return None;
            }
            self.available.wait(&mut inner);
        }
        let first_idx = Self::best_index(&inner.entries).expect("pool nonempty");
        let shape = inner.entries[first_idx].meta.shape;
        let mut batch = vec![Self::take(&mut inner, first_idx)];
        // Give concurrent submitters a bounded chance to coalesce.
        if batch.len() < max_batch && inner.entries.is_empty() && inner.open && !max_wait.is_zero()
        {
            let _ = self.available.wait_for(&mut inner, max_wait);
        }
        while batch.len() < max_batch {
            match Self::best_matching(&inner.entries, shape) {
                Some(i) => batch.push(Self::take(&mut inner, i)),
                None => break,
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(tenant: &str, weight: f64, cost: f64) -> TaskMeta {
        TaskMeta { deadline: None, tenant: Arc::from(tenant), weight, cost, shape: 1 }
    }

    fn with_deadline(tenant: &str, at: Instant) -> TaskMeta {
        TaskMeta { deadline: Some(at), ..meta(tenant, 1.0, 1.0) }
    }

    fn drain_order(q: &DispatchQueue<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while q.depth() > 0 {
            out.extend(q.next_batch(1, Duration::ZERO).expect("work pending"));
        }
        out
    }

    #[test]
    fn edf_tight_deadline_overtakes_earlier_loose_ones() {
        let q = DispatchQueue::new();
        let now = Instant::now();
        q.push(1u32, with_deadline("a", now + Duration::from_secs(60)));
        q.push(2u32, with_deadline("a", now + Duration::from_secs(30)));
        // Submitted last, due first.
        q.push(3u32, with_deadline("b", now + Duration::from_secs(1)));
        assert_eq!(drain_order(&q), vec![3, 2, 1]);
    }

    #[test]
    fn deadlined_dispatches_before_undeadlined() {
        let q = DispatchQueue::new();
        q.push(1u32, meta("a", 1.0, 1.0));
        q.push(2u32, with_deadline("b", Instant::now() + Duration::from_secs(900)));
        q.push(3u32, meta("a", 1.0, 1.0));
        assert_eq!(drain_order(&q), vec![2, 1, 3]);
    }

    #[test]
    fn wfq_single_task_tenant_overtakes_a_flooders_backlog() {
        let q = DispatchQueue::new();
        for i in 0..4u32 {
            q.push(i, meta("flooder", 1.0, 1.0));
        }
        q.push(100, meta("light", 1.0, 1.0));
        let order = drain_order(&q);
        let light_pos = order.iter().position(|&t| t == 100).unwrap();
        assert!(
            light_pos <= 1,
            "light tenant must not queue behind the flooder's backlog: {order:?}"
        );
    }

    #[test]
    fn wfq_weights_bias_service_proportionally() {
        let q = DispatchQueue::new();
        for i in 0..4u32 {
            q.push(i, meta("heavy", 2.0, 1.0));
            q.push(10 + i, meta("light", 1.0, 1.0));
        }
        let order = drain_order(&q);
        // In the first half of dispatches the weight-2 tenant gets about
        // twice the slots of the weight-1 tenant.
        let heavy_in_first_half =
            order[..4].iter().filter(|&&t| t < 10).count();
        assert!(heavy_in_first_half >= 2, "order {order:?}");
    }

    #[test]
    fn batches_sweep_same_shape_in_priority_order() {
        let q = DispatchQueue::new();
        let now = Instant::now();
        let shaped = |shape: u64, deadline: Option<Instant>| TaskMeta {
            deadline,
            tenant: Arc::from("t"),
            weight: 1.0,
            cost: 1.0,
            shape,
        };
        q.push(1u32, shaped(7, Some(now + Duration::from_secs(50))));
        q.push(2u32, shaped(9, Some(now + Duration::from_secs(10))));
        q.push(3u32, shaped(9, Some(now + Duration::from_secs(5))));
        q.push(4u32, shaped(9, None));
        // Most urgent task has shape 9; the batch is shape-9 work in
        // priority order, the shape-7 task waits.
        let b = q.next_batch(8, Duration::ZERO).expect("work pending");
        assert_eq!(b, vec![3, 2, 4]);
        assert_eq!(q.next_batch(8, Duration::ZERO).expect("work pending"), vec![1]);
    }

    #[test]
    fn max_batch_bounds_the_sweep() {
        let q = DispatchQueue::new();
        for i in 0..5u32 {
            q.push(i, meta("t", 1.0, 1.0));
        }
        let b = q.next_batch(2, Duration::ZERO).expect("work pending");
        assert_eq!(b.len(), 2);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = DispatchQueue::new();
        q.push(1u32, meta("t", 1.0, 1.0));
        q.close();
        assert!(q.next_batch(4, Duration::ZERO).is_some(), "pending work still served");
        assert!(q.next_batch(4, Duration::ZERO).is_none(), "closed + empty = exit");
    }

    #[test]
    fn hold_gates_dispatch_until_release() {
        let q = Arc::new(DispatchQueue::new());
        q.hold();
        q.push(1u32, meta("t", 1.0, 1.0));
        let qt = Arc::clone(&q);
        let h = std::thread::spawn(move || qt.next_batch(1, Duration::ZERO));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "held queue must not dispatch");
        q.release();
        assert_eq!(h.join().unwrap(), Some(vec![1]));
    }

    #[test]
    fn instrumented_queue_records_wait_and_wfq_lag() {
        let q = DispatchQueue::new();
        let metrics = QueueMetrics {
            wait_ms: MetricSeries::new(),
            virtual_lag: MetricSeries::new(),
        };
        q.instrument(metrics.clone());
        // Interleave shapes so the batch sweep overtakes a lower-tag task:
        // tags are 1 (shape 7), 2 (shape 9), 3 (shape 7). The first batch
        // sweeps both shape-7 tasks and advances the frontier to 3; the
        // shape-9 task then dispatches one virtual unit behind it.
        let shaped = |shape: u64| TaskMeta {
            deadline: None,
            tenant: Arc::from("t"),
            weight: 1.0,
            cost: 1.0,
            shape,
        };
        q.push(1u32, shaped(7));
        q.push(2u32, shaped(9));
        q.push(3u32, shaped(7));
        assert_eq!(q.next_batch(8, Duration::ZERO), Some(vec![1, 3]));
        assert_eq!(q.next_batch(8, Duration::ZERO), Some(vec![2]));
        assert_eq!(metrics.wait_ms.count(), 3, "every dispatch records a wait");
        assert!(metrics.wait_ms.min().unwrap() >= 0.0);
        assert_eq!(metrics.virtual_lag.count(), 3, "all three tasks are WFQ-class");
        assert_eq!(metrics.virtual_lag.max(), Some(1.0), "shape-9 task lagged the frontier");
        // Deadlined tasks record waits but no lag.
        q.push(7, with_deadline("d", Instant::now() + Duration::from_secs(5)));
        drain_order(&q);
        assert_eq!(metrics.wait_ms.count(), 4);
        assert_eq!(metrics.virtual_lag.count(), 3);
    }

    #[test]
    fn idle_tenant_reenters_at_the_virtual_frontier() {
        let q = DispatchQueue::new();
        // Flooder accumulates virtual time, all of it dispatched.
        for i in 0..3u32 {
            q.push(i, meta("flooder", 1.0, 1.0));
        }
        drain_order(&q);
        // A newcomer and more flooder work arrive together: the newcomer's
        // tag starts at the frontier, not at zero, so order interleaves
        // instead of the newcomer monopolizing.
        q.push(50, meta("flooder", 1.0, 1.0));
        q.push(60, meta("newcomer", 1.0, 1.0));
        let order = drain_order(&q);
        assert_eq!(order.len(), 2);
        // Both tags start from vtime ⇒ equal finish; seq breaks the tie.
        assert_eq!(order, vec![50, 60]);
    }
}
