//! Serving tiers and the deadline-slack router.
//!
//! The paper's §VII-C consistency distillation compresses a forecast step to
//! one network evaluation; the full DPMSolver++ sampler costs `2·n_steps`.
//! That asymmetry is the whole point of two-tier serving: requests that can
//! afford the full sampler get it (bitwise identical to a direct ensemble
//! call), requests that cannot get the distilled one-step path. The router
//! decides which is which — explicitly, or by comparing the request's
//! deadline slack to the measured quality-tier service time.

use crate::estimator::ServiceEstimator;
use std::time::Duration;

/// The two serving tiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// One-step distilled (`ConsistencyStudent`) path: order-of-magnitude
    /// cheaper per forecast step, a quantified quality cost
    /// (`evaluation::distillation_gap`).
    Fast,
    /// Full multi-step sampler: bitwise identical to a direct
    /// `Forecaster::ensemble` call.
    Quality,
}

impl Tier {
    /// Both tiers, in display order.
    pub const ALL: [Tier; 2] = [Tier::Fast, Tier::Quality];

    /// Stable index for per-tier arrays.
    pub fn index(self) -> usize {
        match self {
            Tier::Fast => 0,
            Tier::Quality => 1,
        }
    }

    /// Stable lowercase name (metric labels, bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Quality => "quality",
        }
    }
}

/// Routing policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Deadline slack at or below which a request routes fast even before
    /// the service-time estimator has warmed up (a hard "this is a nowcast
    /// with a tight budget" floor).
    pub slack_floor: Duration,
    /// Safety multiplier on the estimated quality-tier service time: a
    /// request routes fast when `slack < safety × est_quality`. Values > 1
    /// shed risk onto the fast tier (better a cheaper answer than a missed
    /// deadline).
    pub safety: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { slack_floor: Duration::from_millis(250), safety: 2.0 }
    }
}

/// Classifies requests into tiers. Stateless apart from the shared
/// [`ServiceEstimator`] it reads.
pub struct TierRouter {
    pub cfg: RouterConfig,
}

impl TierRouter {
    pub fn new(cfg: RouterConfig) -> Self {
        TierRouter { cfg }
    }

    /// Route one request.
    ///
    /// - An explicit tier always wins (the caller has already validated that
    ///   the fast tier exists).
    /// - Without a fast tier, everything is quality.
    /// - Without a deadline there is no slack to protect: quality.
    /// - Slack at or below the configured floor: fast.
    /// - Otherwise fast iff the measured quality-tier estimate for
    ///   `chain_units` member-steps (one member's sequential chain), scaled
    ///   by the safety factor, exceeds the slack. An unwarmed estimator
    ///   routes quality — the floor is the cold-start rule.
    pub fn route(
        &self,
        explicit: Option<Tier>,
        slack: Option<Duration>,
        chain_units: u64,
        fast_available: bool,
        estimator: &ServiceEstimator,
    ) -> Tier {
        if let Some(t) = explicit {
            return t;
        }
        if !fast_available {
            return Tier::Quality;
        }
        let Some(slack) = slack else {
            return Tier::Quality;
        };
        if slack <= self.cfg.slack_floor {
            return Tier::Fast;
        }
        match estimator.estimate(Tier::Quality, chain_units) {
            Some(est) if slack < est.mul_f64(self.cfg.safety) => Tier::Fast,
            _ => Tier::Quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> TierRouter {
        TierRouter::new(RouterConfig { slack_floor: Duration::from_millis(100), safety: 2.0 })
    }

    #[test]
    fn explicit_tier_always_wins() {
        let est = ServiceEstimator::new();
        let r = router();
        assert_eq!(r.route(Some(Tier::Fast), None, 4, true, &est), Tier::Fast);
        assert_eq!(
            r.route(Some(Tier::Quality), Some(Duration::ZERO), 4, true, &est),
            Tier::Quality
        );
    }

    #[test]
    fn no_fast_tier_or_no_deadline_routes_quality() {
        let est = ServiceEstimator::new();
        let r = router();
        assert_eq!(r.route(None, Some(Duration::from_millis(1)), 4, false, &est), Tier::Quality);
        assert_eq!(r.route(None, None, 4, true, &est), Tier::Quality);
    }

    #[test]
    fn slack_floor_routes_fast_before_estimator_warms() {
        let est = ServiceEstimator::new();
        let r = router();
        assert_eq!(r.route(None, Some(Duration::from_millis(50)), 4, true, &est), Tier::Fast);
        // Above the floor with a cold estimator: quality.
        assert_eq!(r.route(None, Some(Duration::from_secs(5)), 4, true, &est), Tier::Quality);
    }

    #[test]
    fn warm_estimator_drives_the_slack_rule() {
        let est = ServiceEstimator::new();
        // 100 ms per quality member-step, warm.
        for _ in 0..8 {
            est.observe(Tier::Quality, 0.1);
        }
        let r = router();
        // 4-step chain ⇒ est 400 ms, safety 2 ⇒ threshold 800 ms.
        assert_eq!(r.route(None, Some(Duration::from_millis(500)), 4, true, &est), Tier::Fast);
        assert_eq!(r.route(None, Some(Duration::from_millis(900)), 4, true, &est), Tier::Quality);
    }
}
