//! Per-tier service-time estimation.
//!
//! Workers report the amortized cost of each executed batch (wall seconds
//! divided by batch size — i.e. seconds per member-step *as actually
//! served*, batching amortization included). The estimator keeps one
//! exponentially-weighted mean per tier and answers two questions:
//!
//! - the router's: "how long would this request take on the quality tier?"
//! - the dispatcher's: "is this task already doomed — will the remaining
//!   steps of its chain outlast the deadline?" (shed at dispatch, before
//!   wasted work, instead of at completion after it).
//!
//! A cold estimator answers `None`; callers fall back to conservative rules
//! (the router's slack floor, plain `now >= deadline` expiry). That keeps
//! the estimator strictly an optimization: it can never invent a shed that
//! plain expiry would not eventually have produced.

use crate::tier::Tier;
use parking_lot::Mutex;
use std::time::Duration;

/// Samples required before an estimate is considered warm. One noisy
/// first batch must not start shedding traffic.
const WARM_SAMPLES: u64 = 3;

/// EWMA smoothing factor (weight of the newest sample).
const ALPHA: f64 = 0.2;

#[derive(Clone, Copy, Default)]
struct TierStat {
    mean_secs: f64,
    samples: u64,
}

/// Thread-shared per-tier EWMA of seconds per member-step.
#[derive(Default)]
pub struct ServiceEstimator {
    tiers: Mutex<[TierStat; 2]>,
}

impl ServiceEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one amortized per-member-step service time (seconds).
    pub fn observe(&self, tier: Tier, secs_per_unit: f64) {
        if !secs_per_unit.is_finite() || secs_per_unit < 0.0 {
            return;
        }
        let mut tiers = self.tiers.lock();
        let s = &mut tiers[tier.index()];
        s.mean_secs = if s.samples == 0 {
            secs_per_unit
        } else {
            ALPHA * secs_per_unit + (1.0 - ALPHA) * s.mean_secs
        };
        s.samples += 1;
    }

    /// Current per-member-step estimate, or `None` before warm-up.
    pub fn per_unit(&self, tier: Tier) -> Option<f64> {
        let s = self.tiers.lock()[tier.index()];
        (s.samples >= WARM_SAMPLES).then_some(s.mean_secs)
    }

    /// Estimated wall time for `units` sequential member-steps, or `None`
    /// before warm-up.
    pub fn estimate(&self, tier: Tier, units: u64) -> Option<Duration> {
        self.per_unit(tier).map(|per| Duration::from_secs_f64(per * units as f64))
    }

    /// Samples observed for a tier (diagnostics / report surface).
    pub fn samples(&self, tier: Tier) -> u64 {
        self.tiers.lock()[tier.index()].samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_estimator_answers_none() {
        let e = ServiceEstimator::new();
        assert!(e.per_unit(Tier::Fast).is_none());
        e.observe(Tier::Fast, 0.01);
        e.observe(Tier::Fast, 0.01);
        assert!(e.per_unit(Tier::Fast).is_none(), "below warm-up threshold");
        e.observe(Tier::Fast, 0.01);
        assert!(e.per_unit(Tier::Fast).is_some());
        assert!(e.per_unit(Tier::Quality).is_none(), "tiers are independent");
    }

    #[test]
    fn ewma_tracks_and_estimate_scales() {
        let e = ServiceEstimator::new();
        for _ in 0..20 {
            e.observe(Tier::Quality, 0.05);
        }
        let per = e.per_unit(Tier::Quality).unwrap();
        assert!((per - 0.05).abs() < 1e-9);
        let est = e.estimate(Tier::Quality, 10).unwrap();
        assert!((est.as_secs_f64() - 0.5).abs() < 1e-6);
        // A regime change pulls the mean toward the new level.
        for _ in 0..20 {
            e.observe(Tier::Quality, 0.2);
        }
        assert!(e.per_unit(Tier::Quality).unwrap() > 0.15);
    }

    #[test]
    fn garbage_samples_are_ignored() {
        let e = ServiceEstimator::new();
        e.observe(Tier::Fast, f64::NAN);
        e.observe(Tier::Fast, -1.0);
        assert_eq!(e.samples(Tier::Fast), 0);
    }
}
